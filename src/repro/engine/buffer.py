"""Main-memory buffer manager of a processing element.

The database buffer consists of a *global buffer* shared by all transactions
and *private working spaces* used for query processing, e.g. the hash tables
of hash joins (paper §4).  Working spaces are dynamically assigned by
reserving a number of pages for a (sub)query.

Memory is the central contended resource for the paper's load balancing
strategies, so this module implements:

* FCFS reservation of working space with a minimum requirement -- a join is
  only started once its minimal space is available, otherwise it waits in a
  *memory queue* (§4, hash join processing);
* an OLTP footprint with priority: pages demanded by OLTP transactions are
  taken from the free pool first and *stolen* from the largest join
  reservation if necessary, triggering the PPHJ adaptation callback;
* utilisation accounting for the control node (the LUM policy and the
  integrated strategies need per-node "available memory").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.sim import Environment, Event, TimeWeightedMonitor

__all__ = ["WorkingSpace", "BufferManager"]

#: Callback invoked when pages are stolen from a working space:
#: ``callback(stolen_pages)``.
StealCallback = Callable[[int], None]


@dataclass
class WorkingSpace:
    """A private working-space reservation held by one (sub)query."""

    owner: str
    pages: int
    min_pages: int
    steal_callback: Optional[StealCallback] = None
    released: bool = False

    def __post_init__(self) -> None:
        if self.min_pages < 0 or self.pages < 0:
            raise ValueError("page counts must be non-negative")


@dataclass
class _PendingReservation:
    event: Event
    owner: str
    desired_pages: int
    min_pages: int
    steal_callback: Optional[StealCallback]
    enqueue_time: float


class BufferManager:
    """Page-frame accounting for one PE's main-memory buffer."""

    def __init__(self, env: Environment, total_pages: int, pe_id: int = 0):
        if total_pages < 1:
            raise ValueError("buffer needs at least one page")
        self.env = env
        self.pe_id = pe_id
        self.total_pages = total_pages
        self._free_pages = total_pages
        self._oltp_pages = 0
        # OLTP pages below this threshold cannot be evicted by join working
        # space requests (the hot part of the OLTP working set); pages above
        # it are ordinary LRU-resident pages that a join may displace.
        self._oltp_protected_pages = 0
        self._working_spaces: List[WorkingSpace] = []
        self._memory_queue: Deque[_PendingReservation] = deque()
        self.occupancy = TimeWeightedMonitor(env, initial=0.0, name=f"buffer[{pe_id}]")
        self.reservations_granted = 0
        self.pages_stolen = 0
        self.oltp_pages_evicted = 0

    # -- inspection --------------------------------------------------------
    @property
    def free_pages(self) -> int:
        """Pages currently unused (available for new working spaces)."""
        return self._free_pages

    @property
    def used_pages(self) -> int:
        return self.total_pages - self._free_pages

    @property
    def oltp_pages(self) -> int:
        """Pages pinned by the OLTP buffer footprint."""
        return self._oltp_pages

    @property
    def working_space_pages(self) -> int:
        """Pages currently held by query working spaces."""
        return sum(ws.pages for ws in self._working_spaces if not ws.released)

    @property
    def memory_queue_length(self) -> int:
        """Number of joins waiting in the FCFS memory queue."""
        return len(self._memory_queue)

    def utilization(self) -> float:
        """Current fraction of the buffer in use."""
        return self.used_pages / self.total_pages

    def average_utilization(self) -> float:
        """Time-weighted average buffer utilisation since the last reset."""
        return self.occupancy.time_average() / self.total_pages

    def reset_statistics(self) -> None:
        self.occupancy.reset()

    # -- internal accounting -------------------------------------------------
    def _set_free(self, free: int) -> None:
        self._free_pages = free
        self.occupancy.update(self.total_pages - free)

    # -- working spaces (joins) ------------------------------------------------
    def reserve(
        self,
        owner: str,
        desired_pages: int,
        min_pages: int,
        steal_callback: Optional[StealCallback] = None,
    ) -> Event:
        """Request a working space.

        The returned event triggers with a :class:`WorkingSpace` once at least
        ``min_pages`` are free *and* the request is at the head of the FCFS
        memory queue.  The grant is ``min(desired_pages, free_pages)`` but
        never less than ``min_pages``.
        """
        if min_pages > self.total_pages:
            raise ValueError(
                f"minimum working space ({min_pages} pages) exceeds buffer size "
                f"({self.total_pages} pages) on PE {self.pe_id}"
            )
        if desired_pages < min_pages:
            desired_pages = min_pages
        event = Event(self.env)
        self._memory_queue.append(
            _PendingReservation(
                event=event,
                owner=owner,
                desired_pages=desired_pages,
                min_pages=min_pages,
                steal_callback=steal_callback,
                enqueue_time=self.env.now,
            )
        )
        self._serve_queue()
        return event

    def release(self, working_space: WorkingSpace) -> None:
        """Return all pages of a working space to the free pool."""
        if working_space.released:
            return
        working_space.released = True
        if working_space in self._working_spaces:
            self._working_spaces.remove(working_space)
        self._set_free(self._free_pages + working_space.pages)
        working_space.pages = 0
        self._serve_queue()

    def grow(self, working_space: WorkingSpace, extra_pages: int) -> int:
        """Try to grow a working space; returns the number of pages granted."""
        if working_space.released or extra_pages <= 0:
            return 0
        granted = min(extra_pages, self._free_pages)
        if granted > 0:
            working_space.pages += granted
            self._set_free(self._free_pages - granted)
        return granted

    def shrink(self, working_space: WorkingSpace, pages: int) -> int:
        """Voluntarily give back ``pages`` pages; returns the amount returned."""
        if working_space.released or pages <= 0:
            return 0
        returned = min(pages, working_space.pages)
        working_space.pages -= returned
        self._set_free(self._free_pages + returned)
        self._serve_queue()
        return returned

    def _evictable_oltp_pages(self) -> int:
        """OLTP-resident pages that a join working space may displace."""
        return max(0, self._oltp_pages - self._oltp_protected_pages)

    def _evict_oltp_pages(self, pages: int) -> int:
        """Evict up to ``pages`` unprotected OLTP pages into the free pool."""
        evicted = min(pages, self._evictable_oltp_pages())
        if evicted > 0:
            self._oltp_pages -= evicted
            self.oltp_pages_evicted += evicted
            self._set_free(self._free_pages + evicted)
        return evicted

    def _serve_queue(self) -> None:
        # FCFS: only the head of the memory queue may be granted (paper §4).
        while self._memory_queue:
            pending = self._memory_queue[0]
            obtainable = self._free_pages + self._evictable_oltp_pages()
            if pending.min_pages > obtainable:
                return
            self._memory_queue.popleft()
            target = min(pending.desired_pages, obtainable)
            if target > self._free_pages:
                # Displace ordinary (unprotected) OLTP buffer pages; the OLTP
                # footprint re-establishes itself later by stealing back from
                # the join (PPHJ adaptation).
                self._evict_oltp_pages(target - self._free_pages)
            granted = max(pending.min_pages, min(pending.desired_pages, self._free_pages))
            working_space = WorkingSpace(
                owner=pending.owner,
                pages=granted,
                min_pages=pending.min_pages,
                steal_callback=pending.steal_callback,
            )
            self._working_spaces.append(working_space)
            self._set_free(self._free_pages - granted)
            self.reservations_granted += 1
            pending.event.succeed(working_space)

    # -- crash cleanup -------------------------------------------------------
    def purge_owner(self, owner: str) -> None:
        """Free every trace of ``owner`` (fault-injection kill).

        Releases working spaces held by the owner -- including spaces
        granted synchronously by :meth:`_serve_queue` that the (now killed)
        acquirer never resumed to consume -- and drops its pending memory
        reservations without failing their events.
        """
        for working_space in [
            ws for ws in self._working_spaces if ws.owner == owner
        ]:
            self.release(working_space)
        if any(pending.owner == owner for pending in self._memory_queue):
            self._memory_queue = deque(
                pending for pending in self._memory_queue if pending.owner != owner
            )
            self._serve_queue()

    # -- OLTP footprint (higher priority) -----------------------------------------
    def ensure_oltp_footprint(self, target_pages: int) -> int:
        """Grow the OLTP buffer footprint towards ``target_pages``.

        Pages come from the free pool first; if that is not enough, they are
        *stolen* from join working spaces (largest first, never below the
        space's minimum), invoking the owner's steal callback so the hash
        join can write partitions to disk (PPHJ adaptation).  Returns the
        number of pages added to the footprint.
        """
        target = min(target_pages, self.total_pages)
        # Half of the target is treated as the hot working set that join
        # working spaces may never displace; the rest is ordinary LRU content.
        self._oltp_protected_pages = max(self._oltp_protected_pages, target // 2)
        needed = target - self._oltp_pages
        if needed <= 0:
            return 0
        added = 0
        from_free = min(needed, self._free_pages)
        if from_free > 0:
            self._set_free(self._free_pages - from_free)
            self._oltp_pages += from_free
            added += from_free
            needed -= from_free
        # Stealing from running joins is reserved for the *protected* (hot)
        # part of the OLTP working set; ordinary LRU content is only refilled
        # from free pages, so a join placed on an OLTP node keeps the buffer
        # pages it displaced (paper footnote 4: OLTP has memory priority, the
        # memory-adaptive join adapts to what is taken away).
        needed = min(needed, max(0, self._oltp_protected_pages - self._oltp_pages))
        while needed > 0:
            victim = self._largest_stealable_space()
            if victim is None:
                break
            stealable = victim.pages - victim.min_pages
            take = min(stealable, needed)
            victim.pages -= take
            self._oltp_pages += take
            self.pages_stolen += take
            added += take
            needed -= take
            # No occupancy update: stealing moves pages between a working
            # space and the OLTP footprint, so the used-page count (the
            # monitored signal) is unchanged.
            if victim.steal_callback is not None:
                victim.steal_callback(take)
        return added

    def release_oltp_footprint(self, pages: int) -> int:
        """Shrink the OLTP footprint by up to ``pages`` pages."""
        released = min(pages, self._oltp_pages)
        if released > 0:
            self._oltp_pages -= released
            self._set_free(self._free_pages + released)
            self._serve_queue()
        return released

    def _largest_stealable_space(self) -> Optional[WorkingSpace]:
        candidates = [
            ws for ws in self._working_spaces if not ws.released and ws.pages > ws.min_pages
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda ws: ws.pages - ws.min_pages)
