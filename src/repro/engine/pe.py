"""Processing element (PE): one node of the Shared Nothing system.

Each PE is represented by a transaction manager, a query processing system,
CPU servers, a communication manager, a concurrency control component and a
buffer manager (paper §4, Fig. 3).  This class wires those components
together and offers the utilisation snapshots the control node polls.
"""

from __future__ import annotations

from typing import Optional

from repro.config.parameters import SystemConfig
from repro.engine.buffer import BufferManager
from repro.engine.deadlock import DeadlockDetector
from repro.engine.lock import LockManager
from repro.engine.transaction import TransactionManager
from repro.hardware.cpu import CpuServer
from repro.hardware.disk import DiskArray
from repro.sim import Environment

__all__ = ["ProcessingElement"]


class ProcessingElement:
    """One node: CPU(s), disks, buffer, locks and transaction management."""

    def __init__(
        self,
        env: Environment,
        pe_id: int,
        config: SystemConfig,
        deadlock_detector: Optional[DeadlockDetector] = None,
    ):
        self.env = env
        self.pe_id = pe_id
        self.config = config
        # Per-PE hardware: the effective_* accessors return the base config
        # objects verbatim for default-hardware PEs, so a uniform system is
        # bit-identical to the pre-heterogeneity simulator.
        self.node_class = config.node_class_name(pe_id)
        self.cpu_factor = config.cpu_factor(pe_id)
        self.cpu = CpuServer(env, config.effective_cpu(pe_id), config.costs, pe_id=pe_id)
        self.disks = DiskArray(env, config.effective_disk(pe_id), pe_id=pe_id)
        self.buffer = BufferManager(env, config.effective_buffer_pages(pe_id), pe_id=pe_id)
        self.locks = LockManager(env, pe_id=pe_id, deadlock_detector=deadlock_detector)
        self.transactions = TransactionManager(
            env, pe_id, config.multiprogramming_level
        )
        # Statistics counters updated by the execution layer.
        self.joins_processed = 0
        self.oltp_processed = 0
        self.temp_pages_written = 0
        self.temp_pages_read = 0
        self._disk_snapshot = self.disks.snapshot()
        self._recent_disk_utilization = 0.0

    # -- utilisation reporting -------------------------------------------------
    def close_report_window(self) -> None:
        """Close the current CPU/disk measurement window (control node tick)."""
        self.cpu.close_window()
        self._recent_disk_utilization = self.disks.utilization_since(self._disk_snapshot)
        self._disk_snapshot = self.disks.snapshot()

    @property
    def recent_cpu_utilization(self) -> float:
        return self.cpu.recent_utilization

    @property
    def recent_disk_utilization(self) -> float:
        return self._recent_disk_utilization

    @property
    def free_memory_pages(self) -> int:
        return self.buffer.free_pages

    @property
    def memory_utilization(self) -> float:
        return self.buffer.utilization()

    def describe(self) -> str:
        """Short status line (used by the CLI verbose mode)."""
        return (
            f"PE {self.pe_id}: cpu {self.cpu.utilization:0.2f}, "
            f"disk {self.disks.utilization():0.2f}, "
            f"mem {self.buffer.utilization():0.2f}, "
            f"active {self.transactions.active_count}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcessingElement {self.pe_id}>"
