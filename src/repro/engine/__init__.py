"""Node engine: buffer, locking, deadlock detection, transactions, 2PC, PE."""

from repro.engine.buffer import BufferManager, WorkingSpace
from repro.engine.deadlock import DeadlockDetector
from repro.engine.lock import DeadlockAbort, LockManager, LockMode
from repro.engine.pe import ProcessingElement
from repro.engine.transaction import TransactionManager
from repro.engine.twopc import CommitStatistics, run_commit

__all__ = [
    "BufferManager",
    "WorkingSpace",
    "DeadlockDetector",
    "DeadlockAbort",
    "LockManager",
    "LockMode",
    "ProcessingElement",
    "TransactionManager",
    "CommitStatistics",
    "run_commit",
]
