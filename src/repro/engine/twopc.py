"""Distributed two-phase commit.

Distributed two-phase commit involves all processors that participated in the
execution of a transaction/query (paper §4).  The *read-only optimisation* is
supported: read-only sub-transactions need only one distributed round (to
release their read locks) instead of two.

The protocol charges CPU for every message at sender and receiver, waits for
the network transfer, and performs a synchronous log write at each update
participant during the prepare phase (and at the coordinator for the final
decision record).
"""

from __future__ import annotations

from typing import Sequence

from repro.config.parameters import InstructionCosts
from repro.hardware.cpu import PRIORITY_QUERY
from repro.hardware.network import Network

__all__ = ["CommitStatistics", "run_commit"]


class CommitStatistics:
    """Counts of commit rounds and messages (for tests and reports)."""

    def __init__(self) -> None:
        self.commits = 0
        self.one_phase_commits = 0
        self.two_phase_commits = 0
        self.messages = 0

    def record(self, participants: int, read_only: bool) -> None:
        self.commits += 1
        if read_only:
            self.one_phase_commits += 1
            self.messages += 2 * participants
        else:
            self.two_phase_commits += 1
            self.messages += 4 * participants


def _pe_id(pe):
    """Endpoint id for topology-aware wire costs (None for bare test stubs)."""
    return getattr(pe, "pe_id", None)


def _control_message(sender, receiver, network: Network, priority: int):
    """One small control message from ``sender`` PE to ``receiver`` PE."""
    send_cost, receive_cost = network.control_message_instructions()
    yield from sender.cpu.consume(send_cost, priority=priority)
    yield from network.transfer(256, src=_pe_id(sender), dst=_pe_id(receiver))
    yield from receiver.cpu.consume(receive_cost, priority=priority)


def _deliver(sender, receiver, network: Network, priority: int):
    """Wire transfer plus receive-side CPU for one control message."""
    _, receive_cost = network.control_message_instructions()
    yield from network.transfer(256, src=_pe_id(sender), dst=_pe_id(receiver))
    yield from receiver.cpu.consume(receive_cost, priority=priority)


def _broadcast(env, sender, receivers, network: Network, priority: int):
    """Send one control message to every receiver.

    The sender's CPU is charged once for all sends (they are issued back to
    back); delivery and receive-side processing happen in parallel at the
    receivers, as in the real system.
    """
    send_cost, _ = network.control_message_instructions()
    yield from sender.cpu.consume(send_cost * len(receivers), priority=priority)
    yield env.all_of(
        [env.process(_deliver(sender, pe, network, priority)) for pe in receivers]
    )


def _gather(env, sender_pes, coordinator, network: Network, priority: int):
    """Every participant sends one reply; the coordinator receives them all."""
    send_cost, receive_cost = network.control_message_instructions()

    def reply(pe):
        yield from pe.cpu.consume(send_cost, priority=priority)
        yield from network.transfer(256, src=_pe_id(pe), dst=_pe_id(coordinator))

    yield env.all_of([env.process(reply(pe)) for pe in sender_pes])
    yield from coordinator.cpu.consume(receive_cost * len(sender_pes), priority=priority)


def run_commit(
    coordinator,
    participants: Sequence,
    network: Network,
    costs: InstructionCosts,
    read_only: bool = True,
    priority: int = PRIORITY_QUERY,
    statistics: CommitStatistics | None = None,
    log_write=None,
):
    """Simulation step executing the commit protocol.

    ``coordinator`` and ``participants`` are ProcessingElement-like objects
    exposing ``cpu`` and ``disks``; the coordinator must not appear in the
    participant list.  ``log_write`` optionally overrides the participant log
    write step (used by tests).
    """
    env = coordinator.env
    remote = [pe for pe in participants if pe is not coordinator]
    if statistics is not None:
        statistics.record(len(remote), read_only)

    if not remote:
        # Purely local transaction: just force the local log for updates.
        if not read_only:
            yield from coordinator.cpu.consume(costs.io_operation, priority=priority)
            yield from coordinator.disks.write_random()
        return

    if read_only:
        # One round: release read locks at the participants, collect acks.
        yield from _broadcast(env, coordinator, remote, network, priority)
        yield from _gather(env, remote, coordinator, network, priority)
        return

    # Phase 1: prepare -- each participant forces a prepare log record and votes.
    yield from _broadcast(env, coordinator, remote, network, priority)

    def prepare(participant):
        yield from participant.cpu.consume(costs.io_operation, priority=priority)
        if log_write is not None:
            yield from log_write(participant)
        else:
            yield from participant.disks.write_random()

    yield env.all_of([env.process(prepare(pe)) for pe in remote])
    yield from _gather(env, remote, coordinator, network, priority)

    # Coordinator forces the commit record.
    yield from coordinator.cpu.consume(costs.io_operation, priority=priority)
    yield from coordinator.disks.write_random()

    # Phase 2: commit decision and acknowledgements.
    yield from _broadcast(env, coordinator, remote, network, priority)
    yield from _gather(env, remote, coordinator, network, priority)
