"""Central global deadlock detection.

Global deadlocks are resolved by a central deadlock detection scheme
(paper §4): every lock manager reports waits-for edges to this detector; a
periodic sweep searches the global waits-for graph for cycles and aborts the
youngest transaction of each cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.sim import Environment

__all__ = ["DeadlockDetector"]

#: Callback used to abort a victim: ``abort(txn_id) -> bool``.
AbortCallback = Callable[[int], bool]


class DeadlockDetector:
    """Maintains the global waits-for graph and periodically breaks cycles."""

    def __init__(
        self,
        env: Environment,
        detection_interval: float = 1.0,
        abort_callback: Optional[AbortCallback] = None,
    ):
        self.env = env
        self.detection_interval = detection_interval
        self.abort_callback = abort_callback
        self._waits_for: Dict[int, Set[int]] = {}
        self.cycles_found = 0
        self.victims: List[int] = []
        self._running = False

    # -- graph maintenance ----------------------------------------------------
    def add_wait(self, waiter: int, holder: int) -> None:
        """Record that ``waiter`` waits for a lock held by ``holder``."""
        if waiter == holder:
            return
        self._waits_for.setdefault(waiter, set()).add(holder)

    def remove_wait_edges(self, waiter: int) -> None:
        """Remove all outgoing edges of ``waiter`` (its wait was satisfied)."""
        self._waits_for.pop(waiter, None)

    def remove_transaction(self, txn_id: int) -> None:
        """Remove a terminated transaction from the graph entirely."""
        self._waits_for.pop(txn_id, None)
        for targets in self._waits_for.values():
            targets.discard(txn_id)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._waits_for.values())

    # -- detection ---------------------------------------------------------------
    def find_cycle(self) -> Optional[List[int]]:
        """Return one cycle in the waits-for graph, or None."""
        visited: Set[int] = set()
        on_stack: Set[int] = set()
        stack: List[int] = []

        def dfs(node: int) -> Optional[List[int]]:
            visited.add(node)
            on_stack.add(node)
            stack.append(node)
            for successor in self._waits_for.get(node, ()):
                if successor not in visited:
                    cycle = dfs(successor)
                    if cycle is not None:
                        return cycle
                elif successor in on_stack:
                    index = stack.index(successor)
                    return stack[index:]
            on_stack.discard(node)
            stack.pop()
            return None

        for node in list(self._waits_for):
            if node not in visited:
                cycle = dfs(node)
                if cycle is not None:
                    return cycle
        return None

    def detect_and_resolve(self) -> List[int]:
        """Break all cycles, returning the list of victim transaction ids.

        The youngest transaction (the one with the largest id, i.e. the most
        recently started) of each cycle is chosen as the victim.
        """
        victims: List[int] = []
        while True:
            cycle = self.find_cycle()
            if cycle is None:
                break
            self.cycles_found += 1
            victim = max(cycle)
            victims.append(victim)
            self.victims.append(victim)
            self.remove_transaction(victim)
            if self.abort_callback is not None:
                self.abort_callback(victim)
        return victims

    # -- periodic operation ----------------------------------------------------------
    def start(self) -> None:
        """Start the periodic detection process."""
        if self._running:
            return
        self._running = True
        self.env.process(self._run())

    def _run(self):
        while True:
            yield self.env.timeout(self.detection_interval)
            self.detect_and_resolve()
