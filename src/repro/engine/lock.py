"""Distributed strict two-phase locking.

Each PE owns the locks for the data stored on it; a transaction acquires
locks at whichever PE it touches and holds them until commit (strict 2PL,
long read and write locks -- paper §4).  Lock waits are reported to the
central deadlock detector (:mod:`repro.engine.deadlock`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict

from repro.sim import Environment, Event

__all__ = ["LockMode", "DeadlockAbort", "LockManager"]


class LockMode(str, Enum):
    """Lock modes: shared (read) and exclusive (write)."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        # Canonical compatibility matrix (only S/S is compatible).  The hot
        # paths in LockManager._grantable and LockManager._wake_waiters
        # inline this predicate -- keep them in sync when changing it.
        return self is LockMode.SHARED and other is LockMode.SHARED


class DeadlockAbort(Exception):
    """Raised in a waiting transaction chosen as a deadlock victim."""

    def __init__(self, txn_id: int):
        super().__init__(f"transaction {txn_id} aborted to break a deadlock")
        self.txn_id = txn_id


@dataclass
class _LockRequest:
    txn_id: int
    mode: LockMode
    event: Event


@dataclass
class _LockEntry:
    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: Deque[_LockRequest] = field(default_factory=deque)


class LockManager:
    """Lock table of a single PE."""

    def __init__(self, env: Environment, pe_id: int = 0, deadlock_detector=None):
        self.env = env
        self.pe_id = pe_id
        self.deadlock_detector = deadlock_detector
        self._table: Dict[object, _LockEntry] = {}
        # Resources held per transaction, as an insertion-ordered dict used as
        # an ordered set: release_all must walk (and wake waiters) in lock
        # acquisition order.  Resource keys contain strings, so a plain set's
        # iteration order would vary with PYTHONHASHSEED and make mixed
        # OLTP workloads (Fig. 9) irreproducible across interpreter runs.
        self._held_by_txn: Dict[int, Dict[object, None]] = {}
        self.acquired = 0
        self.waited = 0
        self.aborts = 0

    # -- acquisition ---------------------------------------------------------
    def acquire(self, txn_id: int, resource: object, mode: LockMode) -> Event:
        """Request a lock; the returned event triggers when it is granted.

        The event fails with :class:`DeadlockAbort` if the transaction is
        chosen as a deadlock victim while waiting.
        """
        entry = self._table.setdefault(resource, _LockEntry())
        held = entry.holders.get(txn_id)
        event = Event(self.env)
        if held is not None and (held is LockMode.EXCLUSIVE or mode is LockMode.SHARED):
            # Already held in a sufficient mode.
            event.succeed(mode)
            return event
        if self._grantable(entry, txn_id, mode):
            self._grant(entry, txn_id, resource, mode)
            event.succeed(mode)
            return event
        # Must wait: register the waits-for edges for deadlock detection.
        self.waited += 1
        request = _LockRequest(txn_id=txn_id, mode=mode, event=event)
        entry.waiters.append(request)
        if self.deadlock_detector is not None:
            for holder in entry.holders:
                if holder != txn_id:
                    self.deadlock_detector.add_wait(txn_id, holder)
        return event

    def _grantable(self, entry: _LockEntry, txn_id: int, mode: LockMode) -> bool:
        if entry.waiters:
            # FIFO fairness: nobody jumps the queue.
            return False
        # Inlined LockMode.compatible_with (only S/S is compatible): every
        # OLTP tuple access takes a lock, so this is a hot path.  Keep in
        # sync with the enum method.
        if mode is LockMode.SHARED:
            for holder, held_mode in entry.holders.items():
                if holder != txn_id and held_mode is not LockMode.SHARED:
                    return False
            return True
        for holder in entry.holders:
            if holder != txn_id:
                return False
        return True

    def _grant(self, entry: _LockEntry, txn_id: int, resource: object, mode: LockMode) -> None:
        current = entry.holders.get(txn_id)
        if current is None or mode is LockMode.EXCLUSIVE:
            entry.holders[txn_id] = mode
        self._held_by_txn.setdefault(txn_id, {})[resource] = None
        self.acquired += 1

    # -- release ----------------------------------------------------------------
    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit or abort time)."""
        resources = self._held_by_txn.pop(txn_id, ())
        if self.deadlock_detector is not None:
            self.deadlock_detector.remove_transaction(txn_id)
        for resource in resources:
            entry = self._table.get(resource)
            if entry is None:
                continue
            entry.holders.pop(txn_id, None)
            self._wake_waiters(resource, entry)
            if not entry.holders and not entry.waiters:
                self._table.pop(resource, None)

    def _wake_waiters(self, resource: object, entry: _LockEntry) -> None:
        while entry.waiters:
            request = entry.waiters[0]
            req_txn = request.txn_id
            # Inlined LockMode.compatible_with -- keep in sync with the enum.
            shared = request.mode is LockMode.SHARED
            compatible = True
            for holder, mode in entry.holders.items():
                if holder != req_txn and not (shared and mode is LockMode.SHARED):
                    compatible = False
                    break
            if not compatible:
                return
            entry.waiters.popleft()
            self._grant(entry, request.txn_id, resource, request.mode)
            if self.deadlock_detector is not None:
                self.deadlock_detector.remove_wait_edges(request.txn_id)
                # Re-add edges for any other queue it might still sit in
                # (a transaction only waits for one lock at a time in this
                # simulator, so nothing to re-add in practice).
            request.event.succeed(request.mode)

    # -- deadlock victim handling ---------------------------------------------------
    def abort_waiter(self, txn_id: int) -> bool:
        """Abort a *waiting* transaction: fail its pending request.

        Returns True if the transaction was found waiting at this PE.
        """
        found = False
        for resource, entry in list(self._table.items()):
            remaining: Deque[_LockRequest] = deque()
            for request in entry.waiters:
                if request.txn_id == txn_id:
                    found = True
                    request.event.fail(DeadlockAbort(txn_id))
                else:
                    remaining.append(request)
            entry.waiters = remaining
            if found:
                self._wake_waiters(resource, entry)
        if found:
            self.aborts += 1
            self.release_all(txn_id)
        return found

    # -- crash cleanup ----------------------------------------------------------------
    def purge_txn(self, txn_id: int) -> None:
        """Silently drop every trace of ``txn_id`` (fault-injection kill).

        Unlike :meth:`abort_waiter`, pending requests are removed *without*
        failing their events -- the waiting process has already been killed,
        and failing an event nobody listens to would raise at environment
        level.  Held locks are released and compatible waiters are woken.
        """
        for resource, entry in list(self._table.items()):
            if not entry.waiters:
                continue
            remaining: Deque[_LockRequest] = deque(
                request for request in entry.waiters if request.txn_id != txn_id
            )
            if len(remaining) != len(entry.waiters):
                entry.waiters = remaining
                self._wake_waiters(resource, entry)
                if not entry.holders and not entry.waiters:
                    self._table.pop(resource, None)
        self.release_all(txn_id)

    # -- inspection --------------------------------------------------------------------
    def holds(self, txn_id: int, resource: object) -> bool:
        entry = self._table.get(resource)
        return entry is not None and txn_id in entry.holders

    def waiting_count(self) -> int:
        return sum(len(entry.waiters) for entry in self._table.values())

    def held_count(self) -> int:
        return sum(len(entry.holders) for entry in self._table.values())
