"""Per-PE transaction manager.

The transaction manager controls the (distributed) execution of transactions
on its PE.  The maximal number of concurrent transactions (inter-transaction
parallelism) per PE is bounded by a multiprogramming level; newly arriving
transactions wait in an input queue when the limit is reached (paper §4).
"""

from __future__ import annotations

from typing import Dict

from repro.sim import Environment, Resource, TimeWeightedMonitor
from repro.workload.query import Transaction

__all__ = ["TransactionManager"]


class TransactionManager:
    """Admission control and bookkeeping for one PE."""

    def __init__(self, env: Environment, pe_id: int, multiprogramming_level: int):
        if multiprogramming_level < 1:
            raise ValueError("multiprogramming level must be >= 1")
        self.env = env
        self.pe_id = pe_id
        self.multiprogramming_level = multiprogramming_level
        self._slots = Resource(env, capacity=multiprogramming_level, name=f"mpl[{pe_id}]")
        self._active: Dict[int, Transaction] = {}
        self.input_queue_monitor = TimeWeightedMonitor(env, initial=0, name=f"inq[{pe_id}]")
        self.admitted = 0
        self.completed = 0

    # -- admission ------------------------------------------------------------
    def admit(self, transaction: Transaction):
        """Simulation step: wait for a free MPL slot, then register the txn.

        Returns the slot request which must be passed to :meth:`finish`.
        Usage::

            slot = yield from txn_manager.admit(txn)
            ...
            txn_manager.finish(txn, slot)
        """
        self.input_queue_monitor.add(1)
        request = self._slots.request()
        try:
            yield request
        except BaseException:
            # Aborted (killed / deadlock-failed) while waiting for or holding
            # an unconsumed slot: give it back so the MPL slot cannot leak.
            self._slots.release(request)
            self.input_queue_monitor.add(-1)
            raise
        self.input_queue_monitor.add(-1)
        self._active[transaction.txn_id] = transaction
        self.admitted += 1
        return request

    def finish(self, transaction: Transaction, slot_request) -> None:
        """Release the MPL slot at end of transaction."""
        self._active.pop(transaction.txn_id, None)
        self.completed += 1
        self._slots.release(slot_request)

    # -- inspection -------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Transactions currently holding an MPL slot on this PE."""
        return len(self._active)

    @property
    def input_queue_length(self) -> int:
        """Transactions waiting for admission."""
        return self._slots.queue_length

    def is_active(self, txn_id: int) -> bool:
        return txn_id in self._active

    def average_input_queue(self) -> float:
        return self.input_queue_monitor.time_average()
