"""Discrete-event simulation kernel used by the parallel database simulator."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.monitor import TimeWeightedMonitor, ValueMonitor
from repro.sim.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "TimeWeightedMonitor",
    "ValueMonitor",
]
