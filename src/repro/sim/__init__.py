"""Discrete-event simulation kernel used by the parallel database simulator."""

from repro.sim.core import (
    AllOf,
    AnyOf,
    BatchHop,
    BatchTimeout,
    BatchWalk,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    coalescing_enabled,
)
from repro.sim.monitor import TimeWeightedMonitor, ValueMonitor
from repro.sim.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchHop",
    "BatchTimeout",
    "BatchWalk",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "coalescing_enabled",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "TimeWeightedMonitor",
    "ValueMonitor",
]
