"""Statistics monitors for simulation entities.

Two kinds of observation are needed throughout the simulator:

* plain value series (response times, chosen degrees of parallelism) ->
  :class:`ValueMonitor`;
* piecewise-constant signals over simulated time (queue lengths, buffer
  occupancy, utilisation) -> :class:`TimeWeightedMonitor`.

Both support ``reset()`` so measurements can exclude the warm-up phase.

The monitors are read on every control-node report tick, so the expensive
queries are incremental: extrema are maintained as running values at record
time and percentile queries reuse one cached sorted copy of the samples
(invalidated by the next ``record``) instead of re-sorting per call.
"""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["ValueMonitor", "TimeWeightedMonitor", "percentile_sorted"]

_INF = float("inf")


def percentile_sorted(data: List[float], q: float) -> float:
    """q-th percentile (0..100) of pre-sorted ``data``, linear interpolation.

    Shared by :meth:`ValueMonitor.percentile` and the windowed timeline
    collector; returns 0.0 for an empty sequence.
    """
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return data[low]
    frac = rank - low
    return data[low] * (1 - frac) + data[high] * frac


class ValueMonitor:
    """Streaming statistics over observed values.

    Keeps the raw samples (needed for percentiles in the experiment reports)
    together with running sums and extrema for O(1) mean/variance/min/max
    queries; percentile queries sort at most once per recorded sample.
    """

    __slots__ = ("name", "samples", "_sum", "_sum_sq", "_min", "_max", "_sorted")

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = _INF
        self._max = -_INF
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        """Add one observation."""
        self.samples.append(value)
        self._sum += value
        self._sum_sq += value * value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._sorted = None

    def reset(self) -> None:
        """Discard all observations (used at the end of warm-up)."""
        self.samples.clear()
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = _INF
        self._max = -_INF
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return self._sum / len(self.samples) if self.samples else 0.0

    @property
    def variance(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return max(0.0, (self._sum_sq - n * mean * mean) / (n - 1))

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest recorded value (0.0 when empty); running, O(1)."""
        return self._min if self.samples else 0.0

    @property
    def maximum(self) -> float:
        """Largest recorded value (0.0 when empty); running, O(1)."""
        return self._max if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) using linear interpolation."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        data = self._sorted
        if data is None:
            data = self._sorted = sorted(self.samples)
        return percentile_sorted(data, q)

    def confidence_interval(self, level: float = 0.95) -> float:
        """Half-width of the normal-approximation confidence interval."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(level, 1.96)
        return z * self.stddev / math.sqrt(n)


class TimeWeightedMonitor:
    """Time-weighted average of a piecewise-constant signal."""

    __slots__ = ("env", "name", "_value", "_last_time", "_area", "_start_time", "_maximum")

    def __init__(self, env, initial: float = 0.0, name: str = ""):
        self.env = env
        self.name = name
        self._value = float(initial)
        self._last_time = env.now
        self._area = 0.0
        self._start_time = env.now
        self._maximum = float(initial)

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def update(self, new_value: float) -> None:
        """Change the signal to ``new_value`` at the current time."""
        now = self.env._now
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(new_value)
        if new_value > self._maximum:
            self._maximum = float(new_value)

    def add(self, delta: float) -> None:
        """Increment the signal by ``delta``."""
        self.update(self._value + delta)

    def reset(self) -> None:
        """Restart averaging from the current time (keeps the current value)."""
        self._area = 0.0
        self._last_time = self.env.now
        self._start_time = self.env.now
        self._maximum = self._value

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of the signal since the last reset."""
        now = self.env.now if until is None else until
        elapsed = now - self._start_time
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / elapsed

    def integral(self) -> float:
        """Accumulated signal-time area since the last reset.

        Differencing two integrals gives the exact time-weighted mean over a
        window without resetting the monitor (the windowed timeline collector
        must not disturb the run-level averages).
        """
        return self._area + self._value * (self.env.now - self._last_time)

    @property
    def maximum(self) -> float:
        return self._maximum
