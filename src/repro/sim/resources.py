"""Resource abstractions for the discrete-event kernel.

Three families of shared entities are provided, mirroring what the database
simulator needs:

* :class:`Resource` / :class:`PriorityResource` -- a server (or a set of
  servers) with a request queue.  CPUs, disks, disk controllers and the
  network links are modelled as resources.
* :class:`Container` -- a pool of homogeneous "stuff" (e.g. memory pages)
  with blocking ``get``/``put``.
* :class:`Store` -- a queue of discrete items (e.g. messages) with blocking
  ``get``/``put``.

All request-like events are context managers so the canonical usage is::

    with resource.request() as req:
        yield req
        yield env.timeout(service_time)

Hot-path notes: resources maintain the invariant that live (non-cancelled)
requests only wait in the queue while every server slot is taken, so
``request()`` grants immediately without touching the queue whenever a slot
is free.  Cancelled requests are discarded *lazily* when they surface at the
queue head (O(1) per cancellation, instead of an O(n) scan-and-remove), and
:class:`PriorityResource` keeps its queue as a heap ordered by
``(priority, arrival)`` -- the exact tie-break order of the previous
linear-scan implementation, so grant order is unchanged.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.core import PENDING, Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Request", "Container", "Store"]

#: Cancelled-entry count past which a queue is eligible for compaction.
_COMPACT_THRESHOLD = 32


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "_key", "cancelled")

    def __init__(self, resource: "Resource", priority: int = 0):
        # Inlined Event.__init__: requests are created on every CPU slice,
        # disk I/O and network transfer.
        self.env = resource.env
        self.callbacks = None
        self._value = PENDING
        self._ok = True
        self.resource = resource
        self.priority = priority
        self._key = resource._counter = resource._counter + 1
        self.cancelled = False

    # Context manager protocol: releases the slot on exit.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op once granted)."""
        if self._value is PENDING and not self.cancelled:
            self.cancelled = True
            # The request stays in the queue and is discarded when it
            # surfaces at the head; only the live-waiter count drops now.
            resource = self.resource
            resource._queued -= 1
            cancelled = resource._cancelled = resource._cancelled + 1
            # Churn guard: once enough dead entries accumulate *and* they
            # dominate the queue, compact it in one pass so heap pushes stay
            # O(log live) instead of O(log total) under cancellation storms.
            if cancelled >= _COMPACT_THRESHOLD and cancelled * 2 >= len(resource.queue):
                resource._compact()


class Resource:
    """A FIFO multi-server resource.

    ``capacity`` servers are available; additional requests queue in FIFO
    order.  Utilisation accounting (busy server time) is kept so that the
    control node can compute CPU/disk utilisation without extra bookkeeping
    in the callers.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.name = name
        #: Requests currently holding a server slot (unordered; membership
        #: and removal are O(1)).
        self.users: set[Request] = set()
        self.queue: Any = self._make_queue()
        self._counter = 0
        self._queued = 0  # live (non-cancelled) waiting requests
        self._cancelled = 0  # dead entries still sitting in the queue
        # Utilisation accounting.
        self._busy_time = 0.0
        self._last_change = env.now
        self._busy_servers = 0
        #: Active macro-event batch virtualising this resource (see the
        #: hardware coalescing layers); None outside a batched run.
        self._batch: Any = None

    def _make_queue(self):
        return deque()

    def _compact(self) -> None:
        """Drop cancelled entries from the queue in one pass (FIFO order kept)."""
        self.queue = deque(req for req in self.queue if not req.cancelled)
        self._cancelled = 0

    # -- accounting ------------------------------------------------------
    def _account(self) -> None:
        batch = self._batch
        if batch is not None:
            # An observer is about to read the accounting mid-batch: replay
            # the micro-step boundaries the unbatched run would already have
            # processed so the float sums are bit-identical.
            batch.sync(self.env._now)
        now = self.env._now
        busy = self._busy_servers
        if busy:
            self._busy_time += busy * (now - self._last_change)
        self._last_change = now

    @property
    def count(self) -> int:
        """Number of servers currently in use."""
        return self._busy_servers

    @property
    def queue_length(self) -> int:
        """Number of requests still waiting (cancelled ones excluded)."""
        return self._queued

    def busy_time(self) -> float:
        """Aggregate busy server-time accumulated so far."""
        self._account()
        return self._busy_time

    def utilization(self, since_time: float = 0.0, since_busy: float = 0.0) -> float:
        """Average utilisation (0..1) since a reference point."""
        self._account()
        elapsed = self.env.now - since_time
        if elapsed <= 0:
            return 0.0
        return (self._busy_time - since_busy) / (elapsed * self.capacity)

    def snapshot(self) -> tuple[float, float]:
        """Return (now, busy_time) for later differential utilisation."""
        self._account()
        return self.env.now, self._busy_time

    # -- queueing --------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Request one server slot; the returned event triggers when granted."""
        batch = self._batch
        if batch is not None:
            # A competing request arrived mid-batch: charge the elapsed
            # prefix of the macro-event and split it on the next micro-step
            # boundary, then proceed against the (now exact) resource state.
            batch.preempt()
        req = Request(self, priority)
        busy = self._busy_servers
        if busy < self.capacity:
            # Invariant: live requests only queue while all slots are taken,
            # so a free slot means nobody may be granted before us.
            now = self.env._now
            if busy:
                self._busy_time += busy * (now - self._last_change)
            self._last_change = now
            self.users.add(req)
            self._busy_servers = busy + 1
            req.succeed(self)
        else:
            self._queued += 1
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Release a previously granted slot (ungranted requests are cancelled)."""
        try:
            self.users.remove(request)
        except KeyError:
            request.cancel()
            return
        now = self.env._now
        busy = self._busy_servers
        self._busy_time += busy * (now - self._last_change)
        self._last_change = now
        self._busy_servers = busy - 1
        if self.queue:
            self._trigger_queue()

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _trigger_queue(self) -> None:
        queue = self.queue
        while self._busy_servers < self.capacity and queue:
            req = queue.popleft()
            if req.cancelled:
                self._cancelled -= 1
                continue
            self._queued -= 1
            self._grant(req)

    def _grant(self, req: Request) -> None:
        now = self.env._now
        busy = self._busy_servers
        if busy:
            self._busy_time += busy * (now - self._last_change)
        self._last_change = now
        self.users.add(req)
        self._busy_servers = busy + 1
        req.succeed(self)


class PriorityResource(Resource):
    """A resource whose queue is ordered by priority (lower value first).

    Ties are broken FIFO via the per-resource request counter.  This is used
    for CPUs when OLTP transactions must take precedence over complex query
    work (see the paper's memory-adaptive join discussion, footnote 4).

    The queue is a binary heap on ``(priority, arrival counter)``; grants pop
    the minimum, which is exactly the request the previous linear scan
    selected, so the service order is unchanged.
    """

    def _make_queue(self):
        return []

    def _enqueue(self, request: Request) -> None:
        heappush(self.queue, (request.priority, request._key, request))

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        The heap is ordered by ``(priority, arrival counter)`` tuples, which
        are unique per request, so rebuilding from the surviving entries
        yields exactly the same grant order.
        """
        queue = [entry for entry in self.queue if not entry[2].cancelled]
        heapify(queue)
        self.queue = queue
        self._cancelled = 0

    def _trigger_queue(self) -> None:
        queue = self.queue
        while self._busy_servers < self.capacity and queue:
            req = heappop(queue)[2]
            if req.cancelled:
                self._cancelled -= 1
                continue
            self._queued -= 1
            self._grant(req)


class Container:
    """A pool of continuous or discrete capacity with blocking get/put.

    Used for token-style accounting (e.g. free page frames).  ``get``
    requests are served FIFO; a larger request blocks smaller later ones to
    preserve fairness (no starvation of big memory requests).
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if init < 0 or init > capacity:
            raise SimulationError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Currently available amount."""
        return self._level

    def get(self, amount: float) -> Event:
        """Blocking request to remove ``amount`` from the container."""
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._serve()
        return event

    def put(self, amount: float) -> Event:
        """Blocking request to add ``amount`` to the container."""
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._serve()
        return event

    def _serve(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """An unbounded (or bounded) queue of discrete items with blocking get."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Add an item; blocks while the store is at capacity."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._serve()
        return event

    def get(self, filter_fn: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return the first item (optionally matching a filter)."""
        event = Event(self.env)
        self._getters.append((event, filter_fn))
        self._serve()
        return event

    def __len__(self) -> int:
        return len(self.items)

    def _serve(self) -> None:
        progress = True
        while progress:
            progress = False
            items = self.items
            while self._putters and len(items) < self.capacity:
                event, item = self._putters.popleft()
                items.append(item)
                event.succeed(item)
                progress = True
            if self._getters and items:
                event, filter_fn = self._getters[0]
                found = None
                if filter_fn is None:
                    found = items.popleft()
                else:
                    for candidate in items:
                        if filter_fn(candidate):
                            found = candidate
                            items.remove(candidate)
                            break
                if found is not None:
                    self._getters.popleft()
                    event.succeed(found)
                    progress = True
                else:
                    break
