"""Generator-based discrete-event simulation kernel.

This is the substrate on which the whole Shared Nothing database simulator is
built.  The design follows the classic process-interaction style (as in SimPy):
simulation processes are Python generators that ``yield`` :class:`Event`
objects; the :class:`Environment` advances simulated time and resumes processes
when the events they wait on are triggered.

Only the features actually needed by the database simulator are implemented,
which keeps the kernel small, fast and easy to test:

* :class:`Environment` -- event queue and clock.
* :class:`Event` -- one-shot events with success/failure values.
* :class:`Timeout` -- an event triggered after a simulated delay.
* :class:`Process` -- wraps a generator into an event (its termination).
* :class:`AllOf` / :class:`AnyOf` -- condition events.

Resource abstractions (servers, token pools, stores) live in
:mod:`repro.sim.resources`.

The kernel is the hot path of every experiment point, so the implementation
trades a little uniformity for constant-factor speed:

* callback lists are allocated lazily (most events have zero or one waiter;
  ``callbacks`` is ``None`` until the first waiter registers and the
  :data:`PROCESSED` sentinel once the callbacks have run);
* heap entries are bare ``(time, eid, event)`` triples -- the tie-breaking
  event id alone fixes FIFO order at equal times;
* a process whose yielded target has *already been processed* is resumed
  synchronously instead of round-tripping an intermediate event through the
  heap;
* :meth:`Environment.run` inlines the per-event work of :meth:`step` so the
  main loop costs one heap pop and one callback walk per event.

Events still fire in ``(time, schedule order)`` sequence and callback
registration order is preserved.  One scheduling contract is deliberately
different from the pre-overhaul kernel: a process yielding an event that was
*already processed* continues immediately (same timestamp), instead of being
re-queued behind other events already scheduled at the current time.  No
simulator code path depends on the old deferred ordering -- the golden-file
determinism test (``tests/test_determinism.py``) pins that experiment
outcomes are byte-identical across the overhaul.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "BatchTimeout",
    "BatchHop",
    "BatchWalk",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
    "PENDING",
    "PROCESSED",
    "coalescing_enabled",
]


def coalescing_enabled() -> bool:
    """True unless ``REPRO_COALESCE=0`` disables macro-event coalescing.

    Hardware servers read this once at construction time, so a toggle applies
    to newly built systems (the A/B comparisons in the perf harness and the
    determinism tests run each mode in a fresh driver/subprocess).
    """
    return os.environ.get("REPRO_COALESCE", "1") != "0"


class SimulationError(Exception):
    """Raised for illegal uses of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Pending:
    """Sentinel for the value of an event that has not been triggered."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


class _Processed:
    """Sentinel stored in ``Event.callbacks`` once the callbacks have run.

    The sentinel is *falsy*: a :class:`BatchTimeout` that was split leaves its
    original heap entry behind, so the same event can surface in the run loop
    twice.  The second pop sees ``callbacks is PROCESSED`` -- falsy -- and
    (the event being successful) drops the entry without touching the
    ``elif not event._ok`` error path, at zero cost to the hot loop.
    """

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PROCESSED>"


PENDING = _Pending()
PROCESSED = _Processed()


class Event:
    """A one-shot occurrence in simulated time.

    Events start *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers them, which schedules them for processing; at processing time
    every registered callback is invoked exactly once.

    ``callbacks`` is ``None`` while no waiter has registered (the list is
    allocated lazily), a list of callables while waiters are registered, and
    the :data:`PROCESSED` sentinel once the event has been processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Any = None
        self._value: Any = PENDING
        self._ok: bool = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have run."""
        return self.callbacks is PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (raises if still pending)."""
        if self._value is PENDING:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    # -- callback registration -------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run at processing time.

        Must not be called on an already processed event (check
        :attr:`processed` first).
        """
        callbacks = self.callbacks
        if callbacks is None:
            self.callbacks = [callback]
        else:
            callbacks.append(callback)

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on the event.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback use)."""
        if self._value is not PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined Event.__init__ + scheduling: timeouts are the most common
        # event by far and are born triggered.
        self.env = env
        self.callbacks = None
        self._value = value
        self._ok = True
        self.delay = delay
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now + delay, eid, self))


class BatchTimeout(Event):
    """A macro-event covering a coalesced run of uncontended micro-steps.

    Unlike :class:`Timeout` it is scheduled at an *absolute* simulated time:
    the caller computes the end of the batched run by folding the micro-step
    durations with repeated float additions, so the end time is bit-identical
    to the clock value the unbatched per-step loop would have reached.

    With ``defer=True`` the event is *not* pushed onto the heap at creation;
    the owning batch drives it through the :class:`BatchHop` protocol instead
    and pushes it only when the hop cursor reaches the batch end (or on
    :meth:`split`).  Deferral keeps the heap-entry *push moments* aligned with
    the moments the unbatched loop would push its per-step timeouts, which is
    what makes same-timestamp tie-breaking (event-id order) reproducible.

    :meth:`split` is the deterministic preemption hook: when a competing
    request arrives mid-batch, the batch owner charges the elapsed prefix of
    the run and reschedules this event to the first micro-step boundary at or
    after the arrival, where the remainder is requeued through the ordinary
    per-step path.  A superseded heap entry is left in place; it is skipped
    when popped because the event is already processed (see
    :class:`_Processed`).
    """

    __slots__ = ("_when",)

    def __init__(
        self, env: "Environment", at: float, value: Any = None, defer: bool = False
    ):
        if at < env._now:
            raise SimulationError(f"batch end {at} lies in the past (now={env._now})")
        self.env = env
        self.callbacks = None
        self._value = value
        self._ok = True
        self._when = at
        if not defer:
            eid = env._eid = env._eid + 1
            heappush(env._queue, (at, eid, self))

    @property
    def when(self) -> float:
        """Absolute time this event is (currently) scheduled to fire."""
        return self._when

    def split(self, at: float) -> None:
        """Reschedule the macro-event to an earlier absolute time ``at``.

        ``at`` must lie in ``[now, when]``.  A fresh heap entry is pushed (the
        event id keeps same-time ordering consistent with an event scheduled
        at the preemption instant); the old entry becomes a stale duplicate.
        """
        env = self.env
        if self.callbacks is PROCESSED:
            raise SimulationError("cannot split an already processed BatchTimeout")
        if at > self._when:
            raise SimulationError(f"split time {at} lies beyond the batch end {self._when}")
        if at < env._now:
            raise SimulationError(f"split time {at} lies in the past (now={env._now})")
        self._when = at
        eid = env._eid = env._eid + 1
        heappush(env._queue, (at, eid, self))

    def fire(self) -> None:
        """Dispatch the deferred macro-event inline, at the caller's position.

        Used by a preempted batch whose pending :class:`BatchHop` marker
        already sits at the split boundary: the marker's heap entry holds
        exactly the ``(time, eid)`` slot the unbatched per-step timeout
        would occupy, so the wake must run at the marker's pop position.
        Pushing a fresh entry (as :meth:`split` does) would give the wake a
        *later* event id -- allocated at the preemption instant instead of
        the step start -- and lose same-instant tie-breaks against events
        scheduled in between.
        """
        env = self.env
        if self.callbacks is PROCESSED:
            raise SimulationError("cannot fire an already processed BatchTimeout")
        self._when = env._now
        callbacks = self.callbacks
        self.callbacks = PROCESSED
        if callbacks:
            for callback in callbacks:
                callback(self)


_INF = float("inf")


def _hop_dispatch(event: "Event") -> None:
    """Advance a macro-event batch past the quiet stretch ahead of it.

    Runs as the (sole) callback of a popped :class:`BatchHop` entry.  Hop
    entries live in the environment's *marker heap* (``env._hops``), not in
    the real event queue: they carry no simulation semantics, so the horizon
    a batch may advance towards is the next **real** event -- other batches'
    markers are transparent.  That is what lets a fleet of simultaneously
    batched resources jump straight to their macro ends instead of
    leap-frogging one another boundary by boundary, while each marker still
    pops in exact ``(time, eid)`` order relative to real events (so a
    boundary sharing an instant with a real event is realized at precisely
    the pop position the unbatched release would occupy).
    """
    batch = event.batch
    if batch._alive:
        queue = event.env._queue
        batch.hop(queue[0][0] if queue else _INF)


class BatchHop(Event):
    """Scheduling-only marker that walks a batch's micro-step boundaries.

    A live batch keeps exactly one pending heap entry: either a ``BatchHop``
    at an interior boundary or (once the cursor reaches the end) the
    :class:`BatchTimeout` itself.  Each hop entry is pushed at the simulated
    moment the unbatched loop would push the corresponding per-step timeout,
    so event-id tie-breaking at equal timestamps is preserved exactly; when
    the heap holds nothing before the batch end, the cursor jumps there in a
    single hop and the interior boundaries cost nothing.

    The owning batch object must provide ``_alive`` (False once split or
    finished) and ``hop(horizon)`` (advance the cursor at least one boundary,
    at most to ``horizon``, and push the follow-up entry).

    Hop entries are scheduling metadata, not simulation events: they are
    pushed onto the environment's separate marker heap (``env._hops``) so
    that they never appear in another batch's horizon, while the run loop
    still pops them in exact ``(time, eid)`` order relative to real events.
    They *do* consume event ids -- each marker is pushed at the simulated
    instant the unbatched loop would push the corresponding per-step
    timeout, preserving same-instant tie-break positions.
    """

    __slots__ = ("batch",)

    def __init__(self, env: "Environment", batch: Any, at: float):
        self.env = env
        self.callbacks = [_hop_dispatch]
        self._value = None
        self._ok = True
        self.batch = batch
        eid = env._eid = env._eid + 1
        heappush(env._hops, (at, eid, self))


class BatchWalk:
    """Accounting-free batch over a precomputed ascending boundary fold.

    For chains whose interior boundaries have *no observable side effects*
    (e.g. back-to-back network transfers on an uncontended fabric): the
    walker only preserves the heap-entry cadence of the unbatched loop --
    each :class:`BatchHop` lands on a boundary, quiet stretches are crossed
    in one jump, and the deferred :class:`BatchTimeout` fires at ``end``.

    ``boundaries`` are the interior step ends (chain end excluded), computed
    by the caller with the same float fold as the unbatched loop.
    """

    __slots__ = ("event", "boundaries", "hop_index", "hops", "_alive")

    def __init__(self, env: "Environment", boundaries: List[float], end: float):
        self.event = BatchTimeout(env, end, defer=True)
        self.boundaries = boundaries
        self.hop_index = 0
        self.hops = 0
        self._alive = True
        if boundaries:
            self.hops = 1
            BatchHop(env, self, boundaries[0])
        else:
            eid = env._eid = env._eid + 1
            heappush(env._queue, (end, eid, self.event))

    def hop(self, horizon: float) -> None:
        """Advance at least one boundary, at most to ``horizon``."""
        boundaries = self.boundaries
        i = self.hop_index + 1
        n = len(boundaries)
        while i < n and boundaries[i] <= horizon:
            i += 1
        event = self.event
        env = event.env
        if i >= n:
            eid = env._eid = env._eid + 1
            heappush(env._queue, (event._when, eid, event))
        else:
            self.hop_index = i
            self.hops += 1
            BatchHop(env, self, boundaries[i])


class Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, eid, self))


class Process(Event):
    """A running simulation process wrapping a generator.

    The process itself is an event that triggers when the generator
    terminates; its value is the generator's return value.
    """

    __slots__ = ("_generator", "_target", "_group")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self.env = env
        self.callbacks = None
        self._value = PENDING
        self._ok = True
        self._generator = generator
        # Inherit the spawning process's kill-group (if any) so that child
        # processes spawned mid-task can be torn down with their parent.
        parent = env._active_process
        group = getattr(parent, "_group", None) if parent is not None else None
        self._group = group
        if group is not None:
            group[self] = None
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:  # already terminated
            return
        target = self._target
        if target is None:
            raise SimulationError("cannot interrupt a process before it starts")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks = [self._resume]
        # Bypass the regular waiting: stop listening to the old target (which
        # may already be triggered -- scheduled but not yet processed).
        callbacks = target.callbacks
        if callbacks is not None and callbacks is not PROCESSED:
            try:
                callbacks.remove(self._resume)
            except ValueError:
                pass
        self.env._schedule(interrupt_event)

    def _leave_group(self) -> None:
        group = self._group
        if group is not None:
            self._group = None
            group.pop(self, None)

    def kill(self) -> None:
        """Terminate the process immediately, without scheduling anything.

        Unlike :meth:`interrupt`, the generator is closed synchronously
        (``GeneratorExit`` runs its ``finally`` blocks, releasing resource
        requests, finalizing batches and freeing memory) and the process
        event never fires -- waiters, if any, are simply never resumed.
        This is the primitive used by fault injection to abort in-flight
        work on a crashed PE.
        """
        if self._value is not PENDING:  # already terminated
            return
        target = self._target
        if target is not None:
            callbacks = target.callbacks
            if callbacks is not None and callbacks is not PROCESSED:
                try:
                    callbacks.remove(self._resume)
                except ValueError:
                    pass
                # A failed event (e.g. a deadlock abort racing the kill at
                # the same instant) with no remaining listeners would raise
                # at environment level when popped; defuse it.
                if not callbacks and not target._ok:
                    target._ok = True
                    target._value = None
        self._target = None
        self._leave_group()
        self._ok = True
        self._value = None
        self._generator.close()

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        while True:
            env._active_process = self
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # Propagate failures (or interrupts) into the generator.
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                self._target = None
                env._active_process = None
                self._leave_group()
                if self._value is PENDING:
                    self._ok = True
                    self._value = stop.value
                    env._schedule(self)
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self._leave_group()
                if self._value is PENDING:
                    self._ok = False
                    self._value = exc
                    env._schedule(self)
                    return
                raise  # pragma: no cover - defensive
            env._active_process = None

            if not isinstance(next_event, Event):
                raise SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
            callbacks = next_event.callbacks
            self._target = next_event
            if callbacks is None:
                next_event.callbacks = [self._resume]
                return
            if callbacks is not PROCESSED:
                callbacks.append(self._resume)
                return
            # Fast path: the yielded event was already processed -- resume
            # synchronously at the current time instead of round-tripping an
            # intermediate event through the heap.
            event = next_event


class _Condition(Event):
    """Base class for AllOf / AnyOf condition events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        self.env = env
        self.callbacks = None
        self._value = PENDING
        self._ok = True
        self.events = list(events)
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        check = self._check
        for event in self.events:
            callbacks = event.callbacks
            if callbacks is PROCESSED:
                check(event)
            elif callbacks is None:
                event.callbacks = [check]
            else:
                callbacks.append(check)

    def _collect(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event._value is not PENDING and event._ok
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when all component events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers when any component event has triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """Simulation environment: clock, event queue and scheduler."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        #: Marker heap for :class:`BatchHop` entries -- popped in merged
        #: ``(time, eid)`` order with ``_queue`` but kept apart so batch
        #: cursors see only *real* events in their horizon.
        self._hops: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Heap pushes *avoided* by macro-event coalescing (maintained by the
        #: hardware batching layers; purely observational).
        self.events_coalesced = 0

    @property
    def events_dispatched(self) -> int:
        """Number of events actually pushed onto the heap so far.

        Together with :attr:`events_coalesced` this yields the coalescing
        ratio ``(dispatched + coalesced) / dispatched`` -- how many events the
        equivalent unbatched run would have scheduled per event actually
        dispatched.
        """
        return self._eid

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside callbacks)."""
        return self._active_process

    # -- event creation --------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers once any event in ``events`` has."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        eid = self._eid = self._eid + 1
        heappush(self._queue, (self._now + delay, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event (``inf`` if none)."""
        queue = self._queue
        hops = self._hops
        if queue:
            return min(queue[0][0], hops[0][0]) if hops else queue[0][0]
        return hops[0][0] if hops else float("inf")

    def step(self) -> None:
        """Process the next scheduled event (markers merged by ``(time, eid)``)."""
        queue = self._queue
        hops = self._hops
        if hops and (not queue or hops[0] < queue[0]):
            when, _, event = heappop(hops)
        elif queue:
            when, _, event = heappop(queue)
        else:
            raise SimulationError("no more events")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = PROCESSED
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok:
            # A failed event (or crashed process) nobody waits for is a
            # programming error: surface it instead of silently dropping it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue is exhausted or ``until`` is reached."""
        # The per-event work of step() is inlined here: this loop is the
        # single hottest piece of code in the whole simulator.  Batch-hop
        # markers live in their own heap and are merged by (time, eid);
        # the empty-`hops` check is one truthiness test in the common case.
        queue = self._queue
        hops = self._hops
        if until is None:
            while queue or hops:
                if hops and (not queue or hops[0] < queue[0]):
                    when, _, event = heappop(hops)
                else:
                    when, _, event = heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = PROCESSED
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                elif not event._ok:
                    raise event._value
            return
        if until < self._now:
            raise SimulationError(f"until ({until}) lies in the past")
        while queue or hops:
            if hops and (not queue or hops[0] < queue[0]):
                source = hops
            else:
                source = queue
            when = source[0][0]
            if when > until:
                self._now = until
                return
            _, _, event = heappop(source)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = PROCESSED
            if callbacks:
                for callback in callbacks:
                    callback(event)
            elif not event._ok:
                raise event._value
        self._now = until
