"""The ``repro-lb serve`` coordinator: an HTTP face on the in-memory queue.

A single long-lived process (stdlib ``http.server``, threaded) holds a
:class:`~repro.runner.backends.memory.MemoryBackend` -- task records,
leases, retry ledgers and the result store all in process memory -- and
exposes the full :class:`~repro.runner.backends.base.QueueBackend` surface
over JSON endpoints, so workers on any machine drain sweeps through
:class:`~repro.runner.backends.http.HttpBackend` without a shared mount.

Beyond the queue protocol the coordinator adds the service features:

* **Sweep submission** -- ``POST /sweeps`` accepts either expanded point
  payloads (``{"points": [...]}``, rebuilt via
  :func:`~repro.runner.spec.point_from_payload`) or a registered scenario
  by name (``{"scenario": "figure5", "kwargs": {...}}``), expanded
  server-side through the scenario registry.
* **Timeline sharding** -- long ``timeline`` points are split into
  prefix-run window-range subtasks
  (:func:`~repro.runner.spec.shard_timeline_point`); the per-sweep shard
  map lets the coordinator stitch finished prefixes back in expansion
  order, streaming a long point's windows while it is still running.  The
  final shard *is* the original point, so the stitched result is
  byte-identical to an unsharded run by construction.
* **Prometheus metrics** -- ``GET /metrics`` renders task states, worker
  liveness (from claim/heartbeat traffic) and per-window
  throughput/response-time/availability gauges in text exposition format,
  updated the moment each result (or shard prefix) lands.

Endpoints (JSON unless noted)::

    GET  /health               liveness probe
    GET  /config               lease/retry/shard settings of this queue
    GET  /tasks                every task id
    GET  /tasks/<id>           durable task record
    GET  /tasks/<id>/state     done/attempts/last_error/lease of one task
    GET  /results/<id>         stored result payload
    GET  /timelines            stitched window prefixes per sharded point
    GET  /metrics              Prometheus text format (0.0.4)
    POST /sweeps               submit points or a registered scenario
    POST /claim                claim-next on behalf of a worker
    POST /try_claim            targeted claim (conformance/diagnostics)
    POST /heartbeat            refresh a held lease
    POST /release              drop a lease
    POST /complete             store a result + completion marker
    POST /fail                 charge a failed attempt
    POST /status               queue status (optionally for a task subset)
    POST /poll                 terminal subset of the given task ids
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.metrics.prometheus import MetricFamily, render_families
from repro.runner.backends.base import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    TaskRecord,
)
from repro.runner.backends.memory import MemoryBackend
from repro.runner.spec import PointSpec, point_from_payload, shard_timeline_point

__all__ = ["Coordinator", "DEFAULT_PORT"]

#: Default port of ``repro-lb serve``.
DEFAULT_PORT = 8723

#: A worker is considered up while its last claim/heartbeat/completion is
#: younger than this many lease periods.
_LIVENESS_LEASES = 2.0


def _record_payload(record: TaskRecord) -> Dict[str, object]:
    return {
        "task_id": record.task_id,
        "point": asdict(record.point),
        "max_attempts": record.max_attempts,
        "enqueued_at": record.enqueued_at,
    }


class Coordinator:
    """In-memory queue + sweep registry + metrics, served over HTTP."""

    def __init__(
        self,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        shard_windows: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if shard_windows < 0:
            raise ValueError(f"shard_windows must be >= 0, got {shard_windows}")
        self.backend = MemoryBackend(lease_seconds=lease_seconds)
        self.max_attempts = int(max_attempts)
        self.shard_windows = int(shard_windows)
        self._lock = self.backend.lock
        self._workers: Dict[str, Dict[str, object]] = {}
        self._sweeps: List[Dict[str, object]] = []
        #: (figure, series, x) -> window index -> gauge values.
        self._window_gauges: Dict[Tuple[str, str, float], Dict[int, Dict[str, float]]] = {}
        self._counters = {
            "sweeps_submitted": 0,
            "results_received": 0,
            "windows_streamed": 0,
        }
        self._started_at = time.time()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- worker liveness -----------------------------------------------------------
    def touch_worker(
        self, worker: object, host: object = None, pid: object = None
    ) -> None:
        if not worker:
            return
        with self._lock:
            entry = self._workers.setdefault(str(worker), {})
            entry["last_seen"] = time.time()
            if host is not None:
                entry["host"] = str(host)
            if pid is not None:
                entry["pid"] = pid

    # -- sweep submission ----------------------------------------------------------
    def submit_sweep(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Enqueue a sweep: expanded points, or a registered scenario by name.

        Timeline points longer than ``shard_windows`` windows additionally
        enqueue their prefix-run shards; the summary and the returned
        ``task_ids`` describe the *original* points (what a dispatching
        client waits on), ``shards`` maps each sharded point to its subtask
        ids in expansion order.
        """
        points = self._points_from_submission(payload)
        if not points:
            raise ValueError("sweep submission contains no points")
        max_attempts = int(payload.get("max_attempts") or self.max_attempts)
        shard_windows = payload.get("shard_windows")
        shard_windows = self.shard_windows if shard_windows is None else int(shard_windows)
        prefixes: List[PointSpec] = []
        shards: Dict[str, List[str]] = {}
        original_ids: List[str] = []
        for point in points:
            task_id = self.backend.task_id(point)
            original_ids.append(task_id)
            parts = shard_timeline_point(point, shard_windows)
            if len(parts) > 1:
                shards[task_id] = [self.backend.task_id(part) for part in parts]
                prefixes.extend(parts[:-1])
        with self._lock:
            summary = self.backend.enqueue(points, max_attempts=max_attempts)
            if prefixes:
                self.backend.enqueue(prefixes, max_attempts=max_attempts)
            self._sweeps.append(
                {
                    "id": len(self._sweeps) + 1,
                    "task_ids": original_ids,
                    "shards": shards,
                    "submitted_at": time.time(),
                }
            )
            self._counters["sweeps_submitted"] += 1
        return {
            "summary": {
                "enqueued": summary.enqueued,
                "already_queued": summary.already_queued,
                "already_done": summary.already_done,
                "total": summary.total,
            },
            "task_ids": original_ids,
            "shards": shards,
        }

    @staticmethod
    def _points_from_submission(payload: Dict[str, object]) -> List[PointSpec]:
        if "points" in payload:
            raw = payload["points"]
            if not isinstance(raw, list):
                raise ValueError("'points' must be a list of point payloads")
            return [point_from_payload(entry) for entry in raw]
        if "scenario" in payload:
            from repro.runner.registry import build_scenario
            from repro.runner.spec import expand

            kwargs = payload.get("kwargs") or {}
            if not isinstance(kwargs, dict):
                raise ValueError("'kwargs' must be an object")
            spec = build_scenario(str(payload["scenario"]), **kwargs)
            replicates = int(payload.get("replicates") or 1)
            if replicates > 1:
                spec = spec.with_replicates(replicates)
            return list(expand(spec))
        raise ValueError("sweep submission needs 'points' or 'scenario'")

    # -- results + streaming metrics -----------------------------------------------
    def record_completion(
        self,
        task_id: str,
        point_payload: Optional[Dict[str, object]],
        result_payload: Optional[Dict[str, object]],
        worker: str,
    ) -> None:
        """Store a finished task's result and fold it into the gauges."""
        with self._lock:
            if result_payload is not None:
                self.backend.complete_payload(task_id, result_payload, worker)
            else:
                self.backend.mark_done(
                    task_id, worker, attempts=self.backend.attempts(task_id)
                )
                self.backend.release(task_id, worker)
            self._counters["results_received"] += 1
            self._observe_timeline(point_payload, result_payload)

    def _observe_timeline(
        self,
        point_payload: Optional[Dict[str, object]],
        result_payload: Optional[Dict[str, object]],
    ) -> None:
        timeline = (result_payload or {}).get("timeline")
        if not timeline or not point_payload:
            return
        key = (
            str(point_payload.get("figure", "")),
            str(point_payload.get("series", "")),
            float(point_payload.get("x", 0.0) or 0.0),
        )
        gauges = self._window_gauges.setdefault(key, {})
        for index, window in enumerate(timeline.get("windows") or []):
            if index not in gauges:
                self._counters["windows_streamed"] += 1
            joins = float(window.get("joins_completed", 0) or 0)
            gauges[index] = {
                "start": float(window.get("start", 0.0)),
                "end": float(window.get("end", 0.0)),
                "throughput": float(window.get("join_throughput", 0.0)),
                # A window in which nothing completed has no mean response
                # time -- expose NaN, not a filler zero.
                "rt_mean_ms": (
                    float(window.get("join_rt_mean", 0.0)) * 1e3 if joins else float("nan")
                ),
                "rt_p95_ms": (
                    float(window.get("join_rt_p95", 0.0)) * 1e3 if joins else float("nan")
                ),
                "availability": float(window.get("availability", 1.0)),
            }

    def stitched_windows(self, task_id: str) -> Optional[List[Dict[str, object]]]:
        """The longest finished window prefix of a sharded timeline point.

        Walks the point's shards in expansion order (increasing horizon)
        and extends the stitched list with each finished shard's windows
        beyond what earlier shards already covered -- the prefix property
        guarantees the overlap is identical, so this is a pure
        concatenation in expansion order.
        """
        with self._lock:
            for sweep in self._sweeps:
                shard_ids = sweep["shards"].get(task_id)  # type: ignore[union-attr]
                if not shard_ids:
                    continue
                stitched: List[Dict[str, object]] = []
                for shard_id in shard_ids:
                    payload = self.backend.result_payload(shard_id)
                    timeline = (payload or {}).get("timeline")
                    if not timeline:
                        continue
                    windows = timeline.get("windows") or []
                    if len(windows) > len(stitched):
                        stitched.extend(windows[len(stitched):])
                return stitched
        return None

    def timelines_view(self) -> List[Dict[str, object]]:
        with self._lock:
            view = []
            for sweep in self._sweeps:
                for task_id in sweep["shards"]:  # type: ignore[union-attr]
                    record = self.backend.load_task(task_id)
                    windows = self.stitched_windows(task_id) or []
                    view.append(
                        {
                            "task_id": task_id,
                            "figure": record.point.figure if record else None,
                            "series": record.point.series if record else None,
                            "x": record.point.x if record else None,
                            "done": self.backend.is_done(task_id),
                            "shards": sweep["shards"][task_id],  # type: ignore[index]
                            "windows": windows,
                        }
                    )
            return view

    # -- metrics -------------------------------------------------------------------
    def render_metrics(self) -> str:
        with self._lock:
            now = time.time()
            status = self.backend.status()
            families = []
            uptime = MetricFamily(
                "repro_coordinator_uptime_seconds",
                "gauge",
                "Seconds since the coordinator started.",
            )
            uptime.add({}, now - self._started_at)
            families.append(uptime)

            tasks = MetricFamily(
                "repro_queue_tasks",
                "gauge",
                "Tasks currently in each queue state.",
            )
            for state in ("pending", "running", "stale", "done", "failed"):
                tasks.add({"state": state}, getattr(status, state))
            families.append(tasks)

            total = MetricFamily(
                "repro_queue_tasks_total", "gauge", "Tasks known to the queue."
            )
            total.add({}, status.total)
            families.append(total)

            for name, help_text in (
                ("sweeps_submitted", "Sweep submissions accepted."),
                ("results_received", "Task completions received."),
                ("windows_streamed", "Distinct timeline windows first observed."),
            ):
                counter = MetricFamily(f"repro_{name}_total", "counter", help_text)
                counter.add({}, self._counters[name])
                families.append(counter)

            up = MetricFamily(
                "repro_worker_up",
                "gauge",
                "1 while the worker claimed/heartbeat within two lease periods.",
            )
            age = MetricFamily(
                "repro_worker_last_seen_seconds",
                "gauge",
                "Seconds since the worker was last heard from.",
            )
            horizon = _LIVENESS_LEASES * self.backend.lease_seconds
            for worker in sorted(self._workers):
                seen = float(self._workers[worker].get("last_seen", 0.0))
                up.add({"worker": worker}, 1.0 if now - seen <= horizon else 0.0)
                age.add({"worker": worker}, now - seen)
            families.extend([up, age])

            window_families = {
                "throughput": MetricFamily(
                    "repro_window_join_throughput",
                    "gauge",
                    "Join throughput (joins/s) of one finished timeline window.",
                ),
                "rt_mean_ms": MetricFamily(
                    "repro_window_join_rt_ms",
                    "gauge",
                    "Mean join response time (ms) of one finished timeline window.",
                ),
                "rt_p95_ms": MetricFamily(
                    "repro_window_join_rt_p95_ms",
                    "gauge",
                    "95th percentile join response time (ms) of one window.",
                ),
                "availability": MetricFamily(
                    "repro_window_availability",
                    "gauge",
                    "Fraction of the expected processor pool alive in the window.",
                ),
            }
            for (figure, series, x), gauges in sorted(self._window_gauges.items()):
                for index in sorted(gauges):
                    labels = {
                        "figure": figure,
                        "series": series,
                        "x": f"{x:g}",
                        "window": index,
                    }
                    values = gauges[index]
                    for field_name, family in window_families.items():
                        family.add(labels, values[field_name])
            families.extend(window_families.values())
            return render_families(families)

    # -- HTTP plumbing -------------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0) -> str:
        """Serve in a daemon thread; returns the bound base URL."""
        self._server = _make_server(self, host, port)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-lb-serve", daemon=True
        )
        self._thread.start()
        return self.url

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("coordinator is not serving")
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def serve_forever(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
        """Blocking serve loop for the CLI (Ctrl-C / SIGTERM to stop)."""
        server = _make_server(self, host, port)
        self._server = server
        bound_host, bound_port = server.server_address[:2]
        print(f"repro-lb coordinator serving on http://{bound_host}:{bound_port}", flush=True)
        print(
            f"  lease={self.backend.lease_seconds:g}s retries={self.max_attempts} "
            f"shard_windows={self.shard_windows or 'off'}",
            flush=True,
        )
        try:
            server.serve_forever()
        finally:
            server.server_close()
            self._server = None


def _make_server(coordinator: Coordinator, host: str, port: int) -> ThreadingHTTPServer:
    handler = type("CoordinatorHandler", (_Handler,), {"coordinator": coordinator})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to coordinator/backend operations."""

    coordinator: Coordinator  # bound via subclassing in _make_server
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        pass  # per-request logging would swamp worker polling

    # -- plumbing ------------------------------------------------------------------
    def _send(self, code: int, body: bytes, content_type: str = "application/json") -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: object, code: int = 200) -> None:
        self._send(code, json.dumps(payload).encode("utf-8"))

    def _error(self, code: int, message: str) -> None:
        self._json({"error": message}, code=code)

    def _body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        data = json.loads(raw.decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- GET -----------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        backend = self.coordinator.backend
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/health":
                self._json({"ok": True})
            elif path == "/config":
                self._json(
                    {
                        "lease_seconds": backend.lease_seconds,
                        "max_attempts": self.coordinator.max_attempts,
                        "shard_windows": self.coordinator.shard_windows,
                        "started_at": self.coordinator._started_at,
                    }
                )
            elif path == "/tasks":
                self._json({"task_ids": backend.task_ids()})
            elif path == "/metrics":
                body = self.coordinator.render_metrics().encode("utf-8")
                self._send(200, body, content_type="text/plain; version=0.0.4; charset=utf-8")
            elif path == "/timelines":
                self._json({"timelines": self.coordinator.timelines_view()})
            elif path.startswith("/tasks/") and path.endswith("/state"):
                task_id = path[len("/tasks/"):-len("/state")]
                self._json(
                    {
                        "task_id": task_id,
                        "done": backend.is_done(task_id),
                        "attempts": backend.attempts(task_id),
                        "last_error": backend.last_error(task_id),
                        "lease": backend.lease_state(task_id),
                    }
                )
            elif path.startswith("/tasks/"):
                record = backend.load_task(path[len("/tasks/"):])
                if record is None:
                    self._error(404, "no such task")
                else:
                    self._json(_record_payload(record))
            elif path.startswith("/results/"):
                payload = backend.result_payload(path[len("/results/"):])
                if payload is None:
                    self._error(404, "no result stored")
                else:
                    self._json({"task_id": path[len("/results/"):], "result": payload})
            else:
                self._error(404, f"unknown endpoint {path}")
        except Exception as exc:  # pragma: no cover - defensive 500
            self._error(500, f"{type(exc).__name__}: {exc}")

    # -- POST ----------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        coordinator = self.coordinator
        backend = coordinator.backend
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            body = self._body()
            if path == "/sweeps":
                self._json(coordinator.submit_sweep(body))
            elif path == "/claim":
                worker = str(body["worker"])
                coordinator.touch_worker(worker, body.get("host"), body.get("pid"))
                claimed = backend.claim_next(
                    worker,
                    host=body.get("host"),
                    pid=body.get("pid"),
                )
                self._json(
                    {"task": _record_payload(claimed.record) if claimed else None}
                )
            elif path == "/try_claim":
                worker = str(body["worker"])
                coordinator.touch_worker(worker, body.get("host"), body.get("pid"))
                claimed = backend.try_claim(
                    str(body["task_id"]),
                    worker,
                    host=body.get("host"),
                    pid=body.get("pid"),
                )
                self._json({"claimed": bool(claimed)})
            elif path == "/heartbeat":
                worker = str(body["worker"])
                coordinator.touch_worker(worker)
                ok = backend.heartbeat(str(body["task_id"]), worker)
                self._json({"ok": bool(ok)})
            elif path == "/release":
                worker = body.get("worker")
                backend.release(
                    str(body["task_id"]), None if worker is None else str(worker)
                )
                self._json({"ok": True})
            elif path == "/complete":
                worker = str(body["worker"])
                coordinator.touch_worker(worker)
                coordinator.record_completion(
                    str(body["task_id"]),
                    body.get("point"),
                    body.get("result"),
                    worker,
                )
                self._json({"ok": True})
            elif path == "/fail":
                worker = str(body["worker"])
                coordinator.touch_worker(worker)
                attempts = backend.record_failure(
                    str(body["task_id"]), worker, str(body.get("error", ""))
                )
                self._json({"attempts": attempts})
            elif path == "/status":
                task_ids = body.get("task_ids")
                status = backend.status(None if task_ids is None else list(task_ids))
                self._json(status.to_dict())
            elif path == "/poll":
                task_ids = [str(task_id) for task_id in body.get("task_ids") or []]
                self._json({"finished": sorted(backend.poll_finished(task_ids))})
            else:
                self._error(404, f"unknown endpoint {path}")
        except (KeyError, TypeError, ValueError) as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # pragma: no cover - defensive 500
            self._error(500, f"{type(exc).__name__}: {exc}")
