"""Long-lived service mode: the HTTP sweep coordinator and its metrics."""

from repro.service.coordinator import Coordinator

__all__ = ["Coordinator"]
