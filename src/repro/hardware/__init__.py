"""Hardware models: CPU servers, disk arrays with caching, interconnect."""

from repro.hardware.cpu import (
    PRIORITY_BACKGROUND,
    PRIORITY_OLTP,
    PRIORITY_QUERY,
    CpuServer,
)
from repro.hardware.disk import DiskArray, LruCache
from repro.hardware.network import Network

__all__ = [
    "CpuServer",
    "PRIORITY_OLTP",
    "PRIORITY_QUERY",
    "PRIORITY_BACKGROUND",
    "DiskArray",
    "LruCache",
    "Network",
]
