"""Interconnection network between processing elements.

The network transmits fixed-size packets (paper §4); messages larger than a
packet are disassembled into the required number of packets.  Most of the
communication cost is CPU time at the sender (send + copy per packet) and the
receiver (receive + copy per packet); the wire itself is a scalable
high-speed interconnect and is modelled with a small per-packet latency plus
bandwidth-limited transfer time.

The network object is purely computational (no queueing): the caller charges
the CPU costs on the appropriate :class:`~repro.hardware.cpu.CpuServer` and
waits for :meth:`transfer_time`.  An optional global bandwidth resource can be
enabled to study interconnect saturation, but is off by default because the
paper treats the network as non-bottleneck.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.config.parameters import InstructionCosts, NetworkConfig, TopologyConfig
from repro.sim import BatchWalk, Environment, Resource, Timeout, coalescing_enabled

__all__ = ["Network"]

#: A transfer destination: one PE, or several for multi-destination sends
#: (redistribution bursts), where the slowest tier bounds the wire time.
Endpoint = Union[int, Iterable[int]]


class Network:
    """Packet-based interconnect with CPU-cost accounting helpers.

    With a non-flat :class:`TopologyConfig` the wire time of each message
    depends on the (src, dst) tier: crossing racks or regions multiplies the
    per-packet latency and divides the bandwidth by the tier's factors.
    Callers that do not know their endpoints (or a flat topology) fall back
    to the uniform Fig. 4 wire, which keeps the historical float expressions
    bit-identical.
    """

    def __init__(
        self,
        env: Environment,
        config: NetworkConfig,
        costs: InstructionCosts,
        model_contention: bool = False,
        link_capacity: int = 64,
        topology: Optional[TopologyConfig] = None,
        num_pe: int = 0,
    ):
        self.env = env
        self.config = config
        self.costs = costs
        self.messages_sent = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self._fabric: Optional[Resource] = (
            Resource(env, capacity=link_capacity, name="network") if model_contention else None
        )
        self._coalesce = coalescing_enabled()
        self._topology: Optional[TopologyConfig] = (
            topology if topology is not None and not topology.is_flat else None
        )
        self._num_pe = num_pe

    # -- size helpers -------------------------------------------------------
    def packets_for(self, nbytes: int) -> int:
        """Number of packets for a message of ``nbytes``."""
        return self.config.packets_for(nbytes)

    def packets_for_tuples(self, tuples: int, tuple_size_bytes: int) -> int:
        """Packets needed to ship ``tuples`` tuples of the given size."""
        if tuples <= 0:
            return 0
        return self.packets_for(tuples * tuple_size_bytes)

    # -- CPU cost helpers -----------------------------------------------------
    def send_instructions(self, nbytes: int) -> float:
        """CPU instructions charged at the sender for one message."""
        packets = self.packets_for(nbytes)
        return packets * (self.costs.send_message + self.costs.copy_message_packet)

    def receive_instructions(self, nbytes: int) -> float:
        """CPU instructions charged at the receiver for one message."""
        packets = self.packets_for(nbytes)
        return packets * (self.costs.receive_message + self.costs.copy_message_packet)

    def control_message_instructions(self) -> tuple[float, float]:
        """(sender, receiver) CPU instructions for a small control message."""
        return (
            float(self.costs.send_message),
            float(self.costs.receive_message),
        )

    # -- wire time ------------------------------------------------------------
    def _tier(self, src: int, dst: Endpoint) -> int:
        """Communication tier for src -> dst (max tier over multi-dst sends)."""
        topology = self._topology
        if isinstance(dst, int):
            return topology.tier_between(src, dst, self._num_pe)
        return max(
            (topology.tier_between(src, d, self._num_pe) for d in dst),
            default=0,
        )

    def transfer_time(
        self, nbytes: int, src: Optional[int] = None, dst: Optional[Endpoint] = None
    ) -> float:
        """Wire latency + transfer time for one message.

        Unknown endpoints (``None``) or a flat topology charge the uniform
        wire; otherwise the (src, dst) tier scales latency and bandwidth.
        """
        topology = self._topology
        if topology is None or src is None or dst is None:
            return self.config.transfer_time(nbytes)
        tier = self._tier(src, dst)
        if tier == 0:
            return self.config.transfer_time(nbytes)
        packets = self.config.packets_for(nbytes)
        latency = self.config.wire_latency * topology.latency_factor(tier)
        bandwidth = self.config.bandwidth_bytes_per_s / topology.bandwidth_factor(tier)
        return packets * latency + nbytes / bandwidth

    def transfer(self, nbytes: int, src: Optional[int] = None, dst: Optional[Endpoint] = None):
        """Simulation step: occupy the fabric (if modelled) for the transfer."""
        self.messages_sent += 1
        self.packets_sent += self.packets_for(nbytes)
        self.bytes_sent += max(0, nbytes)
        delay = self.transfer_time(nbytes, src, dst)
        fabric = self._fabric
        if fabric is None:
            yield Timeout(self.env, delay)
            return
        req = fabric.request()
        try:
            yield req
            yield Timeout(self.env, delay)
        finally:
            fabric.release(req)

    def transfer_chain(
        self, sizes: Iterable[int], src: Optional[int] = None, dst: Optional[Endpoint] = None
    ):
        """Simulation step: a burst of back-to-back transfers by one sender.

        Without fabric contention modelling the burst collapses into a single
        macro-event whose end time folds the per-message delays exactly as
        sequential :meth:`transfer` calls would advance the clock, so the
        completion time is bit-identical; stats are still counted
        per-message.  With a fabric resource enabled, messages fall back to
        per-message requests (the shared link is a contended multi-server
        resource and must observe every arrival).

        Callers that pre-aggregate a burst into one message (the common idiom
        in the execution layer) need no chain at all; this is for flows that
        must keep per-message accounting.
        """
        sizes = list(sizes)
        if not sizes:
            return
        env = self.env
        if self._fabric is None and self._coalesce and len(sizes) > 1:
            # Interior boundaries and the end repeat the unbatched loop's
            # float fold; the walker's hop markers keep heap pushes at the
            # same simulated instants as the per-message timeouts would be.
            end = env._now
            boundaries = []
            for nbytes in sizes:
                self.messages_sent += 1
                self.packets_sent += self.packets_for(nbytes)
                self.bytes_sent += max(0, nbytes)
                end += self.transfer_time(nbytes, src, dst)
                boundaries.append(end)
            boundaries.pop()  # the chain end is the macro-event itself
            walk = BatchWalk(env, boundaries, end)
            try:
                yield walk.event
            finally:
                walk._alive = False
            env.events_coalesced += max(0, len(sizes) - 1 - walk.hops)
            return
        for nbytes in sizes:
            yield from self.transfer(nbytes, src, dst)
