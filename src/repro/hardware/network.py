"""Interconnection network between processing elements.

The network transmits fixed-size packets (paper §4); messages larger than a
packet are disassembled into the required number of packets.  Most of the
communication cost is CPU time at the sender (send + copy per packet) and the
receiver (receive + copy per packet); the wire itself is a scalable
high-speed interconnect and is modelled with a small per-packet latency plus
bandwidth-limited transfer time.

The network object is purely computational (no queueing): the caller charges
the CPU costs on the appropriate :class:`~repro.hardware.cpu.CpuServer` and
waits for :meth:`transfer_time`.  An optional global bandwidth resource can be
enabled to study interconnect saturation, but is off by default because the
paper treats the network as non-bottleneck.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config.parameters import InstructionCosts, NetworkConfig
from repro.sim import BatchWalk, Environment, Resource, Timeout, coalescing_enabled

__all__ = ["Network"]


class Network:
    """Packet-based interconnect with CPU-cost accounting helpers."""

    def __init__(
        self,
        env: Environment,
        config: NetworkConfig,
        costs: InstructionCosts,
        model_contention: bool = False,
        link_capacity: int = 64,
    ):
        self.env = env
        self.config = config
        self.costs = costs
        self.messages_sent = 0
        self.packets_sent = 0
        self.bytes_sent = 0
        self._fabric: Optional[Resource] = (
            Resource(env, capacity=link_capacity, name="network") if model_contention else None
        )
        self._coalesce = coalescing_enabled()

    # -- size helpers -------------------------------------------------------
    def packets_for(self, nbytes: int) -> int:
        """Number of packets for a message of ``nbytes``."""
        return self.config.packets_for(nbytes)

    def packets_for_tuples(self, tuples: int, tuple_size_bytes: int) -> int:
        """Packets needed to ship ``tuples`` tuples of the given size."""
        if tuples <= 0:
            return 0
        return self.packets_for(tuples * tuple_size_bytes)

    # -- CPU cost helpers -----------------------------------------------------
    def send_instructions(self, nbytes: int) -> float:
        """CPU instructions charged at the sender for one message."""
        packets = self.packets_for(nbytes)
        return packets * (self.costs.send_message + self.costs.copy_message_packet)

    def receive_instructions(self, nbytes: int) -> float:
        """CPU instructions charged at the receiver for one message."""
        packets = self.packets_for(nbytes)
        return packets * (self.costs.receive_message + self.costs.copy_message_packet)

    def control_message_instructions(self) -> tuple[float, float]:
        """(sender, receiver) CPU instructions for a small control message."""
        return (
            float(self.costs.send_message),
            float(self.costs.receive_message),
        )

    # -- wire time ------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Wire latency + transfer time for one message."""
        return self.config.transfer_time(nbytes)

    def transfer(self, nbytes: int):
        """Simulation step: occupy the fabric (if modelled) for the transfer."""
        self.messages_sent += 1
        self.packets_sent += self.packets_for(nbytes)
        self.bytes_sent += max(0, nbytes)
        delay = self.transfer_time(nbytes)
        fabric = self._fabric
        if fabric is None:
            yield Timeout(self.env, delay)
            return
        req = fabric.request()
        try:
            yield req
            yield Timeout(self.env, delay)
        finally:
            fabric.release(req)

    def transfer_chain(self, sizes: Iterable[int]):
        """Simulation step: a burst of back-to-back transfers by one sender.

        Without fabric contention modelling the burst collapses into a single
        macro-event whose end time folds the per-message delays exactly as
        sequential :meth:`transfer` calls would advance the clock, so the
        completion time is bit-identical; stats are still counted
        per-message.  With a fabric resource enabled, messages fall back to
        per-message requests (the shared link is a contended multi-server
        resource and must observe every arrival).

        Callers that pre-aggregate a burst into one message (the common idiom
        in the execution layer) need no chain at all; this is for flows that
        must keep per-message accounting.
        """
        sizes = list(sizes)
        if not sizes:
            return
        env = self.env
        if self._fabric is None and self._coalesce and len(sizes) > 1:
            # Interior boundaries and the end repeat the unbatched loop's
            # float fold; the walker's hop markers keep heap pushes at the
            # same simulated instants as the per-message timeouts would be.
            end = env._now
            boundaries = []
            for nbytes in sizes:
                self.messages_sent += 1
                self.packets_sent += self.packets_for(nbytes)
                self.bytes_sent += max(0, nbytes)
                end += self.transfer_time(nbytes)
                boundaries.append(end)
            boundaries.pop()  # the chain end is the macro-event itself
            walk = BatchWalk(env, boundaries, end)
            try:
                yield walk.event
            finally:
                walk._alive = False
            env.events_coalesced += max(0, len(sizes) - 1 - walk.hops)
            return
        for nbytes in sizes:
            yield from self.transfer(nbytes)
