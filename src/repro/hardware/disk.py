"""Disk subsystem of a processing element.

Disks and disk controllers are explicit servers (paper §4) so that I/O
bottlenecks show up as queueing delays.  The controller owns an LRU disk
cache and a prefetching mechanism: a cache miss during a sequential access
reads ``prefetch_pages`` consecutive pages in one physical I/O, so subsequent
pages hit the cache.

The unit of work is a *page*; callers ask for sequential or random reads and
writes of a number of pages and the subsystem translates that into physical
I/Os, controller service and disk busy time.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, List, Optional, Tuple

from repro.config.parameters import DiskConfig
from repro.sim import Environment, Resource, Timeout

__all__ = ["LruCache", "DiskArray"]


class LruCache:
    """A simple LRU page cache keyed by arbitrary hashable page identifiers."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._pages: "OrderedDict[object, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: object) -> bool:
        return key in self._pages

    def access(self, key: object) -> bool:
        """Record an access; returns True on hit, False on miss (and inserts)."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key)
        return False

    def insert(self, key: object) -> None:
        """Insert a page, evicting the least recently used one if needed."""
        if self.capacity == 0:
            return
        if key in self._pages:
            self._pages.move_to_end(key)
            return
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
        self._pages[key] = None

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DiskArray:
    """All disks of one PE plus their controller and cache.

    Physical I/Os are dispatched to the least-loaded disk (shortest queue,
    then fewest users), which approximates the striping of fragments and
    temporary files over the PE's disks.
    """

    def __init__(self, env: Environment, config: DiskConfig, pe_id: int = 0):
        self.env = env
        self.config = config
        self.pe_id = pe_id
        count = max(1, config.disks_per_pe)
        self.disks: List[Resource] = [
            Resource(env, capacity=1, name=f"disk[{pe_id}.{index}]") for index in range(count)
        ]
        self.controller = Resource(env, capacity=1, name=f"diskctl[{pe_id}]")
        #: Pages fetched per physical sequential I/O (>= 1; used by the
        #: execution layer to derive I/O counts without re-clamping).
        self.prefetch = max(1, config.prefetch_pages)
        self.cache = LruCache(config.cache_pages)
        self.pages_read = 0
        self.pages_written = 0
        self.physical_ios = 0

    # -- helpers -----------------------------------------------------------
    def _pick_disk(self, preferred: Optional[int] = None) -> Resource:
        disks = self.disks
        if preferred is not None:
            return disks[preferred % len(disks)]
        if len(disks) == 1:
            return disks[0]
        # First disk with the smallest (queue_length, busy) pair -- the same
        # disk min(key=...) selected, without a lambda per call.
        best = disks[0]
        best_queued = best._queued
        best_busy = best._busy_servers
        for disk in disks:
            queued = disk._queued
            if queued > best_queued:
                continue
            busy = disk._busy_servers
            if queued < best_queued or busy < best_busy:
                best = disk
                best_queued = queued
                best_busy = busy
        return best

    def _physical_io(
        self, disk: Resource, busy_time: float, controller_pages: int
    ) -> Generator:
        """One physical I/O: queue at the disk, then at the controller."""
        self.physical_ios += 1
        req = disk.request()
        try:
            yield req
            yield self.env.timeout(busy_time)
        finally:
            disk.release(req)
        controller_time = self.config.controller_time(controller_pages)
        if controller_time > 0:
            controller = self.controller
            req = controller.request()
            try:
                yield req
                yield self.env.timeout(controller_time)
            finally:
                controller.release(req)

    # -- public operations ---------------------------------------------------
    def read_sequential(
        self, pages: int, preferred_disk: Optional[int] = None
    ) -> Generator:
        """Sequential read of ``pages`` pages with controller prefetching.

        Used for relation scans, clustered index scans and temporary file
        scans.  One physical I/O is issued per ``prefetch_pages`` pages.
        """
        if pages <= 0:
            return
        self.pages_read += pages
        yield from self._sequential_io(pages, preferred_disk)

    def _sequential_io(self, pages: int, preferred_disk: Optional[int]) -> Generator:
        """Chunked physical I/Os for a sequential read or write.

        The per-chunk work of :meth:`_physical_io` is inlined (no sub-generator
        per chunk) -- scans issue tens of thousands of these per point.
        """
        env = self.env
        config = self.config
        controller = self.controller
        prefetch = self.prefetch
        remaining = pages
        while remaining > 0:
            chunk = prefetch if remaining > prefetch else remaining
            busy = config.sequential_io_time(chunk)
            disk = self._pick_disk(preferred_disk)
            self.physical_ios += 1
            req = disk.request()
            try:
                yield req
                yield Timeout(env, busy)
            finally:
                disk.release(req)
            controller_time = config.controller_time(chunk)
            if controller_time > 0:
                req = controller.request()
                try:
                    yield req
                    yield Timeout(env, controller_time)
                finally:
                    controller.release(req)
            remaining -= chunk

    def read_random(self, page_key: object = None, preferred_disk: Optional[int] = None) -> Generator:
        """Random single-page read, going through the controller LRU cache."""
        self.pages_read += 1
        if page_key is not None and self.cache.access(page_key):
            # Cache hit: controller service and transmission only.
            controller = self.controller
            req = controller.request()
            try:
                yield req
                yield self.env.timeout(self.config.controller_time(1))
            finally:
                controller.release(req)
            return
        busy = self.config.random_io_time()
        yield from self._physical_io(self._pick_disk(preferred_disk), busy, 1)

    def write_sequential(
        self, pages: int, preferred_disk: Optional[int] = None
    ) -> Generator:
        """Sequential write of ``pages`` pages (temporary files, checkpoints)."""
        if pages <= 0:
            return
        self.pages_written += pages
        yield from self._sequential_io(pages, preferred_disk)

    def write_random(self, preferred_disk: Optional[int] = None) -> Generator:
        """Random single-page write (log forces, dirty page flushes)."""
        self.pages_written += 1
        busy = self.config.random_io_time()
        yield from self._physical_io(self._pick_disk(preferred_disk), busy, 1)

    # -- statistics ----------------------------------------------------------
    def utilization(self) -> float:
        """Average utilisation across all disks of this PE."""
        if not self.disks:
            return 0.0
        return sum(disk.utilization() for disk in self.disks) / len(self.disks)

    def snapshot(self) -> Tuple[float, float]:
        """(now, aggregate busy time) for differential utilisation."""
        now = self.env.now
        busy = sum(disk.busy_time() for disk in self.disks)
        return now, busy

    def utilization_since(self, snapshot: Tuple[float, float]) -> float:
        """Average utilisation across disks since ``snapshot``."""
        then, busy_then = snapshot
        now, busy_now = self.snapshot()
        elapsed = now - then
        if elapsed <= 0 or not self.disks:
            return 0.0
        return min(1.0, (busy_now - busy_then) / (elapsed * len(self.disks)))

    @property
    def queue_length(self) -> int:
        """Total number of waiting I/O requests across the PE's disks."""
        return sum(disk._queued for disk in self.disks)
