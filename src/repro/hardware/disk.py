"""Disk subsystem of a processing element.

Disks and disk controllers are explicit servers (paper §4) so that I/O
bottlenecks show up as queueing delays.  The controller owns an LRU disk
cache and a prefetching mechanism: a cache miss during a sequential access
reads ``prefetch_pages`` consecutive pages in one physical I/O, so subsequent
pages hit the cache.

The unit of work is a *page*; callers ask for sequential or random reads and
writes of a number of pages and the subsystem translates that into physical
I/Os, controller service and disk busy time.

Event coalescing
----------------
An uncontended I/O chain -- alternating disk-busy and controller-busy phases
-- normally costs two heap round-trips per phase.  When the chosen disk has
no competition and the controller is idle, the whole chain is covered by a
single :class:`~repro.sim.core.BatchTimeout` macro-event instead, with the
chain *virtualised*: a replay cursor applies each phase transition (busy
flags, ``users`` membership, busy-time pieces, ``physical_ios``) lazily
before any observation, using the same float folds as the per-chunk loop, so
utilisation accounting and disk-picking decisions are bit-identical.  Any
external request on the disk or the controller splits the macro-event at the
current phase boundary and the chain falls back to per-chunk mode from
there, exactly where the unbatched loop would have yielded the slot.
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heappush
from typing import Generator, List, Optional, Tuple

from repro.config.parameters import DiskConfig
from repro.sim import BatchHop, BatchTimeout, Environment, Resource, Timeout, coalescing_enabled
from repro.sim.resources import Request

__all__ = ["LruCache", "DiskArray"]

_PHASE_DISK = 0
_PHASE_CTL = 1


class LruCache:
    """A simple LRU page cache keyed by arbitrary hashable page identifiers."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._pages: "OrderedDict[object, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: object) -> bool:
        return key in self._pages

    def access(self, key: object) -> bool:
        """Record an access; returns True on hit, False on miss (and inserts)."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key)
        return False

    def insert(self, key: object) -> None:
        """Insert a page, evicting the least recently used one if needed."""
        if self.capacity == 0:
            return
        if key in self._pages:
            self._pages.move_to_end(key)
            return
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
        self._pages[key] = None

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _ChainBatch:
    """Virtualised uncontended disk/controller chain under one macro-event.

    ``n`` chunks alternate a disk phase (``busy_full``/``busy_last`` seconds)
    and -- when the controller time is non-zero -- a controller phase
    (``ctl_full``/``ctl_last`` seconds).  The batch is created *after* the
    real grant of the first chunk's disk request; every later transition is
    replayed by :meth:`sync` strictly before the observation time, mutating
    the two resources exactly as the per-chunk release/request pairs would
    (the transition *at* the wake time is performed for real by the owning
    generator).
    """

    __slots__ = (
        "array", "disk", "controller", "disk_req", "ctl_req", "n",
        "busy_full", "busy_last", "ctl_full", "ctl_last",
        "index", "phase", "next_time", "event", "split", "fired",
        "hop_index", "hop_phase", "hop_time", "hops", "has_marker", "relay",
        "_alive",
    )

    def __init__(
        self,
        array: "DiskArray",
        disk: Resource,
        disk_req: Request,
        n: int,
        busy_full: float,
        busy_last: float,
        ctl_full: float,
        ctl_last: float,
    ):
        env = array.env
        self.array = array
        self.disk = disk
        self.controller = array.controller
        self.disk_req = disk_req
        #: Placeholder claim installed in ``controller.users`` while a
        #: virtual controller phase is in flight (never triggered itself).
        self.ctl_req = Request(array.controller)
        self.n = n
        self.busy_full = busy_full
        self.busy_last = busy_last
        self.ctl_full = ctl_full
        self.ctl_last = ctl_last
        self.index = 1
        self.phase = _PHASE_DISK
        self.next_time = env._now + (busy_full if n > 1 else busy_last)
        self.split = False
        self.fired = False
        # Fold the chain end exactly as the per-chunk loop advances the clock.
        end = env._now
        for j in range(1, n + 1):
            end += busy_full if j < n else busy_last
            ctl_time = ctl_full if j < n else ctl_last
            if ctl_time > 0.0:
                end += ctl_time
        # Deferred macro-event driven by the hop cursor: heap entries land at
        # the same simulated moments the per-chunk loop would push its
        # timeouts, preserving same-timestamp event-id ordering.
        self.event = BatchTimeout(env, end, defer=True)
        self.hop_index = 1
        self.hop_phase = _PHASE_DISK
        self.hop_time = self.next_time
        self.hops = 0
        self.relay = False
        self._alive = True
        if self._hop_final(1, _PHASE_DISK):
            # Single-chunk chain without a controller part: the first disk
            # phase is the whole chain, schedule the macro-event directly.
            self.has_marker = False
            eid = env._eid = env._eid + 1
            heappush(env._queue, (end, eid, self.event))
        else:
            self.hops = 1
            self.has_marker = True
            BatchHop(env, self, self.next_time)
        array._batch = self
        disk._batch = self
        array.controller._batch = self

    # -- hop cursor --------------------------------------------------------
    def _hop_final(self, i: int, phase: int) -> bool:
        """True if (chunk ``i``, ``phase``) ends at the chain end itself."""
        if i < self.n:
            return False
        if phase == _PHASE_CTL:
            return True
        return self.ctl_last <= 0.0

    def _hop_step(self, i: int, phase: int, t: float):
        """One phase transition of the hop fold (no accounting)."""
        if phase == _PHASE_DISK:
            ct = self.ctl_full if i < self.n else self.ctl_last
            if ct > 0.0:
                return i, _PHASE_CTL, t + ct
        i += 1
        return i, _PHASE_DISK, t + (self.busy_full if i < self.n else self.busy_last)

    def hop(self, horizon: float) -> None:
        """Advance the hop cursor at least one transition, at most to ``horizon``.

        Invoked by the kernel when this chain's pending heap entry surfaces
        with no competing event scheduled before ``horizon``; the interior
        transitions up to the horizon are then provably undisturbed and are
        crossed in a single jump.

        When a competing event shares this boundary's instant (``horizon``
        equals the boundary time), the phase transition is *realized*
        instead: it is applied inclusively right here -- the same pop
        position where the unbatched release would run -- and the follow-up
        push is *relayed* through a same-instant marker.  Unbatched, the
        boundary takes two heap hops within the instant: the phase timeout
        pops (release), the re-granted request pops, and only the latter
        pushes the next phase timeout.  The relay entry occupies the
        request's ``(time, eid)`` slot, so the next boundary's event is
        allocated its id in the instant's second wave exactly as the
        unbatched push would be -- otherwise it wins same-instant
        tie-breaks it should lose.
        """
        if self.split:
            self._alive = False
            if self.relay:
                # Preempted between the realize and this relay entry: the
                # relay slot is where the unbatched re-granted request would
                # push the next phase timeout, so reschedule the wake here.
                self.event.split(self.next_time)
            else:
                # Preempted with this marker already at the split boundary:
                # the marker's (time, eid) slot is exactly where the
                # unbatched chunk timeout would pop, so fire the wake here
                # (see preempt()).
                self.fired = True
                self.event.fire()
            return
        if self.relay:
            # Second wave of a realized boundary: jump onward from here.
            self.relay = False
        elif horizon <= self.hop_time:
            self.sync(self.hop_time, inclusive=True)
            self.relay = True
            self.hops += 1
            BatchHop(self.event.env, self, self.hop_time)
            return
        i, phase, t = self._hop_step(self.hop_index, self.hop_phase, self.hop_time)
        while not self._hop_final(i, phase):
            ni, nphase, nt = self._hop_step(i, phase, t)
            if nt > horizon:
                break
            i, phase, t = ni, nphase, nt
        env = self.event.env
        if self._hop_final(i, phase):
            self.has_marker = False
            eid = env._eid = env._eid + 1
            heappush(env._queue, (self.event._when, eid, self.event))
        else:
            self.hop_index = i
            self.hop_phase = phase
            self.hop_time = t
            self.hops += 1
            BatchHop(env, self, t)

    def sync(self, now: float, inclusive: bool = False) -> None:
        """Replay phase transitions strictly before ``now``.

        With ``inclusive`` the transition *at* ``now`` is applied as well --
        used by :meth:`hop` to realize a boundary whose instant is shared
        with a competing event.
        """
        nt = self.next_time
        if nt > now or (nt == now and not inclusive):
            return
        array = self.array
        disk = self.disk
        ctl = self.controller
        disk_req = self.disk_req
        i = self.index
        phase = self.phase
        n = self.n
        while nt < now or (inclusive and nt == now):
            if phase == _PHASE_DISK:
                # End of chunk i's disk phase: release the disk ...
                disk._busy_time += disk._busy_servers * (nt - disk._last_change)
                disk._last_change = nt
                disk._busy_servers -= 1
                disk.users.discard(disk_req)
                ctl_time = self.ctl_full if i < n else self.ctl_last
                if ctl_time > 0.0:
                    # ... and occupy the (idle, by construction) controller.
                    ctl._last_change = nt
                    ctl._busy_servers += 1
                    ctl.users.add(self.ctl_req)
                    phase = _PHASE_CTL
                    nt += ctl_time
                else:
                    if i >= n:  # pragma: no cover - chain end is the macro time
                        break
                    i += 1
                    array.physical_ios += 1
                    disk._last_change = nt
                    disk._busy_servers += 1
                    disk.users.add(disk_req)
                    nt += self.busy_full if i < n else self.busy_last
            else:
                # End of chunk i's controller phase: release the controller
                # and start the next chunk on the disk.
                ctl._busy_time += ctl._busy_servers * (nt - ctl._last_change)
                ctl._last_change = nt
                ctl._busy_servers -= 1
                ctl.users.discard(self.ctl_req)
                if i >= n:  # pragma: no cover - chain end is the macro time
                    break
                i += 1
                array.physical_ios += 1
                disk._last_change = nt
                disk._busy_servers += 1
                disk.users.add(disk_req)
                phase = _PHASE_DISK
                nt += self.busy_full if i < n else self.busy_last
        self.index = i
        self.phase = phase
        self.next_time = nt

    def preempt(self) -> None:
        """A competing request arrived: split at the current phase boundary.

        When the pending marker sits exactly at the split boundary (the
        cursor has not jumped past the in-flight phase -- the common case
        under contention), the wake is left to the marker itself so it keeps
        the event-id slot the unbatched chunk timeout would hold; see
        :meth:`hop`.  Only a cursor that already jumped ahead falls back to
        rescheduling through :meth:`BatchTimeout.split` (a fresh, later-id
        heap entry).
        """
        env = self.event.env
        self.sync(env._now)
        self.split = True
        if self.has_marker and (self.relay or self.hop_time == self.next_time):
            self._unhook()  # stop virtualising; the live marker carries the wake
        else:
            self._alive = False  # orphan any pending BatchHop entry
            self.deactivate()
            self.event.split(self.next_time)

    def _unhook(self) -> None:
        """Detach the batch from the array and its resources (idempotent)."""
        if self.array._batch is self:
            self.array._batch = None
        if self.disk._batch is self:
            self.disk._batch = None
        if self.controller._batch is self:
            self.controller._batch = None

    def deactivate(self) -> None:
        """Unhook the batch and kill any pending marker (idempotent)."""
        self._alive = False
        self._unhook()

    def finalize(self, now: float) -> None:
        """Settle replayed state at wake/teardown time."""
        self.sync(now)
        self.deactivate()

    def pages_consumed(self, total_pages: int, full_pages: int) -> int:
        """Pages covered through the chunk in flight at the wake boundary."""
        if self.index >= self.n:
            return total_pages
        return self.index * full_pages

    def elided_events(self) -> int:
        """Heap pushes the unbatched chain would have made for the covered span."""
        i = self.index
        n = self.n
        full = 2 + (2 if self.ctl_full > 0.0 else 0)
        last = 2 + (2 if self.ctl_last > 0.0 else 0)
        covered = (i - 1) * full + (last if i >= n else full)
        if self.phase == _PHASE_DISK:
            # The in-flight chunk's controller part runs for real after the
            # wake; only its disk part was covered.
            ctl_time = self.ctl_full if i < n else self.ctl_last
            if ctl_time > 0.0:
                covered -= 2
        if self.fired:
            # The wake reused the final marker's heap entry: no extra push.
            actual = self.hops
        else:
            actual = self.hops + (2 if self.split else 1)
        return max(0, covered - actual)


class DiskArray:
    """All disks of one PE plus their controller and cache.

    Physical I/Os are dispatched to the least-loaded disk (shortest queue,
    then fewest users), which approximates the striping of fragments and
    temporary files over the PE's disks.
    """

    def __init__(self, env: Environment, config: DiskConfig, pe_id: int = 0):
        self.env = env
        self.config = config
        self.pe_id = pe_id
        count = max(1, config.disks_per_pe)
        self.disks: List[Resource] = [
            Resource(env, capacity=1, name=f"disk[{pe_id}.{index}]") for index in range(count)
        ]
        self.controller = Resource(env, capacity=1, name=f"diskctl[{pe_id}]")
        #: Pages fetched per physical sequential I/O (>= 1; used by the
        #: execution layer to derive I/O counts without re-clamping).
        self.prefetch = max(1, config.prefetch_pages)
        self.cache = LruCache(config.cache_pages)
        self.pages_read = 0
        self.pages_written = 0
        self.physical_ios = 0
        #: The (single) active chain batch of this array, if any.
        self._batch: Optional[_ChainBatch] = None
        self._coalesce = coalescing_enabled()

    # -- helpers -----------------------------------------------------------
    def _pick_disk(self, preferred: Optional[int] = None) -> Resource:
        batch = self._batch
        if batch is not None:
            # Bring the virtualised disk/controller state up to date before
            # reading busy flags for the placement decision.
            batch.sync(self.env._now)
        disks = self.disks
        if preferred is not None:
            return disks[preferred % len(disks)]
        if len(disks) == 1:
            return disks[0]
        # First disk with the smallest (queue_length, busy) pair -- the same
        # disk min(key=...) selected, without a lambda per call.
        best = disks[0]
        best_queued = best._queued
        best_busy = best._busy_servers
        for disk in disks:
            queued = disk._queued
            if queued > best_queued:
                continue
            busy = disk._busy_servers
            if queued < best_queued or busy < best_busy:
                best = disk
                best_queued = queued
                best_busy = busy
        return best

    def _can_batch(self, disk: Resource) -> bool:
        """Uncontended-chain condition, checked after the first disk grant."""
        controller = self.controller
        return (
            self._coalesce
            and self._batch is None
            and disk._queued == 0
            and controller._busy_servers == 0
            and controller._queued == 0
        )

    def _physical_io(
        self, disk: Resource, busy_time: float, controller_pages: int
    ) -> Generator:
        """One physical I/O: queue at the disk, then at the controller."""
        self.physical_ios += 1
        env = self.env
        config = self.config
        batch = None
        req = disk.request()
        try:
            yield req
            if self._can_batch(disk):
                batch = _ChainBatch(
                    self, disk, req, 1,
                    busy_time, busy_time,
                    0.0, config.controller_time(controller_pages),
                )
                yield batch.event
            else:
                yield env.timeout(busy_time)
        finally:
            if batch is not None:
                batch.finalize(env._now)
                if batch.phase == _PHASE_CTL:
                    # The disk half already finished (virtually); the real
                    # disk release was replayed, hand back the controller.
                    self.controller.release(batch.ctl_req)
                else:
                    disk.release(req)
            else:
                disk.release(req)
        if batch is not None:
            env.events_coalesced += batch.elided_events()
            if batch.phase != _PHASE_DISK:
                return
            # Split before the controller phase: serve it for real.
        controller_time = config.controller_time(controller_pages)
        if controller_time > 0:
            controller = self.controller
            req = controller.request()
            try:
                yield req
                yield env.timeout(controller_time)
            finally:
                controller.release(req)

    # -- public operations ---------------------------------------------------
    def read_sequential(
        self, pages: int, preferred_disk: Optional[int] = None
    ) -> Generator:
        """Sequential read of ``pages`` pages with controller prefetching.

        Used for relation scans, clustered index scans and temporary file
        scans.  One physical I/O is issued per ``prefetch_pages`` pages.
        """
        if pages <= 0:
            return
        self.pages_read += pages
        yield from self._sequential_io(pages, preferred_disk)

    def _sequential_io(self, pages: int, preferred_disk: Optional[int]) -> Generator:
        """Chunked physical I/Os for a sequential read or write.

        The per-chunk work of :meth:`_physical_io` is inlined (no sub-generator
        per chunk) -- scans issue tens of thousands of these per point.  An
        uncontended chain is coalesced into one macro-event (module
        docstring); a split resumes this per-chunk loop at the boundary.
        """
        env = self.env
        controller = self.controller
        prefetch = self.prefetch
        remaining = pages
        while remaining > 0:
            chunk = prefetch if remaining > prefetch else remaining
            disk = self._pick_disk(preferred_disk)
            self.physical_ios += 1
            req = disk.request()
            batch = None
            try:
                yield req
                # Re-read per chunk: fault injection swaps ``self.config``
                # mid-run (disk degradation); each chunk runs at the speed
                # in force when its disk grant arrives.
                config = self.config
                busy = config.sequential_io_time(chunk)
                if self._can_batch(disk):
                    # Chunk schedule of the remaining pages: every chunk is a
                    # full prefetch except the last.
                    n = (remaining + prefetch - 1) // prefetch
                    last_pages = remaining - (n - 1) * prefetch
                    batch = _ChainBatch(
                        self, disk, req, n,
                        config.sequential_io_time(prefetch),
                        config.sequential_io_time(last_pages),
                        config.controller_time(prefetch),
                        config.controller_time(last_pages),
                    )
                    yield batch.event
                else:
                    yield Timeout(env, busy)
            finally:
                if batch is not None:
                    batch.finalize(env._now)
                    if batch.phase == _PHASE_CTL:
                        self.controller.release(batch.ctl_req)
                    else:
                        disk.release(req)
                else:
                    disk.release(req)
            if batch is None:
                controller_time = config.controller_time(chunk)
                if controller_time > 0:
                    req = controller.request()
                    try:
                        yield req
                        yield Timeout(env, controller_time)
                    finally:
                        controller.release(req)
                remaining -= chunk
            else:
                env.events_coalesced += batch.elided_events()
                if batch.phase == _PHASE_DISK:
                    # Woke at the end of the in-flight chunk's disk phase:
                    # its controller part runs for real before the loop
                    # resumes per-chunk mode.
                    chunk_pages = prefetch if batch.index < batch.n else (
                        remaining - (batch.n - 1) * prefetch
                    )
                    controller_time = config.controller_time(chunk_pages)
                    if controller_time > 0:
                        req = controller.request()
                        try:
                            yield req
                            yield Timeout(env, controller_time)
                        finally:
                            controller.release(req)
                remaining -= batch.pages_consumed(remaining, prefetch)

    def read_random(self, page_key: object = None, preferred_disk: Optional[int] = None) -> Generator:
        """Random single-page read, going through the controller LRU cache."""
        self.pages_read += 1
        if page_key is not None and self.cache.access(page_key):
            # Cache hit: controller service and transmission only.
            controller = self.controller
            req = controller.request()
            try:
                yield req
                yield self.env.timeout(self.config.controller_time(1))
            finally:
                controller.release(req)
            return
        busy = self.config.random_io_time()
        yield from self._physical_io(self._pick_disk(preferred_disk), busy, 1)

    def write_sequential(
        self, pages: int, preferred_disk: Optional[int] = None
    ) -> Generator:
        """Sequential write of ``pages`` pages (temporary files, checkpoints)."""
        if pages <= 0:
            return
        self.pages_written += pages
        yield from self._sequential_io(pages, preferred_disk)

    def write_random(self, preferred_disk: Optional[int] = None) -> Generator:
        """Random single-page write (log forces, dirty page flushes)."""
        self.pages_written += 1
        busy = self.config.random_io_time()
        yield from self._physical_io(self._pick_disk(preferred_disk), busy, 1)

    # -- statistics ----------------------------------------------------------
    def utilization(self) -> float:
        """Average utilisation across all disks of this PE."""
        if not self.disks:
            return 0.0
        return sum(disk.utilization() for disk in self.disks) / len(self.disks)

    def snapshot(self) -> Tuple[float, float]:
        """(now, aggregate busy time) for differential utilisation."""
        now = self.env.now
        busy = sum(disk.busy_time() for disk in self.disks)
        return now, busy

    def utilization_since(self, snapshot: Tuple[float, float]) -> float:
        """Average utilisation across disks since ``snapshot``."""
        then, busy_then = snapshot
        now, busy_now = self.snapshot()
        elapsed = now - then
        if elapsed <= 0 or not self.disks:
            return 0.0
        return min(1.0, (busy_now - busy_then) / (elapsed * len(self.disks)))

    @property
    def queue_length(self) -> int:
        """Total number of waiting I/O requests across the PE's disks."""
        return sum(disk._queued for disk in self.disks)
