"""CPU server of a processing element.

Every major processing step requests CPU service (paper §4): transaction
initiation (BOT), object accesses in main memory, I/O overhead, communication
overhead and commit processing.  Service times are derived from the
instruction cost table (Fig. 4) and the CPU speed in MIPS.

OLTP transactions may be given priority over complex-query work; the
underlying :class:`~repro.sim.resources.PriorityResource` serves lower
priority values first.
"""

from __future__ import annotations

from typing import Generator

from repro.config.parameters import CpuConfig, InstructionCosts
from repro.sim import Environment, PriorityResource, Timeout

__all__ = ["CpuServer", "PRIORITY_OLTP", "PRIORITY_QUERY", "PRIORITY_BACKGROUND"]

#: Priority levels: lower value is served first.
PRIORITY_OLTP = 0
PRIORITY_QUERY = 5
PRIORITY_BACKGROUND = 9


class CpuServer:
    """The CPU(s) of one PE with utilisation bookkeeping.

    Besides the lifetime utilisation (from the resource accounting), the
    server keeps a *windowed* utilisation that the control node polls
    periodically -- dynamic load balancing reacts to the recent past, not to
    the whole history.
    """

    def __init__(
        self,
        env: Environment,
        config: CpuConfig,
        costs: InstructionCosts,
        pe_id: int = 0,
    ):
        self.env = env
        self.config = config
        self.costs = costs
        self.pe_id = pe_id
        self.resource = PriorityResource(env, capacity=config.cpus_per_pe, name=f"cpu[{pe_id}]")
        self._quantum = max(1, config.quantum_instructions)
        self._window_start_time = 0.0
        self._window_start_busy = 0.0
        self._windowed_utilization = 0.0
        self.total_instructions = 0.0

    # -- service -----------------------------------------------------------
    def seconds_for(self, instructions: float) -> float:
        """CPU service time for a request of ``instructions``."""
        return self.config.seconds_for(instructions)

    def consume(
        self, instructions: float, priority: int = PRIORITY_QUERY
    ) -> Generator:
        """Simulation process step: occupy the CPU for ``instructions``.

        Demands larger than the scheduling quantum are served in slices so
        that concurrently running transactions share the CPU in a
        round-robin fashion (and higher-priority OLTP work gets in between
        slices) instead of waiting for one another's full demand.

        Usage inside a process: ``yield from cpu.consume(50_000)``.
        """
        if instructions <= 0:
            return
        self.total_instructions += instructions
        env = self.env
        resource = self.resource
        seconds_for = self.config.seconds_for
        quantum = self._quantum
        if instructions <= quantum:
            # Fast path: most demands (message handling, per-chunk CPU work)
            # fit in one quantum -- no slicing arithmetic needed.
            req = resource.request(priority=priority)
            try:
                yield req
                yield Timeout(env, seconds_for(instructions))
            finally:
                resource.release(req)
            return
        remaining = instructions
        while remaining > 0:
            slice_instructions = quantum if remaining > quantum else remaining
            req = resource.request(priority=priority)
            try:
                yield req
                yield Timeout(env, seconds_for(slice_instructions))
            finally:
                resource.release(req)
            remaining -= slice_instructions

    # -- utilisation -------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Lifetime average utilisation (0..1)."""
        return self.resource.utilization()

    def close_window(self) -> float:
        """Close the current measurement window and return its utilisation.

        Called by the control node every report interval.
        """
        now, busy = self.resource.snapshot()
        elapsed = now - self._window_start_time
        if elapsed > 0:
            self._windowed_utilization = min(
                1.0,
                (busy - self._window_start_busy) / (elapsed * self.config.cpus_per_pe),
            )
        self._window_start_time = now
        self._window_start_busy = busy
        return self._windowed_utilization

    @property
    def recent_utilization(self) -> float:
        """Utilisation of the most recently closed window."""
        return self._windowed_utilization

    @property
    def queue_length(self) -> int:
        """Number of CPU requests currently waiting."""
        return self.resource.queue_length
