"""CPU server of a processing element.

Every major processing step requests CPU service (paper §4): transaction
initiation (BOT), object accesses in main memory, I/O overhead, communication
overhead and commit processing.  Service times are derived from the
instruction cost table (Fig. 4) and the CPU speed in MIPS.

OLTP transactions may be given priority over complex-query work; the
underlying :class:`~repro.sim.resources.PriorityResource` serves lower
priority values first.

Event coalescing
----------------
Multi-quantum demands normally cost one request/timeout round-trip per
quantum.  When the CPU is uncontended (single server, nothing queued) the
whole remaining demand is covered by one :class:`~repro.sim.core.BatchTimeout`
macro-event instead.  Semantics are pinned to the unbatched loop:

* the macro end time and every virtual quantum boundary are computed by the
  *same left-fold of float additions* the per-quantum loop performs, so
  completion times are bit-identical;
* busy-time accounting is replayed lazily at the same boundaries (and topped
  up by ``Resource._account`` at observation points), so utilisation windows
  are bit-identical;
* the moment a competing request arrives -- OLTP preemption included -- the
  macro-event splits on the first quantum boundary at or after the arrival:
  the holder releases there (granting the newcomer exactly as the unbatched
  release would) and re-queues its remainder through the per-quantum path.
"""

from __future__ import annotations

import logging
from heapq import heappush
from typing import Generator

from repro.config.parameters import CpuConfig, InstructionCosts
from repro.sim import (
    BatchHop,
    BatchTimeout,
    Environment,
    PriorityResource,
    Timeout,
    coalescing_enabled,
)

__all__ = ["CpuServer", "PRIORITY_OLTP", "PRIORITY_QUERY", "PRIORITY_BACKGROUND"]

#: Priority levels: lower value is served first.
PRIORITY_OLTP = 0
PRIORITY_QUERY = 5
PRIORITY_BACKGROUND = 9

_logger = logging.getLogger(__name__)

#: Relative float-rounding slack before a >1.0 windowed utilisation is
#: reported as an accounting error rather than clamped silently.
_UTILIZATION_SLACK = 1e-9


class _QuantumBatch:
    """Bookkeeping for one coalesced run of uncontended CPU quanta.

    ``n`` slices cover the remaining demand: ``n - 1`` full quanta of
    ``sec_q`` seconds each plus a final slice of ``sec_final`` seconds.
    Boundary ``k`` (1-based) is the fold ``t0 + sec_1 + ... + sec_k``; the
    macro-event fires at boundary ``n`` unless split earlier.

    The replay cursor (``next_index``/``next_time``) applies, strictly before
    any observation time, the busy-time piece the unbatched release at each
    crossed boundary would have added.  The boundary *at* the current time is
    always left to the real ``release()`` so piece ordering matches.
    """

    __slots__ = (
        "resource", "n", "sec_q", "sec_final", "next_index", "next_time",
        "event", "split_index", "hop_index", "hop_time", "hops",
        "has_marker", "fired", "relay", "_alive",
    )

    def __init__(
        self,
        env: Environment,
        resource: PriorityResource,
        n: int,
        sec_q: float,
        sec_final: float,
    ):
        self.resource = resource
        self.n = n
        self.sec_q = sec_q
        self.sec_final = sec_final
        self.next_index = 1
        self.next_time = env._now + (sec_q if n > 1 else sec_final)
        self.split_index = 0  # 0 = ran to completion
        end = env._now
        for _ in range(n - 1):
            end += sec_q
        end += sec_final
        # The macro-event is deferred: the hop cursor below walks the quantum
        # boundaries and only schedules it once the cursor reaches the end,
        # so heap pushes happen at the same simulated moments (and hence the
        # same event-id tie-break positions) as the unbatched slice timeouts.
        self.event = BatchTimeout(env, end, defer=True)
        self.hop_index = 1
        self.hop_time = self.next_time
        self.hops = 1
        self.has_marker = True
        self.fired = False
        self.relay = False
        self._alive = True
        BatchHop(env, self, self.next_time)

    def hop(self, horizon: float) -> None:
        """Advance the hop cursor at least one boundary, at most to ``horizon``.

        Called by the kernel when this batch's pending heap entry surfaces
        with nothing scheduled before ``horizon``: every interior boundary up
        to the horizon is provably free of competing events, so the cursor
        jumps across all of them at once.  Each boundary value repeats the
        unbatched loop's float fold exactly.

        When a competing event shares this boundary's instant
        (``horizon`` equals the boundary time), the boundary is *realized*
        instead: its accounting piece is applied inclusively right here --
        the same pop position where the unbatched release would run -- and
        the follow-up push is *relayed* through a same-instant marker.
        Unbatched, the boundary takes two heap hops within the instant: the
        slice timeout pops (release), the re-granted request pops, and only
        the latter pushes the next slice timeout.  The relay entry occupies
        the request's ``(time, eid)`` slot, so the next boundary's event is
        allocated its id in the instant's second wave exactly as the
        unbatched push would be -- otherwise it wins same-instant
        tie-breaks it should lose.
        """
        if self.split_index:
            self._alive = False
            if self.relay:
                # Preempted between the realize and this relay entry: the
                # relay slot is where the unbatched re-granted request would
                # push the next slice timeout, so reschedule the wake here.
                self.event.split(self.next_time)
            else:
                # Preempted with this marker already at the split boundary:
                # the marker's (time, eid) slot is exactly where the
                # unbatched slice timeout would pop, so fire the wake here
                # (see preempt()).
                self.fired = True
                self.event.fire()
            return
        if self.relay:
            # Second wave of a realized boundary: jump onward from here.
            self.relay = False
        elif horizon <= self.hop_time:
            self.sync(self.hop_time, inclusive=True)
            self.relay = True
            self.hops += 1
            BatchHop(self.event.env, self, self.hop_time)
            return
        i = self.hop_index
        t = self.hop_time
        n = self.n
        sec_q = self.sec_q
        i += 1
        t += sec_q if i < n else self.sec_final
        while i < n:
            nt = t + (sec_q if i + 1 < n else self.sec_final)
            if nt > horizon:
                break
            i += 1
            t = nt
        self.hop_index = i
        self.hop_time = t
        n = self.n
        event = self.event
        env = event.env
        if i >= n:
            # Cursor reached the batch end: schedule the macro-event itself.
            self.has_marker = False
            eid = env._eid = env._eid + 1
            heappush(env._queue, (event._when, eid, event))
        else:
            self.hops += 1
            BatchHop(env, self, t)

    def sync(self, now: float, inclusive: bool = False) -> None:
        """Replay the accounting of quantum boundaries strictly before ``now``.

        With ``inclusive`` the boundary *at* ``now`` is applied as well --
        used by :meth:`hop` to realize a boundary whose instant is shared
        with a competing event.
        """
        nt = self.next_time
        if nt > now or (nt == now and not inclusive):
            return
        res = self.resource
        i = self.next_index
        n = self.n
        sec_q = self.sec_q
        while nt < now or (inclusive and nt == now):
            # Unbatched, the holder releases and immediately re-acquires the
            # sole slot at each boundary: one busy piece ending there.
            res._busy_time += res._busy_servers * (nt - res._last_change)
            res._last_change = nt
            i += 1
            if i < n:
                nt += sec_q
            elif i == n:
                nt += self.sec_final
            else:  # pragma: no cover - boundary n is the macro end itself
                break
        self.next_index = i
        self.next_time = nt

    def preempt(self) -> None:
        """A competing request arrived: split on the next quantum boundary.

        After :meth:`sync`, ``next_time`` is the first boundary at or after
        the arrival -- the instant where the unbatched loop would release the
        slot and let the queue (the newcomer included) compete for it.
        """
        env = self.event.env
        self.sync(env._now)
        self.split_index = self.next_index
        self.resource._batch = None
        if self.has_marker and (self.relay or self.hop_time == self.next_time):
            # The pending marker (or same-instant relay entry) holds the
            # event-id slot the unbatched wake would hold: leave the wake to
            # it (see hop()).
            return
        self._alive = False  # orphan any pending BatchHop entry
        self.event.split(self.next_time)


class CpuServer:
    """The CPU(s) of one PE with utilisation bookkeeping.

    Besides the lifetime utilisation (from the resource accounting), the
    server keeps a *windowed* utilisation that the control node polls
    periodically -- dynamic load balancing reacts to the recent past, not to
    the whole history.
    """

    def __init__(
        self,
        env: Environment,
        config: CpuConfig,
        costs: InstructionCosts,
        pe_id: int = 0,
    ):
        self.env = env
        self.config = config
        self.costs = costs
        self.pe_id = pe_id
        self.resource = PriorityResource(env, capacity=config.cpus_per_pe, name=f"cpu[{pe_id}]")
        self._quantum = max(1, config.quantum_instructions)
        # Quantum coalescing virtualises a single-server resource; multi-CPU
        # PEs fall back to per-quantum slicing.
        self._coalesce = coalescing_enabled() and config.cpus_per_pe == 1
        self._window_start_time = 0.0
        self._window_start_busy = 0.0
        self._windowed_utilization = 0.0
        self.total_instructions = 0.0

    # -- service -----------------------------------------------------------
    def seconds_for(self, instructions: float) -> float:
        """CPU service time for a request of ``instructions``."""
        return self.config.seconds_for(instructions)

    def consume(
        self, instructions: float, priority: int = PRIORITY_QUERY
    ) -> Generator:
        """Simulation process step: occupy the CPU for ``instructions``.

        Demands larger than the scheduling quantum are served in slices so
        that concurrently running transactions share the CPU in a
        round-robin fashion (and higher-priority OLTP work gets in between
        slices) instead of waiting for one another's full demand.  When the
        CPU is uncontended the slices are coalesced into one macro-event
        with identical semantics (see the module docstring).

        Usage inside a process: ``yield from cpu.consume(50_000)``.
        """
        if instructions <= 0:
            return
        self.total_instructions += instructions
        env = self.env
        resource = self.resource
        quantum = self._quantum
        if instructions <= quantum:
            # Fast path: most demands (message handling, per-chunk CPU work)
            # fit in one quantum -- no slicing arithmetic needed.
            req = resource.request(priority=priority)
            try:
                yield req
                yield Timeout(env, self.config.seconds_for(instructions))
            finally:
                resource.release(req)
            return
        coalesce = self._coalesce
        remaining = instructions
        while remaining > 0:
            req = resource.request(priority=priority)
            try:
                yield req
                # Re-read per slice: fault injection swaps ``self.config``
                # mid-run (stragglers), and a new slice must run at the
                # speed in force when it starts.
                seconds_for = self.config.seconds_for
                if coalesce and remaining > quantum and resource._queued == 0:
                    # Uncontended: cover every remaining quantum with one
                    # macro-event.  Slice count and boundaries replicate the
                    # unbatched loop's float arithmetic exactly.
                    n = 1
                    r = remaining
                    while r > quantum:
                        n += 1
                        r -= quantum
                    batch = _QuantumBatch(
                        env, resource, n, seconds_for(quantum), seconds_for(r)
                    )
                    resource._batch = batch
                    try:
                        yield batch.event
                    finally:
                        batch._alive = False
                        if resource._batch is batch:
                            resource._batch = None
                        batch.sync(env._now)
                    k = batch.split_index
                    if k == 0 or k >= n:
                        env.events_coalesced += max(0, 2 * n - 2 - batch.hops)
                        remaining = 0
                    else:
                        env.events_coalesced += max(0, 2 * k - 2 - batch.hops)
                        for _ in range(k):
                            remaining -= quantum
                else:
                    slice_instructions = quantum if remaining > quantum else remaining
                    yield Timeout(env, seconds_for(slice_instructions))
                    remaining -= slice_instructions
            finally:
                resource.release(req)

    # -- utilisation -------------------------------------------------------
    @property
    def utilization(self) -> float:
        """Lifetime average utilisation (0..1)."""
        return self.resource.utilization()

    def close_window(self) -> float:
        """Close the current measurement window and return its utilisation.

        Called by the control node every report interval.  A value beyond
        1.0 (modulo float-rounding slack) means the busy-time accounting
        double-counted somewhere; it is logged loudly instead of being
        silently hidden by the clamp.
        """
        now, busy = self.resource.snapshot()
        elapsed = now - self._window_start_time
        if elapsed > 0:
            utilization = (busy - self._window_start_busy) / (
                elapsed * self.config.cpus_per_pe
            )
            if utilization > 1.0 + _UTILIZATION_SLACK:
                _logger.warning(
                    "cpu[%d]: windowed utilisation %.12f exceeds 1.0 "
                    "(window %.6f..%.6f) -- busy-time accounting double-counted",
                    self.pe_id,
                    utilization,
                    self._window_start_time,
                    now,
                )
            self._windowed_utilization = utilization if utilization < 1.0 else 1.0
        self._window_start_time = now
        self._window_start_busy = busy
        return self._windowed_utilization

    @property
    def recent_utilization(self) -> float:
        """Utilisation of the most recently closed window."""
        return self._windowed_utilization

    @property
    def queue_length(self) -> int:
        """Number of CPU requests currently waiting."""
        return self.resource.queue_length
