"""Runtime fault injector.

:class:`FaultRuntime` interprets an expanded fault plan inside a running
:class:`~repro.simulation.system.ParallelSystem`: an injector *process*
sleeps until each event's instant and applies it -- killing and
resubmitting in-flight work for crashes, swapping hardware configs for
stragglers (splitting any active coalesced macro-event first, PR 6), and
simulating explicit repartitioning work for membership changes.

The runtime also owns the observability side: an availability step
function and labeled anomaly windows, folded into per-window timeline
rows (``availability`` / ``anomaly``) by the timeline collector.

Construction discipline: a :class:`FaultRuntime` is only ever built for a
*non-empty* plan.  Zero-fault systems carry ``faults = None`` and take the
exact historical code paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultEvent, expand_events
from repro.workload.query import JoinQuery, Transaction

__all__ = ["FaultRuntime"]


class _TxnRecord:
    """Registry entry for one in-flight transaction."""

    __slots__ = ("txn", "pes", "group")

    def __init__(self, txn: Transaction, pes):
        self.txn = txn
        self.pes = set(pes)
        #: Insertion-ordered dict used as an ordered set of live processes
        #: (the root process plus every descendant, via group inheritance
        #: in the simulation kernel).  Processes remove themselves on
        #: termination, so an empty group means the transaction is done.
        self.group: Dict[object, None] = {}


class _AnomalyWindow:
    __slots__ = ("start", "end", "kind", "pe")

    def __init__(self, start: float, kind: str, pe: int):
        self.start = start
        self.end: Optional[float] = None
        self.kind = kind
        self.pe = pe


class FaultRuntime:
    """Interprets a fault plan against a live system."""

    def __init__(self, system, events: Sequence[FaultEvent]):
        if not events:
            raise ValueError("FaultRuntime requires a non-empty fault plan")
        self.system = system
        self.env = system.env
        self.events: List[FaultEvent] = expand_events(events)
        num_pe = system.config.num_pe
        for event in self.events:
            if event.pe >= num_pe:
                raise ValueError(
                    f"fault targets PE {event.pe} but the system has {num_pe} PEs"
                )
        self.alive = [True] * num_pe
        # Join-processor pool membership: PEs targeted by a pe_add start
        # outside the pool and join once their rebalancing completes.
        add_targets = {e.pe for e in self.events if e.kind == "pe_add"}
        self.joined = [pe_id not in add_targets for pe_id in range(num_pe)]
        self.cpu_factor = [1.0] * num_pe
        self.disk_factor = [1.0] * num_pe
        self._base_cpu = [pe.cpu.config for pe in system.pes]
        self._base_disk = [pe.disks.config for pe in system.pes]
        self._records: Dict[int, _TxnRecord] = {}
        self._held: List[Transaction] = []
        self._windows: List[_AnomalyWindow] = []
        self._steps: List[Tuple[float, int, int]] = []
        self._step(0.0)
        self._started = False
        # Counters (exposed in benchmarks / debugging).
        self.injected = 0
        self.kills = 0
        self.resubmits = 0
        self.holds = 0
        self.rebalanced_pages = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.env.process(self._injector_loop())

    def _injector_loop(self):
        env = self.env
        for event in self.events:
            if event.time > env.now:
                yield env.timeout(event.time - env.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        self.injected += 1
        self._prune_registry()
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)

    # -- availability / anomaly bookkeeping -----------------------------------
    def _step(self, time: float) -> None:
        alive_joined = sum(
            1 for pe_id in range(len(self.alive)) if self.alive[pe_id] and self.joined[pe_id]
        )
        joined = sum(1 for flag in self.joined if flag)
        self._steps.append((time, alive_joined, joined))

    def _open_window(self, kind: str, pe: int) -> _AnomalyWindow:
        window = _AnomalyWindow(self.env.now, kind, pe)
        self._windows.append(window)
        return window

    def _close_windows(self, kinds: Sequence[str], pe: int) -> None:
        for window in self._windows:
            if window.end is None and window.pe == pe and window.kind in kinds:
                window.end = self.env.now

    def window_stats(self, start: float, end: float) -> Tuple[float, str]:
        """Fold the fault record into one timeline window [start, end).

        Returns ``(availability, anomaly)``: availability is the
        time-integral of alive-and-joined PEs over joined PEs (1.0 when the
        pool was empty for the whole window -- nothing was expected of it),
        anomaly is a stable ``kind:peN`` label join of overlapping injected
        windows (empty when the window is clean).
        """
        numerator = 0.0
        denominator = 0.0
        steps = self._steps
        for index, (time, alive_joined, joined) in enumerate(steps):
            seg_start = time if time > start else start
            seg_end = steps[index + 1][0] if index + 1 < len(steps) else end
            if seg_end > end:
                seg_end = end
            if seg_end <= seg_start:
                continue
            numerator += alive_joined * (seg_end - seg_start)
            denominator += joined * (seg_end - seg_start)
        availability = numerator / denominator if denominator > 0 else 1.0
        labels = sorted(
            {
                f"{window.kind}:pe{window.pe}"
                for window in self._windows
                if window.start < end and (window.end is None or window.end > start)
            }
        )
        return availability, "+".join(labels)

    # -- scheduling hooks ------------------------------------------------------
    def eligible_processors(self) -> Tuple[int, ...]:
        """PEs currently usable as join processors (alive and in the pool)."""
        return tuple(
            pe_id
            for pe_id in range(len(self.alive))
            if self.alive[pe_id] and self.joined[pe_id]
        )

    def _next_eligible(self, pe: int) -> Optional[int]:
        """Cyclically next alive-and-joined PE after ``pe`` (None if none)."""
        num_pe = len(self.alive)
        for offset in range(1, num_pe + 1):
            candidate = (pe + offset) % num_pe
            if self.alive[candidate] and self.joined[candidate]:
                return candidate
        return None

    # -- submission interception ------------------------------------------------
    def _join_pes(self, query: JoinQuery) -> set:
        catalog = self.system.catalog
        pes = set(catalog.relation(query.inner_relation).node_ids)
        pes.update(catalog.relation(query.outer_relation).node_ids)
        return pes

    def on_submit(self, transaction: Transaction) -> bool:
        """Gate a routed transaction; False holds it for later resubmission.

        Join coordinators routed onto unusable PEs are remapped (cyclically)
        to the next usable one; joins whose *data* PEs are down, and OLTP
        transactions whose home PE is down, are held -- data homes are fixed
        in a Shared Nothing system, the work can only run where the data
        lives.
        """
        if isinstance(transaction, JoinQuery):
            data_pes = self._join_pes(transaction)
            if any(not self.alive[pe_id] for pe_id in data_pes):
                self._hold(transaction)
                return False
            coordinator = transaction.coordinator_pe
            if not (self.alive[coordinator] and self.joined[coordinator]):
                remapped = self._next_eligible(coordinator)
                if remapped is None:
                    self._hold(transaction)
                    return False
                transaction.coordinator_pe = remapped
            return True
        home = transaction.home_pe
        if home is None:
            home = transaction.coordinator_pe
        if not self.alive[home]:
            self._hold(transaction)
            return False
        return True

    def _hold(self, transaction: Transaction) -> None:
        self.holds += 1
        self._held.append(transaction)

    def track(self, transaction: Transaction, process) -> None:
        """Register a root process (and, via inheritance, its descendants)."""
        if isinstance(transaction, JoinQuery):
            pes = self._join_pes(transaction)
            pes.add(transaction.coordinator_pe)
        else:
            home = transaction.home_pe
            if home is None:
                home = transaction.coordinator_pe
            pes = {home}
        record = _TxnRecord(transaction, pes)
        record.group[process] = None
        process._group = record.group
        self._records[transaction.txn_id] = record

    def note_plan(self, query: JoinQuery, processors: Sequence[int]) -> None:
        """Extend a join's PE set with its chosen join processors."""
        record = self._records.get(query.txn_id)
        if record is not None:
            record.pes.update(processors)

    def _prune_registry(self) -> None:
        done = [
            txn_id for txn_id, record in self._records.items() if not record.group
        ]
        for txn_id in done:
            del self._records[txn_id]

    # -- hardware speed control --------------------------------------------------
    def _apply_speed(self, pe_id: int) -> None:
        """Swap the PE's hardware configs to the current factors.

        Any active coalesced macro-event is split at the fault instant first
        (PR 6 invariant: batched == unbatched), so already-elapsed virtual
        time is accounted at the old speed and the remainder re-runs at the
        new one.
        """
        pe = self.system.pes[pe_id]
        cpu_batch = pe.cpu.resource._batch
        if cpu_batch is not None:
            cpu_batch.preempt()
        disk_batch = pe.disks._batch
        if disk_batch is not None:
            disk_batch.preempt()
        cpu_factor = self.cpu_factor[pe_id]
        base_cpu = self._base_cpu[pe_id]
        pe.cpu.config = (
            base_cpu
            if cpu_factor == 1.0
            else replace(base_cpu, mips=base_cpu.mips * cpu_factor)
        )
        disk_factor = self.disk_factor[pe_id]
        base_disk = self._base_disk[pe_id]
        # Mirrors SystemConfig.effective_disk: disk_factor scales *speed*,
        # so every per-page and access time is divided by it.
        pe.disks.config = (
            base_disk
            if disk_factor == 1.0
            else replace(
                base_disk,
                controller_service_time=base_disk.controller_service_time / disk_factor,
                transmission_time_per_page=base_disk.transmission_time_per_page / disk_factor,
                avg_access_time=base_disk.avg_access_time / disk_factor,
                prefetch_delay_per_page=base_disk.prefetch_delay_per_page / disk_factor,
            )
        )
        self._sync_status(pe_id)

    def _sync_status(self, pe_id: int) -> None:
        """Push availability/speed into the control node's view of the PE."""
        status = self.system.control_node.status_of(pe_id)
        status.available = self.alive[pe_id] and self.joined[pe_id]
        status.speed_factor = self.cpu_factor[pe_id]

    # -- event handlers -----------------------------------------------------------
    def _apply_degrade(self, event: FaultEvent) -> None:
        self.cpu_factor[event.pe] = event.factor
        self.disk_factor[event.pe] = event.factor
        self._apply_speed(event.pe)
        self._open_window("degrade", event.pe)

    def _apply_disk_fail(self, event: FaultEvent) -> None:
        self.disk_factor[event.pe] = event.factor
        self._apply_speed(event.pe)
        self._open_window("disk_fail", event.pe)

    def _apply_restore(self, event: FaultEvent) -> None:
        self.cpu_factor[event.pe] = 1.0
        self.disk_factor[event.pe] = 1.0
        self._apply_speed(event.pe)
        self._close_windows(("degrade", "disk_fail"), event.pe)

    def _apply_pe_crash(self, event: FaultEvent) -> None:
        pe_id = event.pe
        self.alive[pe_id] = False
        self._step(self.env.now)
        self._sync_status(pe_id)
        self._open_window("pe_crash", pe_id)
        victims = sorted(
            txn_id
            for txn_id, record in self._records.items()
            if pe_id in record.pes
        )
        restartable: List[Transaction] = []
        for txn_id in victims:
            record = self._records.pop(txn_id)
            self._kill_record(record)
            restartable.append(record.txn)
        if restartable:
            self.env.process(self._resubmit_later(restartable, event.restart_delay))

    def _kill_record(self, record: _TxnRecord) -> None:
        self.kills += 1
        # Deepest-first: descendants were inserted after their parents, and
        # closing a child's generator before its parent keeps the parent's
        # cleanup (finally blocks) from observing half-torn-down children.
        for process in reversed(list(record.group)):
            process.kill()
        txn_id = record.txn.txn_id
        owner = f"join-{txn_id}"
        for pe in self.system.pes:
            pe.locks.purge_txn(txn_id)
            pe.buffer.purge_owner(owner)

    def _resubmit_later(self, transactions: List[Transaction], delay: float):
        if delay > 0:
            yield self.env.timeout(delay)
        for transaction in transactions:
            self._resubmit(transaction)

    def _resubmit(self, transaction: Transaction) -> None:
        """Re-run a killed/held transaction, bypassing the arrival routers
        (their RNG streams must only advance once per original arrival)."""
        if not self.on_submit(transaction):
            return
        self.resubmits += 1
        system = self.system
        if isinstance(transaction, JoinQuery):
            process = self.env.process(system._run_join(transaction))
        else:
            process = self.env.process(system._run_oltp(transaction))
        self.track(transaction, process)

    def _apply_pe_recover(self, event: FaultEvent) -> None:
        pe_id = event.pe
        self.alive[pe_id] = True
        self._step(self.env.now)
        self._sync_status(pe_id)
        self._close_windows(("pe_crash",), pe_id)
        self._release_held()

    def _release_held(self) -> None:
        held = self._held
        self._held = []
        for transaction in held:
            self._resubmit(transaction)

    def _apply_pe_add(self, event: FaultEvent) -> None:
        window = self._open_window("pe_add", event.pe)
        self.env.process(self._rebalance_in(event, window))

    def _rebalance_in(self, event: FaultEvent, window: _AnomalyWindow):
        """Ship partitions onto the joining PE, then admit it to the pool."""
        donor = self._next_eligible(event.pe)
        if event.pages > 0 and donor is not None:
            page_size = self.system.config.buffer.page_size_bytes
            yield from self.system.network.transfer_chain(
                [page_size] * event.pages, src=donor, dst=event.pe
            )
            yield from self.system.pes[event.pe].disks.write_sequential(event.pages)
            self.rebalanced_pages += event.pages
        self.joined[event.pe] = True
        self._step(self.env.now)
        self._sync_status(event.pe)
        window.end = self.env.now
        self._release_held()

    def _apply_pe_remove(self, event: FaultEvent) -> None:
        pe_id = event.pe
        self.joined[pe_id] = False
        self._step(self.env.now)
        self._sync_status(pe_id)
        window = self._open_window("pe_remove", pe_id)
        self.env.process(self._rebalance_out(event, window))

    def _rebalance_out(self, event: FaultEvent, window: _AnomalyWindow):
        """Drain the removed PE's partitions onto its cyclic successor."""
        receiver = self._next_eligible(event.pe)
        if event.pages > 0 and receiver is not None and self.alive[event.pe]:
            page_size = self.system.config.buffer.page_size_bytes
            yield from self.system.network.transfer_chain(
                [page_size] * event.pages, src=event.pe, dst=receiver
            )
            yield from self.system.pes[receiver].disks.write_sequential(event.pages)
            self.rebalanced_pages += event.pages
        window.end = self.env.now
