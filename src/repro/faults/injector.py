"""Runtime fault injector.

:class:`FaultRuntime` interprets an expanded fault plan inside a running
:class:`~repro.simulation.system.ParallelSystem`: an injector *process*
sleeps until each event's instant and applies it -- killing and
resubmitting in-flight work for crashes, swapping hardware configs for
stragglers (splitting any active coalesced macro-event first, PR 6), and
simulating explicit repartitioning work for membership changes.

The runtime also owns the observability side: an availability step
function and labeled anomaly windows, folded into per-window timeline
rows (``availability`` / ``anomaly``) by the timeline collector.

Construction discipline: a :class:`FaultRuntime` is only ever built for a
*non-empty* plan.  Zero-fault systems carry ``faults = None`` and take the
exact historical code paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.database.allocation import failover_scan_sites
from repro.faults.plan import FaultEvent, expand_events
from repro.workload.query import JoinQuery, Transaction

__all__ = ["FaultRuntime"]


class _TxnRecord:
    """Registry entry for one in-flight transaction."""

    __slots__ = ("txn", "pes", "group")

    def __init__(self, txn: Transaction, pes):
        self.txn = txn
        self.pes = set(pes)
        #: Insertion-ordered dict used as an ordered set of live processes
        #: (the root process plus every descendant, via group inheritance
        #: in the simulation kernel).  Processes remove themselves on
        #: termination, so an empty group means the transaction is done.
        self.group: Dict[object, None] = {}


class _AnomalyWindow:
    __slots__ = ("start", "end", "kind", "pe")

    def __init__(self, start: float, kind: str, pe: int):
        self.start = start
        self.end: Optional[float] = None
        self.kind = kind
        self.pe = pe


class FaultRuntime:
    """Interprets a fault plan against a live system."""

    def __init__(self, system, events: Sequence[FaultEvent]):
        if not events:
            raise ValueError("FaultRuntime requires a non-empty fault plan")
        self.system = system
        self.env = system.env
        self.events: List[FaultEvent] = expand_events(events)
        num_pe = system.config.num_pe
        for event in self.events:
            if event.rack is not None:
                racks = system.config.topology.racks
                if event.rack >= racks:
                    raise ValueError(
                        f"fault targets rack {event.rack} but the topology has "
                        f"{racks} rack(s)"
                    )
            elif event.pe >= num_pe:
                raise ValueError(
                    f"fault targets PE {event.pe} but the system has {num_pe} PEs"
                )
        self.alive = [True] * num_pe
        # Join-processor pool membership: PEs targeted by a pe_add start
        # outside the pool and join once their rebalancing completes.
        add_targets = {e.pe for e in self.events if e.kind == "pe_add"}
        self.joined = [pe_id not in add_targets for pe_id in range(num_pe)]
        self.cpu_factor = [1.0] * num_pe
        self.disk_factor = [1.0] * num_pe
        self._base_cpu = [pe.cpu.config for pe in system.pes]
        self._base_disk = [pe.disks.config for pe in system.pes]
        self._records: Dict[int, _TxnRecord] = {}
        self._held: List[Transaction] = []
        self._windows: List[_AnomalyWindow] = []
        self._steps: List[Tuple[float, int, int]] = []
        self._data_steps: List[Tuple[float, float]] = []
        # Active cascading-overload surges, keyed by the crash target so the
        # matching recover can retract exactly its own contribution.
        self._surges: Dict[Tuple[str, int], float] = {}
        # PEs that ever recover in this plan; a crash of any other PE is a
        # *permanent* loss and (under replication) triggers re-replication.
        self._recover_pes = set()
        for event in self.events:
            if event.kind == "pe_recover":
                self._recover_pes.update(self._targets(event))
        self._step(0.0)
        self._started = False
        # Counters (exposed in benchmarks / debugging).
        self.injected = 0
        self.kills = 0
        self.resubmits = 0
        self.holds = 0
        self.rebalanced_pages = 0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.env.process(self._injector_loop())

    def _injector_loop(self):
        env = self.env
        for event in self.events:
            if event.time > env.now:
                yield env.timeout(event.time - env.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        self.injected += 1
        self._prune_registry()
        handler = getattr(self, f"_apply_{event.kind}")
        handler(event)

    def _targets(self, event: FaultEvent) -> List[int]:
        """PEs targeted by one crash/recover event (rack-scoped or single)."""
        if event.rack is None:
            return [event.pe]
        num_pe = len(self.alive)
        topology = self.system.config.topology
        return [
            pe_id
            for pe_id in range(num_pe)
            if topology.rack_of(pe_id, num_pe) == event.rack
        ]

    def dead_pes(self) -> FrozenSet[int]:
        """PEs currently crashed (empty set when everything is alive)."""
        return frozenset(
            pe_id for pe_id, alive in enumerate(self.alive) if not alive
        )

    # -- availability / anomaly bookkeeping -----------------------------------
    def _step(self, time: float) -> None:
        alive_joined = sum(
            1 for pe_id in range(len(self.alive)) if self.alive[pe_id] and self.joined[pe_id]
        )
        joined = sum(1 for flag in self.joined if flag)
        self._steps.append((time, alive_joined, joined))
        self._data_steps.append((time, self._data_fraction()))

    def _data_fraction(self) -> float:
        """Fraction of database tuples with at least one alive copy *now*."""
        dead = self.dead_pes()
        catalog = self.system.catalog
        total = 0
        reachable = 0
        for name in catalog.names:
            relation = catalog.relation(name)
            for pe_id, fragment in relation.fragments.items():
                total += fragment.num_tuples
                if pe_id not in dead:
                    reachable += fragment.num_tuples
                    continue
                backup = relation.backup_of(pe_id)
                if backup is not None and backup not in dead:
                    reachable += fragment.num_tuples
        return reachable / total if total else 1.0

    def _open_window(self, kind: str, pe: int) -> _AnomalyWindow:
        window = _AnomalyWindow(self.env.now, kind, pe)
        self._windows.append(window)
        return window

    def _close_windows(self, kinds: Sequence[str], pe: int) -> None:
        for window in self._windows:
            if window.end is None and window.pe == pe and window.kind in kinds:
                window.end = self.env.now

    def window_stats(self, start: float, end: float) -> Tuple[float, str]:
        """Fold the fault record into one timeline window [start, end).

        Returns ``(availability, anomaly)``: availability is the
        time-integral of alive-and-joined PEs over joined PEs (1.0 when the
        pool was empty for the whole window -- nothing was expected of it),
        anomaly is a stable ``kind:peN`` label join of overlapping injected
        windows (empty when the window is clean).
        """
        numerator = 0.0
        denominator = 0.0
        steps = self._steps
        for index, (time, alive_joined, joined) in enumerate(steps):
            seg_start = time if time > start else start
            seg_end = steps[index + 1][0] if index + 1 < len(steps) else end
            if seg_end > end:
                seg_end = end
            if seg_end <= seg_start:
                continue
            numerator += alive_joined * (seg_end - seg_start)
            denominator += joined * (seg_end - seg_start)
        availability = numerator / denominator if denominator > 0 else 1.0
        labels = sorted(
            {
                f"{window.kind}:pe{window.pe}"
                for window in self._windows
                if window.start < end and (window.end is None or window.end > start)
            }
        )
        return availability, "+".join(labels)

    def data_availability(self, start: float, end: float) -> float:
        """Effective availability of one window [start, end).

        Time-integral of the fraction of database tuples with at least one
        alive copy -- under replication a crashed PE costs no availability
        as long as the backups of its fragments survive, whereas in the
        single-copy system every crash makes its fragments unreachable.
        """
        numerator = 0.0
        duration = 0.0
        steps = self._data_steps
        for index, (time, fraction) in enumerate(steps):
            seg_start = time if time > start else start
            seg_end = steps[index + 1][0] if index + 1 < len(steps) else end
            if seg_end > end:
                seg_end = end
            if seg_end <= seg_start:
                continue
            numerator += fraction * (seg_end - seg_start)
            duration += seg_end - seg_start
        return numerator / duration if duration > 0 else 1.0

    # -- scheduling hooks ------------------------------------------------------
    def eligible_processors(self) -> Tuple[int, ...]:
        """PEs currently usable as join processors (alive and in the pool)."""
        return tuple(
            pe_id
            for pe_id in range(len(self.alive))
            if self.alive[pe_id] and self.joined[pe_id]
        )

    def _next_eligible(self, pe: int) -> Optional[int]:
        """Cyclically next alive-and-joined PE after ``pe`` (None if none)."""
        num_pe = len(self.alive)
        for offset in range(1, num_pe + 1):
            candidate = (pe + offset) % num_pe
            if self.alive[candidate] and self.joined[candidate]:
                return candidate
        return None

    # -- submission interception ------------------------------------------------
    def _join_pes(self, query: JoinQuery) -> set:
        """PEs a join touches for its data, accounting for replica failover."""
        catalog = self.system.catalog
        dead = self.dead_pes()
        pes: set = set()
        for name in (query.inner_relation, query.outer_relation):
            relation = catalog.relation(name)
            if dead and relation.backups:
                sites = failover_scan_sites(relation, dead)
                if sites is not None:
                    pes.update(pe_id for pe_id, _, _ in sites)
                    continue
            pes.update(relation.node_ids)
        return pes

    def _data_reachable(self, query: JoinQuery) -> bool:
        """True when every fragment the join scans has an alive copy."""
        dead = self.dead_pes()
        if not dead:
            return True
        catalog = self.system.catalog
        for name in (query.inner_relation, query.outer_relation):
            relation = catalog.relation(name)
            if not any(pe_id in dead for pe_id in relation.node_ids):
                continue
            if not relation.backups:
                return False
            if failover_scan_sites(relation, dead) is None:
                return False
        return True

    def on_submit(self, transaction: Transaction) -> bool:
        """Gate a routed transaction; False holds it for later resubmission.

        Join coordinators routed onto unusable PEs are remapped (cyclically)
        to the next usable one; joins whose *data* is unreachable (the home
        PE is down and, under replication, so is every backup copy), and
        OLTP transactions whose home PE is down, are held -- with replicas
        the reads fail over to surviving copies instead.
        """
        if isinstance(transaction, JoinQuery):
            if not self._data_reachable(transaction):
                self._hold(transaction)
                return False
            coordinator = transaction.coordinator_pe
            if not (self.alive[coordinator] and self.joined[coordinator]):
                remapped = self._next_eligible(coordinator)
                if remapped is None:
                    self._hold(transaction)
                    return False
                transaction.coordinator_pe = remapped
            return True
        home = transaction.home_pe
        if home is None:
            home = transaction.coordinator_pe
        if not self.alive[home]:
            self._hold(transaction)
            return False
        return True

    def _hold(self, transaction: Transaction) -> None:
        self.holds += 1
        self._held.append(transaction)

    def track(self, transaction: Transaction, process) -> None:
        """Register a root process (and, via inheritance, its descendants)."""
        if isinstance(transaction, JoinQuery):
            pes = self._join_pes(transaction)
            pes.add(transaction.coordinator_pe)
        else:
            home = transaction.home_pe
            if home is None:
                home = transaction.coordinator_pe
            pes = {home}
        record = _TxnRecord(transaction, pes)
        record.group[process] = None
        process._group = record.group
        self._records[transaction.txn_id] = record

    def note_plan(self, query: JoinQuery, processors: Sequence[int]) -> None:
        """Extend a join's PE set with its chosen join processors."""
        record = self._records.get(query.txn_id)
        if record is not None:
            record.pes.update(processors)

    def _prune_registry(self) -> None:
        done = [
            txn_id for txn_id, record in self._records.items() if not record.group
        ]
        for txn_id in done:
            del self._records[txn_id]

    # -- hardware speed control --------------------------------------------------
    def _apply_speed(self, pe_id: int) -> None:
        """Swap the PE's hardware configs to the current factors.

        Any active coalesced macro-event is split at the fault instant first
        (PR 6 invariant: batched == unbatched), so already-elapsed virtual
        time is accounted at the old speed and the remainder re-runs at the
        new one.
        """
        pe = self.system.pes[pe_id]
        cpu_batch = pe.cpu.resource._batch
        if cpu_batch is not None:
            cpu_batch.preempt()
        disk_batch = pe.disks._batch
        if disk_batch is not None:
            disk_batch.preempt()
        cpu_factor = self.cpu_factor[pe_id]
        base_cpu = self._base_cpu[pe_id]
        pe.cpu.config = (
            base_cpu
            if cpu_factor == 1.0
            else replace(base_cpu, mips=base_cpu.mips * cpu_factor)
        )
        disk_factor = self.disk_factor[pe_id]
        base_disk = self._base_disk[pe_id]
        # Mirrors SystemConfig.effective_disk: disk_factor scales *speed*,
        # so every per-page and access time is divided by it.
        pe.disks.config = (
            base_disk
            if disk_factor == 1.0
            else replace(
                base_disk,
                controller_service_time=base_disk.controller_service_time / disk_factor,
                transmission_time_per_page=base_disk.transmission_time_per_page / disk_factor,
                avg_access_time=base_disk.avg_access_time / disk_factor,
                prefetch_delay_per_page=base_disk.prefetch_delay_per_page / disk_factor,
            )
        )
        self._sync_status(pe_id)

    def _sync_status(self, pe_id: int) -> None:
        """Push availability/speed into the control node's view of the PE."""
        status = self.system.control_node.status_of(pe_id)
        status.available = self.alive[pe_id] and self.joined[pe_id]
        status.speed_factor = self.cpu_factor[pe_id]

    # -- event handlers -----------------------------------------------------------
    def _apply_degrade(self, event: FaultEvent) -> None:
        self.cpu_factor[event.pe] = event.factor
        self.disk_factor[event.pe] = event.factor
        self._apply_speed(event.pe)
        self._open_window("degrade", event.pe)

    def _apply_disk_fail(self, event: FaultEvent) -> None:
        self.disk_factor[event.pe] = event.factor
        self._apply_speed(event.pe)
        self._open_window("disk_fail", event.pe)

    def _apply_restore(self, event: FaultEvent) -> None:
        self.cpu_factor[event.pe] = 1.0
        self.disk_factor[event.pe] = 1.0
        self._apply_speed(event.pe)
        self._close_windows(("degrade", "disk_fail"), event.pe)

    def _surge_key(self, event: FaultEvent) -> Tuple[str, int]:
        if event.rack is not None:
            return ("rack", event.rack)
        return ("pe", event.pe)

    def _apply_surge_scale(self) -> None:
        """Push the product of active surges into the open-workload arrivals."""
        scale = 1.0
        for value in self._surges.values():
            scale *= value
        generator = getattr(self.system, "workload_generator", None)
        if generator is not None:
            generator.rate_scale = scale

    def _apply_pe_crash(self, event: FaultEvent) -> None:
        targets = self._targets(event)
        for pe_id in targets:
            self.alive[pe_id] = False
        self._step(self.env.now)
        for pe_id in targets:
            self._sync_status(pe_id)
            self._open_window("pe_crash", pe_id)
        if event.surge is not None:
            self._surges[self._surge_key(event)] = event.surge
            self._apply_surge_scale()
        target_set = set(targets)
        victims = sorted(
            txn_id
            for txn_id, record in self._records.items()
            if record.pes & target_set
        )
        restartable: List[Transaction] = []
        for txn_id in victims:
            record = self._records.pop(txn_id)
            self._kill_record(record)
            restartable.append(record.txn)
        if restartable:
            self.env.process(self._resubmit_later(restartable, event.restart_delay))
        # Permanent loss of a PE under replication: restore redundancy by
        # copying its fragments from the surviving backups to new hosts
        # (DynaHash-style rebalancing cost, charged to network + disks).
        if self.system.config.replication is not None:
            for pe_id in targets:
                if pe_id not in self._recover_pes:
                    self.env.process(self._re_replicate(pe_id))

    def _re_replicate(self, pe_id: int):
        """Ship the lost fragments' pages from their surviving copy."""
        catalog = self.system.catalog
        page_size = self.system.config.buffer.page_size_bytes
        for name in catalog.names:
            relation = catalog.relation(name)
            if not relation.backups or not relation.has_fragment_on(pe_id):
                continue
            backup = relation.backup_of(pe_id)
            if backup is None or not self.alive[backup]:
                continue  # no surviving copy -- nothing to re-replicate from
            target = self._next_eligible(backup)
            if target is None or target == backup:
                continue
            pages = relation.fragment_on(pe_id).pages
            if pages <= 0:
                continue
            yield from self.system.network.transfer_chain(
                [page_size] * pages, src=backup, dst=target
            )
            yield from self.system.pes[target].disks.write_sequential(pages)
            self.rebalanced_pages += pages

    def _kill_record(self, record: _TxnRecord) -> None:
        self.kills += 1
        # Deepest-first: descendants were inserted after their parents, and
        # closing a child's generator before its parent keeps the parent's
        # cleanup (finally blocks) from observing half-torn-down children.
        for process in reversed(list(record.group)):
            process.kill()
        txn_id = record.txn.txn_id
        owner = f"join-{txn_id}"
        for pe in self.system.pes:
            pe.locks.purge_txn(txn_id)
            pe.buffer.purge_owner(owner)

    def _resubmit_later(self, transactions: List[Transaction], delay: float):
        if delay > 0:
            yield self.env.timeout(delay)
        for transaction in transactions:
            self._resubmit(transaction)

    def _resubmit(self, transaction: Transaction) -> None:
        """Re-run a killed/held transaction, bypassing the arrival routers
        (their RNG streams must only advance once per original arrival)."""
        if not self.on_submit(transaction):
            return
        self.resubmits += 1
        system = self.system
        if isinstance(transaction, JoinQuery):
            process = self.env.process(system._run_join(transaction))
        else:
            process = self.env.process(system._run_oltp(transaction))
        self.track(transaction, process)

    def _apply_pe_recover(self, event: FaultEvent) -> None:
        targets = self._targets(event)
        for pe_id in targets:
            self.alive[pe_id] = True
        self._step(self.env.now)
        for pe_id in targets:
            self._sync_status(pe_id)
            self._close_windows(("pe_crash",), pe_id)
        if self._surges.pop(self._surge_key(event), None) is not None:
            self._apply_surge_scale()
        self._release_held()

    def _release_held(self) -> None:
        held = self._held
        self._held = []
        for transaction in held:
            self._resubmit(transaction)

    def _apply_pe_add(self, event: FaultEvent) -> None:
        window = self._open_window("pe_add", event.pe)
        self.env.process(self._rebalance_in(event, window))

    def _rebalance_in(self, event: FaultEvent, window: _AnomalyWindow):
        """Ship partitions onto the joining PE, then admit it to the pool."""
        donor = self._next_eligible(event.pe)
        if event.pages > 0 and donor is not None:
            page_size = self.system.config.buffer.page_size_bytes
            yield from self.system.network.transfer_chain(
                [page_size] * event.pages, src=donor, dst=event.pe
            )
            yield from self.system.pes[event.pe].disks.write_sequential(event.pages)
            self.rebalanced_pages += event.pages
        self.joined[event.pe] = True
        self._step(self.env.now)
        self._sync_status(event.pe)
        window.end = self.env.now
        self._release_held()

    def _apply_pe_remove(self, event: FaultEvent) -> None:
        pe_id = event.pe
        self.joined[pe_id] = False
        self._step(self.env.now)
        self._sync_status(pe_id)
        window = self._open_window("pe_remove", pe_id)
        self.env.process(self._rebalance_out(event, window))

    def _inflight_on(self, pe_id: int) -> bool:
        """True while any registered in-flight transaction touches ``pe_id``."""
        self._prune_registry()
        return any(pe_id in record.pes for record in self._records.values())

    def _rebalance_out(self, event: FaultEvent, window: _AnomalyWindow):
        """Drain the removed PE's partitions onto its cyclic successor.

        A *planned* drain (``drain=true``) waits for the PE's in-flight
        transactions first: the pool departure already stopped new work from
        being placed there, so polling until the registry clears gives a
        zero-abort removal.
        """
        if event.drain:
            while self._inflight_on(event.pe):
                yield self.env.timeout(0.25)
        receiver = self._next_eligible(event.pe)
        if event.pages > 0 and receiver is not None and self.alive[event.pe]:
            page_size = self.system.config.buffer.page_size_bytes
            yield from self.system.network.transfer_chain(
                [page_size] * event.pages, src=event.pe, dst=receiver
            )
            yield from self.system.pes[receiver].disks.write_sequential(event.pages)
            self.rebalanced_pages += event.pages
        window.end = self.env.now
