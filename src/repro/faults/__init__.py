"""Fault-injection & elasticity subsystem (PR 8).

Declarative plans (:mod:`repro.faults.plan`) travel the experiment platform
as the ``failures`` sweep axis; the runtime injector
(:mod:`repro.faults.injector`) interprets them inside a running simulation.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FailuresEntry,
    FaultEvent,
    canonical_failures,
    decode_failures,
    encode_failures,
    expand_events,
    failures_label,
    parse_fault,
)
from repro.faults.injector import FaultRuntime

__all__ = [
    "FAULT_KINDS",
    "FailuresEntry",
    "FaultEvent",
    "FaultRuntime",
    "canonical_failures",
    "decode_failures",
    "encode_failures",
    "expand_events",
    "failures_label",
    "parse_fault",
]
