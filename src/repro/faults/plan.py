"""Declarative fault & elasticity plans.

A fault plan is an ordered list of timed :class:`FaultEvent` records.  The
plan travels through the experiment platform as a *primitive encoding* (the
``failures`` axis of :class:`~repro.runner.spec.Sweep` /
:class:`~repro.runner.spec.PointSpec`): a tuple of event encodings, each a
tuple of ``(field, value)`` pairs -- picklable, JSON-round-trippable through
the distributed work queue, and hashable as part of the result-cache key.

Event kinds (:data:`FAULT_KINDS`):

``pe_crash``
    The PE fails entirely at ``time``: in-flight transactions touching it
    abort (their processes are killed, their lock/buffer state is purged on
    every PE) and are resubmitted after ``restart_delay`` -- or held until
    the data they scan is reachable again.  New work routed to the PE is
    redirected (joins/coordinators) or held (OLTP whose accounts live
    there).  ``duration`` is sugar for a matching ``pe_recover``.  With
    ``rack=R`` the crash is correlated: every PE of topology rack ``R``
    fails at once.  ``surge=F`` couples a cascading-overload arrival surge
    (open-workload rates scaled by ``F`` while the crash is outstanding).
    Under a replicated database (``SystemConfig.replication``) reads fail
    over to surviving copies instead of holding the queries.
``pe_recover``
    The PE returns with cold state; held work is resubmitted.
``degrade`` / ``restore``
    A straggler: the PE's CPU *and* disk speeds are multiplied by
    ``factor`` (< 1 slows it down) until restored -- the same effective-
    config machinery as the PR 7 ``NodeClass`` factors, applied mid-run.
    ``duration`` is sugar for a matching ``restore``.
``disk_fail``
    A disk-subsystem failure: only the disk speed is scaled by ``factor``
    (e.g. 0.25 for an array running in degraded/rebuild mode);
    ``restore`` ends it.  ``duration`` is sugar for the ``restore``.
``pe_add`` / ``pe_remove``
    Online membership of the *join-processor pool*.  A PE targeted by
    ``pe_add`` starts outside the pool and joins once its rebalancing
    window completes; ``pe_remove`` drains a PE from the pool immediately.
    Both pay an explicit repartitioning cost: ``pages`` pages are shipped
    over the (shared, contended) interconnect and written sequentially on
    the receiving PE before the membership change settles.  ``pe_remove``
    with ``drain=true`` is a *planned* drain: the PE stops receiving new
    work immediately but stays until its in-flight transactions complete
    (zero aborts), then rebalances out.

Zero-fault discipline: an empty (or ``None``) plan canonicalises to ``None``
and constructs *nothing* -- no injector process, no extra events, no changed
code paths -- so fault-free runs stay byte-identical to the committed
goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FailuresEntry",
    "canonical_failures",
    "decode_failures",
    "encode_failures",
    "expand_events",
    "failures_label",
    "parse_fault",
]

#: Recognised fault kinds (see the module docstring).
FAULT_KINDS = (
    "pe_crash",
    "pe_recover",
    "degrade",
    "restore",
    "disk_fail",
    "pe_add",
    "pe_remove",
)

#: CLI-friendly aliases accepted by :func:`parse_fault`.
_KIND_ALIASES = {
    "crash": "pe_crash",
    "recover": "pe_recover",
    "add": "pe_add",
    "remove": "pe_remove",
}

#: Kinds whose ``duration`` expands into an inverse event.
_DURATION_INVERSE = {
    "pe_crash": "pe_recover",
    "degrade": "restore",
    "disk_fail": "restore",
}

#: Short series-label tokens per kind.
_KIND_ABBREV = {
    "pe_crash": "crash",
    "pe_recover": "rec",
    "degrade": "deg",
    "restore": "res",
    "disk_fail": "dfail",
    "pe_add": "add",
    "pe_remove": "rm",
}

#: Encoded ``failures`` axis entry: a tuple of event encodings, each a tuple
#: of (field, value) pairs for :class:`FaultEvent` -- the same shape as the
#: hardware axes' :data:`~repro.runner.spec.NodeClassesEntry`.
FailuresEntry = Tuple[Tuple[Tuple[str, object], ...], ...]


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault/elasticity event of a plan."""

    time: float
    kind: str
    pe: int = 0
    #: Speed multiplier for ``degrade`` (CPU + disk) and ``disk_fail``
    #: (disk only); 1.0 is a no-op degradation (useful for overhead
    #: measurement), values < 1 slow the PE down.
    factor: float = 1.0
    #: Sugar: auto-derive the inverse event (recover/restore) this many
    #: seconds after ``time`` (crash/degrade/disk_fail only).
    duration: Optional[float] = None
    #: ``pe_crash`` only: delay before killed transactions are resubmitted.
    restart_delay: float = 0.5
    #: ``pe_add``/``pe_remove`` only: pages repartitioned over the network
    #: and rewritten before the membership change settles.
    pages: int = 256
    #: ``pe_crash``/``pe_recover`` only: correlated rack-scoped failure.
    #: When set, the event targets *every* PE of topology rack ``rack``
    #: (``pe`` is ignored) -- the PR 7 topology assigns PEs to racks.
    rack: Optional[int] = None
    #: ``pe_crash`` only: cascading-overload coupling.  While the crash is
    #: outstanding the arrival rate of the open workload is multiplied by
    #: this factor (> 1 models the retry/failover surge hitting survivors).
    surge: Optional[float] = None
    #: ``pe_remove`` only: planned drain.  The PE stops receiving new work
    #: immediately but the rebalancing (and pool departure) waits until all
    #: in-flight transactions touching it complete -- zero aborts.
    drain: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.pe < 0:
            raise ValueError(f"fault pe must be >= 0, got {self.pe}")
        if not self.factor > 0:
            raise ValueError(f"fault factor must be > 0, got {self.factor}")
        if self.duration is not None:
            if self.kind not in _DURATION_INVERSE:
                raise ValueError(
                    f"duration only applies to {sorted(_DURATION_INVERSE)}, "
                    f"not {self.kind!r}"
                )
            if self.duration <= 0:
                raise ValueError(f"fault duration must be > 0, got {self.duration}")
        if self.restart_delay < 0:
            raise ValueError(
                f"restart_delay must be >= 0, got {self.restart_delay}"
            )
        if self.pages < 0:
            raise ValueError(f"rebalance pages must be >= 0, got {self.pages}")
        if self.rack is not None:
            if self.kind not in ("pe_crash", "pe_recover"):
                raise ValueError(
                    f"rack only applies to pe_crash/pe_recover, not {self.kind!r}"
                )
            if self.rack < 0:
                raise ValueError(f"fault rack must be >= 0, got {self.rack}")
        if self.surge is not None:
            if self.kind != "pe_crash":
                raise ValueError(f"surge only applies to pe_crash, not {self.kind!r}")
            if not self.surge > 0:
                raise ValueError(f"fault surge must be > 0, got {self.surge}")
        if self.drain and self.kind != "pe_remove":
            raise ValueError(f"drain only applies to pe_remove, not {self.kind!r}")

    def encode(self) -> Tuple[Tuple[str, object], ...]:
        """Full primitive encoding (every field, declaration order)."""
        return tuple((f.name, getattr(self, f.name)) for f in fields(self))


def encode_failures(events: Sequence[FaultEvent]) -> Optional[FailuresEntry]:
    """Encode a sequence of events as a ``failures`` axis entry."""
    if not events:
        return None
    return tuple(event.encode() for event in events)


def decode_failures(entry) -> Tuple[FaultEvent, ...]:
    """Decode a ``failures`` axis entry back into :class:`FaultEvent` records."""
    if not entry:
        return ()
    return tuple(FaultEvent(**dict(pairs)) for pairs in entry)


def canonical_failures(entry) -> Optional[FailuresEntry]:
    """Normalise a ``failures`` entry; ``None`` when the plan is empty.

    Decoding validates the encoding (unknown fields, bad values) at
    declaration time; re-encoding fills every field, so partial encodings
    (e.g. from the CLI parser) collapse onto one canonical form -- same
    seeds, same cache keys, regardless of how the plan was written.
    """
    if entry is None:
        return None
    events = decode_failures(
        tuple(tuple((str(key), value) for key, value in pairs) for pairs in entry)
    )
    return encode_failures(events)


def expand_events(events: Sequence[FaultEvent]) -> List[FaultEvent]:
    """Injection order: declared events plus derived inverses, time-sorted.

    ``duration`` sugar expands into explicit recover/restore events.  The
    sort is stable on (time, declaration order, derived-last), so plans with
    coinciding instants apply deterministically.
    """
    keyed = []
    derived = []
    for index, event in enumerate(events):
        keyed.append((event.time, 0, index, event))
        if event.duration is not None:
            inverse = FaultEvent(
                time=event.time + event.duration,
                kind=_DURATION_INVERSE[event.kind],
                pe=event.pe,
                rack=event.rack if event.kind == "pe_crash" else None,
            )
            derived.append((inverse.time, 1, index, inverse))
    keyed.extend(derived)
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    return [item[3] for item in keyed]


def failures_label(entry: Optional[FailuresEntry]) -> str:
    """Short series-label token for a (canonical) ``failures`` entry."""
    if not entry:
        return "none"
    parts = []
    for pairs in entry:
        attrs = dict(pairs)
        kind = str(attrs.get("kind", "?"))
        abbrev = _KIND_ABBREV.get(kind, kind)
        time = attrs.get("time", 0)
        rack = attrs.get("rack")
        target = f"r{rack}" if rack is not None else attrs.get("pe", 0)
        parts.append(f"{abbrev}{target}@{float(time):g}")
    return "+".join(parts)


def _parse_flag(value: str) -> bool:
    """Parse a boolean fault option value (``true``/``false``/``1``/``0``)."""
    lowered = value.strip().lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise ValueError(value)


def parse_fault(text: str) -> Tuple[Tuple[str, object], ...]:
    """Parse a CLI fault token ``KIND@TIME[:pe=N:factor=F:duration=S...]``.

    Also accepts ``restart_delay=S``, ``pages=N``, ``rack=R``, ``surge=F``
    and ``drain=true`` options, plus the kind aliases ``crash``/``recover``/
    ``add``/``remove``.  Returns the event's canonical encoding; raises
    :class:`ValueError` naming the offending token on malformed input --
    unknown option names, unparsable or out-of-range values, and duplicated
    options are all rejected.
    """
    head, _, options = text.partition(":")
    kind, sep, at = head.partition("@")
    kind = _KIND_ALIASES.get(kind.strip(), kind.strip())
    if not sep:
        raise ValueError(
            f"malformed fault {text!r}: expected KIND@TIME[:pe=N:factor=F:duration=S]"
        )
    try:
        values: dict = {"time": float(at), "kind": kind}
    except ValueError:
        raise ValueError(f"malformed fault time in {text!r}: {at!r}") from None
    converters = {
        "pe": int,
        "factor": float,
        "duration": float,
        "restart_delay": float,
        "pages": int,
        "rack": int,
        "surge": float,
        "drain": _parse_flag,
    }
    if options:
        for option in options.split(":"):
            name, sep, value = option.partition("=")
            name = name.strip()
            if not sep or name not in converters:
                raise ValueError(
                    f"malformed fault option {option!r} in {text!r}; expected one "
                    f"of {sorted(converters)} as NAME=VALUE"
                )
            if name in values:
                raise ValueError(f"duplicate fault option {name!r} in {text!r}")
            try:
                values[name] = converters[name](value)
            except ValueError:
                raise ValueError(
                    f"malformed fault option value {value!r} for {name!r} in {text!r}"
                ) from None
    try:
        return FaultEvent(**values).encode()
    except ValueError as exc:
        raise ValueError(f"invalid fault {text!r}: {exc}") from None
