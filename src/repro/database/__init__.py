"""Database model: relations, fragments, indices, declustering, catalog."""

from repro.database.allocation import allocate_paper_database, decluster, split_evenly
from repro.database.catalog import Catalog
from repro.database.index import BTreeIndex
from repro.database.relation import Fragment, Relation

__all__ = [
    "allocate_paper_database",
    "decluster",
    "split_evenly",
    "Catalog",
    "BTreeIndex",
    "Fragment",
    "Relation",
]
