"""B+-tree index model.

Indices are not materialised; the model estimates the number of index page
accesses (and hence I/O and CPU work) for clustered and unclustered index
scans, which is what the workload processing layer needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["BTreeIndex"]


@dataclass(frozen=True)
class BTreeIndex:
    """A B+-tree index over one attribute of a relation.

    ``clustered`` indices store tuples in index order, so a range predicate of
    selectivity ``s`` touches ``ceil(s * data_pages)`` consecutive data pages.
    Unclustered indices require one data page access per matching tuple in the
    worst case (the model used by the paper's OLTP selects).
    """

    relation_name: str
    clustered: bool = True
    entries_per_page: int = 200  # key/RID pairs per index page
    num_entries: int = 0  # == tuples of the indexed relation

    @property
    def height(self) -> int:
        """Number of index levels (root .. leaf)."""
        if self.num_entries <= 1:
            return 1
        leaves = max(1, math.ceil(self.num_entries / self.entries_per_page))
        levels = 1
        nodes = leaves
        while nodes > 1:
            nodes = math.ceil(nodes / self.entries_per_page)
            levels += 1
        return levels

    @property
    def leaf_pages(self) -> int:
        """Number of leaf pages of the index."""
        return max(1, math.ceil(self.num_entries / self.entries_per_page))

    def index_pages_for_range(self, selectivity: float) -> int:
        """Index pages traversed for a range scan of the given selectivity."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity {selectivity} outside [0, 1]")
        matching_leaves = math.ceil(self.leaf_pages * selectivity) if selectivity else 0
        # Root-to-leaf descent plus the additional matching leaf pages.
        return self.height + max(0, matching_leaves - 1)

    def data_pages_for_range(self, selectivity: float, data_pages: int) -> int:
        """Data pages accessed by a range scan via this index."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity {selectivity} outside [0, 1]")
        matching = math.ceil(data_pages * selectivity) if selectivity else 0
        if self.clustered:
            return matching
        # Unclustered: one page access per matching tuple is the upper bound;
        # we bound it by the relation size times a small clustering factor.
        return matching

    def data_page_accesses_for_tuples(self, matching_tuples: int, data_pages: int) -> int:
        """Data page accesses when fetching ``matching_tuples`` via the index."""
        if matching_tuples <= 0:
            return 0
        if self.clustered:
            return min(data_pages, matching_tuples)
        return matching_tuples  # each tuple may live on a different page
