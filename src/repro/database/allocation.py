"""Declustering of relations across processing elements and disks.

The paper declusters each relation uniformly across a *disjoint* subset of the
PEs: relation B over 80 % of the nodes, relation A over the remaining 20 %
(§5.1).  Each PE holds the same number of tuples of "its" relation so that
scan work is statically balanced.  Fragments are spread round-robin over the
PE's disks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config.parameters import RelationConfig, SystemConfig
from repro.database.index import BTreeIndex
from repro.database.relation import Fragment, Relation

__all__ = ["decluster", "allocate_paper_database", "split_evenly"]


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` items into ``parts`` near-equal integer shares.

    The first ``total % parts`` shares get one extra item, so the shares sum
    exactly to ``total`` and differ by at most one.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, remainder = divmod(total, parts)
    return [base + (1 if index < remainder else 0) for index in range(parts)]


def decluster(
    config: RelationConfig,
    pe_ids: Sequence[int],
    disks_per_pe: int = 1,
) -> Relation:
    """Horizontally decluster a relation across the given PEs.

    Tuples are divided as evenly as possible; each fragment is assigned all
    the PE's disks round-robin (the disk subsystem stripes fragment pages).
    """
    if not pe_ids:
        raise ValueError(f"relation {config.name} needs at least one PE")
    relation = Relation(
        config=config,
        index=BTreeIndex(
            relation_name=config.name,
            clustered=config.index_type.startswith("clustered"),
            num_entries=config.num_tuples,
        ),
    )
    shares = split_evenly(config.num_tuples, len(pe_ids))
    disk_ids = tuple(range(max(1, disks_per_pe)))
    for pe_id, share in zip(pe_ids, shares):
        relation.add_fragment(
            Fragment(
                relation_name=config.name,
                pe_id=pe_id,
                num_tuples=share,
                blocking_factor=config.blocking_factor,
                disk_ids=disk_ids,
            )
        )
    return relation


def allocate_paper_database(config: SystemConfig) -> dict[str, Relation]:
    """Create the paper's database allocation for a given system size.

    Relation A occupies the first 20 % of the PEs, relation B the remaining
    80 %; the two sets are disjoint.  Additional per-node OLTP relations
    ("ACCT") are created when an OLTP workload is configured; they are local
    to their node (affinity-based routing accesses only local data).
    """
    relations: dict[str, Relation] = {}
    relations["A"] = decluster(
        config.relation_a, config.a_node_ids, config.disk.disks_per_pe
    )
    relations["B"] = decluster(
        config.relation_b, config.b_node_ids, config.disk.disks_per_pe
    )
    if config.oltp is not None:
        oltp_nodes = (
            config.a_node_ids if config.oltp.placement.upper() == "A" else config.b_node_ids
        )
        # One account-style relation per OLTP node, disjoint from A and B so
        # that joins and OLTP transactions never conflict on locks (§5.3).
        account = RelationConfig(
            name="ACCT",
            num_tuples=100_000 * len(oltp_nodes),
            tuple_size_bytes=100,
            blocking_factor=80,
            index_type="unclustered-btree",
            declustering_fraction=len(oltp_nodes) / config.num_pe,
        )
        relations["ACCT"] = decluster(account, oltp_nodes, config.disk.disks_per_pe)
    return relations
