"""Declustering of relations across processing elements and disks.

The paper declusters each relation uniformly across a *disjoint* subset of the
PEs: relation B over 80 % of the nodes, relation A over the remaining 20 %
(§5.1).  Each PE holds the same number of tuples of "its" relation so that
scan work is statically balanced.  Fragments are spread round-robin over the
PE's disks.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence, Tuple

from repro.config.parameters import REPLICATION_POLICIES, RelationConfig, SystemConfig
from repro.database.index import BTreeIndex
from repro.database.relation import Fragment, Relation

__all__ = [
    "decluster",
    "allocate_paper_database",
    "split_evenly",
    "assign_replicas",
    "failover_scan_sites",
    "REPLICATION_POLICIES",
]


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` items into ``parts`` near-equal integer shares.

    The first ``total % parts`` shares get one extra item, so the shares sum
    exactly to ``total`` and differ by at most one.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, remainder = divmod(total, parts)
    return [base + (1 if index < remainder else 0) for index in range(parts)]


def decluster(
    config: RelationConfig,
    pe_ids: Sequence[int],
    disks_per_pe: int = 1,
) -> Relation:
    """Horizontally decluster a relation across the given PEs.

    Tuples are divided as evenly as possible; each fragment is assigned all
    the PE's disks round-robin (the disk subsystem stripes fragment pages).
    """
    if not pe_ids:
        raise ValueError(f"relation {config.name} needs at least one PE")
    relation = Relation(
        config=config,
        index=BTreeIndex(
            relation_name=config.name,
            clustered=config.index_type.startswith("clustered"),
            num_entries=config.num_tuples,
        ),
    )
    shares = split_evenly(config.num_tuples, len(pe_ids))
    disk_ids = tuple(range(max(1, disks_per_pe)))
    for pe_id, share in zip(pe_ids, shares):
        relation.add_fragment(
            Fragment(
                relation_name=config.name,
                pe_id=pe_id,
                num_tuples=share,
                blocking_factor=config.blocking_factor,
                disk_ids=disk_ids,
            )
        )
    return relation


def assign_replicas(relation: Relation, policy: str) -> None:
    """Assign a backup PE to every fragment of ``relation``.

    ``chained`` implements chained declustering (Hsiao/DeWitt): the backup of
    the fragment on ring position ``i`` lives on ring position ``i + 1``, so a
    single failure lets the read load spread across all survivors.  ``mirror``
    pairs adjacent ring positions (even ``i`` with ``i + 1``, the last node of
    an odd-sized ring wrapping to position 0): a failure doubles the partner's
    load.  Rings with a single PE keep no backup (nowhere disjoint to put it).
    """
    if policy not in REPLICATION_POLICIES:
        raise ValueError(
            f"unknown replication policy {policy!r}; expected one of {REPLICATION_POLICIES}"
        )
    ring = relation.node_ids
    size = len(ring)
    if size < 2:
        relation.replication = policy
        relation.backups = {}
        return
    backups: dict[int, int] = {}
    if policy == "chained":
        for index, pe_id in enumerate(ring):
            backups[pe_id] = ring[(index + 1) % size]
    else:  # mirror
        for index, pe_id in enumerate(ring):
            if index % 2 == 0:
                partner = ring[index + 1] if index + 1 < size else ring[0]
            else:
                partner = ring[index - 1]
            backups[pe_id] = partner
    relation.replication = policy
    relation.backups = backups


def failover_scan_sites(
    relation: Relation,
    dead: AbstractSet[int],
) -> Optional[List[Tuple[int, Fragment, float]]]:
    """Scan sites ``(pe_id, fragment, fraction)`` given a set of dead PEs.

    With every ring PE alive the primaries serve their own fragments in full
    (byte-identical to the single-copy plan).  Under chained declustering with
    exactly one dead ring PE the balanced split is used: the dead PE's
    fragment is read entirely at its backup, and every other fragment at ring
    offset ``j`` from the failure is split ``j/(n-1)`` at its primary and
    ``(n-1-j)/(n-1)`` at its backup, giving each survivor ``n/(n-1)`` load.
    Any other failure pattern falls back to whole-fragment failover (backup if
    the primary is dead).  Returns ``None`` when some fragment has no alive
    copy -- the data is unreachable and the query must be held.
    """
    ring = relation.node_ids
    dead_in_ring = [pe_id for pe_id in ring if pe_id in dead]
    if not dead_in_ring:
        return [(pe_id, relation.fragment_on(pe_id), 1.0) for pe_id in ring]
    size = len(ring)
    if relation.replication == "chained" and len(dead_in_ring) == 1 and size >= 2:
        failed_index = ring.index(dead_in_ring[0])
        sites: List[Tuple[int, Fragment, float]] = []
        for offset in range(size):
            position = (failed_index + offset) % size
            fragment = relation.fragment_on(ring[position])
            if offset == 0:
                sites.append((ring[(position + 1) % size], fragment, 1.0))
                continue
            primary_share = offset / (size - 1)
            if primary_share > 0.0:
                sites.append((ring[position], fragment, primary_share))
            if primary_share < 1.0:
                sites.append((ring[(position + 1) % size], fragment, 1.0 - primary_share))
        return sites
    sites = []
    for pe_id in ring:
        fragment = relation.fragment_on(pe_id)
        if pe_id not in dead:
            sites.append((pe_id, fragment, 1.0))
            continue
        backup = relation.backup_of(pe_id)
        if backup is None or backup in dead:
            return None
        sites.append((backup, fragment, 1.0))
    return sites


def allocate_paper_database(config: SystemConfig) -> dict[str, Relation]:
    """Create the paper's database allocation for a given system size.

    Relation A occupies the first 20 % of the PEs, relation B the remaining
    80 %; the two sets are disjoint.  Additional per-node OLTP relations
    ("ACCT") are created when an OLTP workload is configured; they are local
    to their node (affinity-based routing accesses only local data).
    """
    relations: dict[str, Relation] = {}
    relations["A"] = decluster(
        config.relation_a, config.a_node_ids, config.disk.disks_per_pe
    )
    relations["B"] = decluster(
        config.relation_b, config.b_node_ids, config.disk.disks_per_pe
    )
    if config.oltp is not None:
        oltp_nodes = (
            config.a_node_ids if config.oltp.placement.upper() == "A" else config.b_node_ids
        )
        # One account-style relation per OLTP node, disjoint from A and B so
        # that joins and OLTP transactions never conflict on locks (§5.3).
        account = RelationConfig(
            name="ACCT",
            num_tuples=100_000 * len(oltp_nodes),
            tuple_size_bytes=100,
            blocking_factor=80,
            index_type="unclustered-btree",
            declustering_fraction=len(oltp_nodes) / config.num_pe,
        )
        relations["ACCT"] = decluster(account, oltp_nodes, config.disk.disks_per_pe)
    if config.replication is not None:
        for relation in relations.values():
            assign_replicas(relation, config.replication)
    return relations
