"""Runtime representation of relations and their horizontal fragments.

The database is modelled as a set of partitions (paper §4): a partition
represents a relation fragment living on one processing element and a set of
that PE's disks.  Tuples are not materialised individually -- the simulator
works with tuple/page counts, which is all the cost model needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config.parameters import RelationConfig
from repro.database.index import BTreeIndex

__all__ = ["Fragment", "Relation"]


@dataclass(frozen=True)
class Fragment:
    """A horizontal fragment of a relation stored on a single PE."""

    relation_name: str
    pe_id: int
    num_tuples: int
    blocking_factor: int
    disk_ids: tuple[int, ...] = ()

    @property
    def pages(self) -> int:
        """Number of data pages occupied by this fragment."""
        return math.ceil(self.num_tuples / self.blocking_factor)

    def matching_tuples(self, selectivity: float) -> int:
        """Tuples of this fragment matching a predicate of given selectivity."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity {selectivity} outside [0, 1]")
        return round(self.num_tuples * selectivity)

    def matching_pages(self, selectivity: float) -> int:
        """Pages that must be read through a clustered index for ``selectivity``."""
        matching = self.matching_tuples(selectivity)
        if matching == 0:
            return 0
        return math.ceil(matching / self.blocking_factor)


@dataclass
class Relation:
    """A relation together with its physical design and fragmentation."""

    config: RelationConfig
    fragments: Dict[int, Fragment] = field(default_factory=dict)
    index: Optional[BTreeIndex] = None
    # Replica placement: ``replication`` names the policy ("mirror" or
    # "chained", ``None`` = single copy) and ``backups`` maps each primary
    # PE to the PE holding the full backup copy of its fragment.
    replication: Optional[str] = None
    backups: Dict[int, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def num_tuples(self) -> int:
        return self.config.num_tuples

    @property
    def pages(self) -> int:
        return self.config.pages

    @property
    def node_ids(self) -> List[int]:
        """PE identifiers holding fragments of this relation (sorted)."""
        return sorted(self.fragments)

    def fragment_on(self, pe_id: int) -> Fragment:
        """Fragment stored on ``pe_id`` (raises KeyError if none)."""
        return self.fragments[pe_id]

    def has_fragment_on(self, pe_id: int) -> bool:
        return pe_id in self.fragments

    def total_fragment_tuples(self) -> int:
        """Sum of tuples over all fragments (== num_tuples up to rounding)."""
        return sum(frag.num_tuples for frag in self.fragments.values())

    def matching_tuples(self, selectivity: float) -> int:
        """Total tuples matching a predicate of the given selectivity."""
        return round(self.num_tuples * selectivity)

    def matching_pages(self, selectivity: float) -> int:
        """Total pages holding matching tuples under clustered storage."""
        matching = self.matching_tuples(selectivity)
        if matching == 0:
            return 0
        return math.ceil(matching / self.config.blocking_factor)

    def backup_of(self, pe_id: int) -> Optional[int]:
        """PE holding the backup copy of ``pe_id``'s fragment (None if none)."""
        return self.backups.get(pe_id)

    def add_fragment(self, fragment: Fragment) -> None:
        """Register a fragment (one per PE)."""
        if fragment.relation_name != self.name:
            raise ValueError(
                f"fragment of {fragment.relation_name} added to relation {self.name}"
            )
        if fragment.pe_id in self.fragments:
            raise ValueError(f"PE {fragment.pe_id} already holds a fragment of {self.name}")
        self.fragments[fragment.pe_id] = fragment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relation({self.name}, {self.num_tuples} tuples, "
            f"{len(self.fragments)} fragments)"
        )
