"""System catalog: the set of relations known to the simulated DBMS."""

from __future__ import annotations

from typing import Dict, List

from repro.config.parameters import SystemConfig
from repro.database.allocation import allocate_paper_database
from repro.database.relation import Fragment, Relation

__all__ = ["Catalog"]


class Catalog:
    """Named collection of relations with convenience lookups.

    The catalog is purely static during a simulation run: the paper stresses
    that the database allocation on disk cannot be changed per query, which is
    exactly why load balancing must act on the dynamically redistributable
    intermediate results instead.
    """

    def __init__(self, relations: Dict[str, Relation] | None = None):
        self._relations: Dict[str, Relation] = dict(relations or {})

    @classmethod
    def from_config(cls, config: SystemConfig) -> "Catalog":
        """Build the paper's standard database allocation for ``config``."""
        return cls(allocate_paper_database(config))

    # -- lookups -----------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """Relation by name (raises KeyError with a helpful message)."""
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(sorted(self._relations)) or "<none>"
            raise KeyError(f"unknown relation {name!r}; catalog holds: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    @property
    def names(self) -> List[str]:
        return sorted(self._relations)

    def add(self, relation: Relation) -> None:
        """Register a new relation (name must be unused)."""
        if relation.name in self._relations:
            raise ValueError(f"relation {relation.name!r} already registered")
        self._relations[relation.name] = relation

    def fragments_on(self, pe_id: int) -> List[Fragment]:
        """All fragments stored on a given PE (any relation)."""
        found = []
        for relation in self._relations.values():
            if relation.has_fragment_on(pe_id):
                found.append(relation.fragment_on(pe_id))
        return found

    def nodes_of(self, name: str) -> List[int]:
        """PE identifiers holding fragments of the named relation."""
        return self.relation(name).node_ids
