"""Policies for selecting the join processors (paper §3.2).

Three selection strategies are supported, combinable with any policy for the
degree of join parallelism:

* RANDOM -- state-oblivious uniform choice;
* LUC    -- Least Utilized CPUs;
* LUM    -- Least Utilized Memory (most free buffer pages).

LUC and LUM apply the adaptive correction at the control node so that queries
arriving between two reports do not pile onto the same processors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

from repro.scheduling.control_node import ControlNode

__all__ = [
    "PlacementPolicy",
    "RandomPlacement",
    "LeastUtilizedCpuPlacement",
    "LeastUtilizedMemoryPlacement",
]


class PlacementPolicy(Protocol):
    """Interface: choose ``degree`` processors out of the eligible set."""

    name: str

    def select(
        self,
        degree: int,
        eligible: Sequence[int],
        control: Optional[ControlNode],
        pages_per_processor: int = 0,
    ) -> List[int]:  # pragma: no cover - protocol
        ...


def _clamp_degree(degree: int, eligible: Sequence[int]) -> int:
    return max(1, min(degree, len(eligible)))


@dataclass
class RandomPlacement:
    """Select the join processors uniformly at random (static policy)."""

    seed: int = 0
    name: str = "RANDOM"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, degree, eligible, control, pages_per_processor=0) -> List[int]:
        degree = _clamp_degree(degree, eligible)
        return sorted(self._rng.sample(list(eligible), degree))


@dataclass
class LeastUtilizedCpuPlacement:
    """LUC: select the processors with the lowest reported CPU utilisation."""

    name: str = "LUC"

    def select(self, degree, eligible, control, pages_per_processor=0) -> List[int]:
        degree = _clamp_degree(degree, eligible)
        if control is None:
            # All utilisations are equal (unknown): break the tie by PE index,
            # independent of the order the eligible set was handed over in.
            return sorted(eligible)[:degree]
        eligible_set = set(eligible)
        ranked = [
            status.pe_id
            for status in control.nodes_by_cpu()
            if status.pe_id in eligible_set
        ]
        chosen = ranked[:degree]
        control.note_join_assignment(chosen, pages_per_processor)
        return sorted(chosen)


@dataclass
class LeastUtilizedMemoryPlacement:
    """LUM: select the processors with the most available main memory."""

    name: str = "LUM"

    def select(self, degree, eligible, control, pages_per_processor=0) -> List[int]:
        degree = _clamp_degree(degree, eligible)
        if control is None:
            # Equal (unknown) free memory everywhere: deterministic PE-index
            # tie-break, as for LUC above.
            return sorted(eligible)[:degree]
        eligible_set = set(eligible)
        ranked = [
            status.pe_id
            for status in control.avail_memory()
            if status.pe_id in eligible_set
        ]
        chosen = ranked[:degree]
        control.note_join_assignment(chosen, pages_per_processor)
        return sorted(chosen)
