"""Integrated load balancing strategies (paper §3.3).

All three strategies use the control node's AVAIL-MEMORY array to determine
the number of join processors *and* to select them (LUM order) in a single
step; they differ in how they break ties between I/O-avoiding selections and
in whether the CPU utilisation is taken into account:

* MIN-IO        -- the minimal number of processors avoiding temporary file
                   I/O (or minimising it when avoidance is impossible);
* MIN-IO-SUOPT  -- among the I/O-avoiding choices, the one closest to
                   psu-opt (avoids unnecessarily restricting parallelism);
* OPT-IO-CPU    -- like the previous ones but never exceeding pmu-cpu, the
                   CPU-utilisation-reduced degree of formula (3.2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.scheduling.control_node import NodeStatus
from repro.scheduling.strategy import JoinPlan, LoadBalancingStrategy, SchedulingContext
from repro.workload.query import JoinQuery

__all__ = ["MinIOStrategy", "MinIOSuOptStrategy", "OptIOCpuStrategy"]


def _avail_memory(context: SchedulingContext) -> List[NodeStatus]:
    """AVAIL-MEMORY restricted to the eligible processors."""
    eligible = set(context.eligible)
    if context.control is not None:
        return [
            status for status in context.control.avail_memory() if status.pe_id in eligible
        ]
    # Without a control node (single-user tests) every buffer is empty.
    config = context.cost_model.config
    statuses = [
        NodeStatus(
            pe_id=pe,
            free_memory_pages=config.effective_buffer_pages(pe),
            cpu_capacity=config.cpu_factor(pe),
        )
        for pe in sorted(eligible)
    ]
    # Keep the AVAIL-MEMORY invariant (most free memory first) even when the
    # per-PE pools differ.
    statuses.sort(key=lambda status: (-status.free_memory_pages, status.pe_id))
    return statuses


def _overflow_pages(avail: Sequence[NodeStatus], k: int, needed_pages: int) -> int:
    """Total overflow (pages that do not fit in memory) when using the first
    ``k`` entries of AVAIL-MEMORY for a hash table of ``needed_pages`` pages."""
    share = needed_pages / k
    overflow = 0.0
    for status in avail[:k]:
        overflow += max(0.0, share - status.free_memory_pages)
    return math.ceil(overflow)


def _io_avoiding_degrees(
    avail: Sequence[NodeStatus], needed_pages: int, max_degree: Optional[int] = None
) -> List[int]:
    """All degrees k for which AVAIL-MEMORY[k].free * k > needed_pages (3.3)."""
    limit = len(avail) if max_degree is None else min(len(avail), max_degree)
    degrees = []
    for k in range(1, limit + 1):
        if avail[k - 1].free_memory_pages * k > needed_pages:
            degrees.append(k)
    return degrees


def _min_overflow_degree(
    avail: Sequence[NodeStatus],
    needed_pages: int,
    max_degree: Optional[int] = None,
    prefer_larger: bool = False,
) -> int:
    """Degree minimising the amount of overflow I/O (footnote 5 of the paper).

    ``prefer_larger`` controls the tie-break: MIN-IO keeps the smallest such
    degree (least CPU overhead), OPT-IO-CPU and MIN-IO-SUOPT prefer the
    largest one within their bound to exploit I/O and CPU parallelism.
    """
    limit = len(avail) if max_degree is None else min(len(avail), max_degree)
    best_k = 1
    best_overflow = None
    for k in range(1, limit + 1):
        overflow = _overflow_pages(avail, k, needed_pages)
        better = best_overflow is None or overflow < best_overflow
        tie = best_overflow is not None and overflow == best_overflow and prefer_larger
        if better or tie:
            best_overflow = overflow
            best_k = k
    return best_k


def _build_plan(
    avail: Sequence[NodeStatus],
    degree: int,
    needed_pages: int,
    context: SchedulingContext,
    name: str,
) -> JoinPlan:
    chosen = [status.pe_id for status in avail[:degree]]
    pages_per_processor = max(1, math.ceil(needed_pages / degree))
    overflow = _overflow_pages(avail, degree, needed_pages)
    if context.control is not None:
        context.control.note_join_assignment(chosen, pages_per_processor)
    return JoinPlan(
        degree=len(chosen),
        processors=tuple(sorted(chosen)),
        pages_per_processor=pages_per_processor,
        expected_overflow_pages=overflow,
        strategy_name=name,
    )


class MinIOStrategy(LoadBalancingStrategy):
    """MIN-IO: minimal number of join processors avoiding temporary file I/O."""

    name = "MIN-IO"

    def plan_join(self, query: JoinQuery, context: SchedulingContext) -> JoinPlan:
        profile = context.cost_model.profile(query)
        needed = profile.hash_table_pages
        avail = _avail_memory(context)
        io_avoiding = _io_avoiding_degrees(avail, needed)
        degree = io_avoiding[0] if io_avoiding else _min_overflow_degree(avail, needed)
        return _build_plan(avail, degree, needed, context, self.name)


class MinIOSuOptStrategy(LoadBalancingStrategy):
    """MIN-IO-SUOPT: the I/O-avoiding degree closest to psu-opt."""

    name = "MIN-IO-SUOPT"

    def plan_join(self, query: JoinQuery, context: SchedulingContext) -> JoinPlan:
        profile = context.cost_model.profile(query)
        needed = profile.hash_table_pages
        avail = _avail_memory(context)
        io_avoiding = _io_avoiding_degrees(avail, needed)
        if io_avoiding:
            target = context.cost_model.psu_opt(query)
            degree = min(io_avoiding, key=lambda k: (abs(k - target), k))
        else:
            degree = _min_overflow_degree(avail, needed, prefer_larger=True)
        return _build_plan(avail, degree, needed, context, self.name)


class OptIOCpuStrategy(LoadBalancingStrategy):
    """OPT-IO-CPU: bound the degree by pmu-cpu, then avoid/minimise I/O.

    Under light CPU load the bound equals psu-opt, so the strategy behaves
    like MIN-IO-SUOPT; under high CPU load the bound shrinks and the strategy
    picks, within the bound, the selection with the least temporary I/O
    (preferring the largest such degree to exploit CPU parallelism).
    """

    name = "OPT-IO-CPU"

    def plan_join(self, query: JoinQuery, context: SchedulingContext) -> JoinPlan:
        profile = context.cost_model.profile(query)
        needed = profile.hash_table_pages
        avail = _avail_memory(context)
        utilization = (
            context.control.average_effective_cpu_utilization()
            if context.control is not None
            else 0.0
        )
        max_degree = min(len(avail), context.cost_model.pmu_cpu(query, utilization))
        io_avoiding = _io_avoiding_degrees(avail, needed, max_degree=max_degree)
        if io_avoiding:
            # Maximal I/O-avoiding degree within the CPU bound.
            degree = io_avoiding[-1]
        else:
            # "The maximal number of processors avoiding (or minimising)
            # temporary I/O is selected" -- prefer the largest minimiser.
            degree = _min_overflow_degree(
                avail, needed, max_degree=max_degree, prefer_larger=True
            )
        return _build_plan(avail, degree, needed, context, self.name)
