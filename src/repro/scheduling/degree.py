"""Policies for determining the degree of join parallelism (paper §3.1).

Two static schemes fix the number of join processors at "compile time";
the dynamic scheme adapts it to the current CPU utilisation reported by the
control node (formula 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.scheduling.control_node import ControlNode
from repro.scheduling.cost_model import CostModel
from repro.workload.query import JoinQuery

__all__ = [
    "DegreePolicy",
    "FixedDegree",
    "StaticSuOptDegree",
    "StaticNoIODegree",
    "DynamicCpuDegree",
]


class DegreePolicy(Protocol):
    """Interface: choose the number of join processors for a query."""

    name: str

    def degree(
        self, query: JoinQuery, cost_model: CostModel, control: Optional[ControlNode]
    ) -> int:  # pragma: no cover - protocol
        ...


@dataclass
class FixedDegree:
    """A constant degree of parallelism (useful for sweeps and Fig. 1)."""

    value: int
    name: str = "fixed"

    def degree(self, query, cost_model, control) -> int:
        return max(1, min(cost_model.config.num_pe, self.value))


@dataclass
class StaticSuOptDegree:
    """Use the single-user optimum psu-opt regardless of the system state."""

    name: str = "psu_opt"

    def degree(self, query, cost_model, control) -> int:
        return min(cost_model.config.num_pe, cost_model.psu_opt(query))


@dataclass
class StaticNoIODegree:
    """Use psu-noIO: just enough processors to avoid temporary file I/O
    in single-user mode (formula 3.1)."""

    name: str = "psu_noIO"

    def degree(self, query, cost_model, control) -> int:
        return cost_model.psu_no_io(query)


@dataclass
class DynamicCpuDegree:
    """Formula (3.2): reduce psu-opt according to the current CPU utilisation."""

    name: str = "pmu_cpu"

    def degree(self, query, cost_model, control) -> int:
        # Capacity-weighted on heterogeneous hardware; identical to the plain
        # average (same code path) on uniform systems.
        utilization = (
            control.average_effective_cpu_utilization() if control is not None else 0.0
        )
        return cost_model.pmu_cpu(query, utilization)
