"""Dynamic multi-resource load balancing: the paper's core contribution."""

from repro.scheduling.control_node import ControlNode, NodeStatus
from repro.scheduling.cost_model import CostModel, JoinProfile
from repro.scheduling.degree import (
    DynamicCpuDegree,
    FixedDegree,
    StaticNoIODegree,
    StaticSuOptDegree,
)
from repro.scheduling.integrated import MinIOStrategy, MinIOSuOptStrategy, OptIOCpuStrategy
from repro.scheduling.placement import (
    LeastUtilizedCpuPlacement,
    LeastUtilizedMemoryPlacement,
    RandomPlacement,
)
from repro.scheduling.strategy import (
    STRATEGIES,
    IsolatedStrategy,
    JoinPlan,
    LoadBalancingStrategy,
    SchedulingContext,
    make_strategy,
    strategy_names,
)

__all__ = [
    "ControlNode",
    "NodeStatus",
    "CostModel",
    "JoinProfile",
    "DynamicCpuDegree",
    "FixedDegree",
    "StaticNoIODegree",
    "StaticSuOptDegree",
    "MinIOStrategy",
    "MinIOSuOptStrategy",
    "OptIOCpuStrategy",
    "LeastUtilizedCpuPlacement",
    "LeastUtilizedMemoryPlacement",
    "RandomPlacement",
    "STRATEGIES",
    "IsolatedStrategy",
    "JoinPlan",
    "LoadBalancingStrategy",
    "SchedulingContext",
    "make_strategy",
    "strategy_names",
]
