"""The designated control node for dynamic load balancing.

Dynamic policies base their decisions on the current CPU utilisation and
memory availability.  A designated control node is periodically informed by
the processors about their current utilisation; during the execution of a
query, information on the current CPU and memory utilisation is requested
from the control node (paper §3).

Two details from the paper matter for correctness of the policies:

* the information is only as fresh as the last report (staleness is a real
  effect the adaptive corrections below compensate for);
* when join processors are selected, the control node's copy of their CPU
  utilisation (LUC) and available memory (LUM) is *adapted immediately* so
  that closely spaced queries do not all pick the same nodes (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config.parameters import ControlConfig
from repro.sim import Environment

__all__ = ["NodeStatus", "ControlNode"]


@dataclass
class NodeStatus:
    """The control node's (possibly stale, possibly adapted) view of one PE."""

    pe_id: int
    cpu_utilization: float = 0.0
    free_memory_pages: int = 0
    disk_utilization: float = 0.0
    # Relative CPU speed of the PE (node-class mips factor, 1.0 = default
    # hardware).  Lets the rankings below compare *absolute* headroom across
    # heterogeneous nodes instead of raw utilisation percentages.
    cpu_capacity: float = 1.0
    # Failure awareness (PR 8): dead / not-yet-joined PEs are excluded from
    # the rankings; degraded stragglers are down-weighted by their current
    # speed factor.  Maintained by the fault injector; always (True, 1.0)
    # in fault-free runs.
    available: bool = True
    speed_factor: float = 1.0


class ControlNode:
    """Collects periodic utilisation reports and serves load information."""

    def __init__(self, env: Environment, pes: Sequence, config: ControlConfig):
        self.env = env
        self.pes = list(pes)
        self.config = config
        self._status: Dict[int, NodeStatus] = {
            pe.pe_id: NodeStatus(
                pe_id=pe.pe_id,
                cpu_utilization=0.0,
                free_memory_pages=pe.buffer.free_pages,
                disk_utilization=0.0,
                cpu_capacity=getattr(pe, "cpu_factor", 1.0),
            )
            for pe in self.pes
        }
        # Uniform systems keep the historical utilisation-based orderings and
        # plain averages so their float expressions stay bit-identical.
        self._heterogeneous = any(
            status.cpu_capacity != 1.0 for status in self._status.values()
        )
        # Fault awareness is off (historical code paths, bit-identical) until
        # an injector attaches itself.
        self._faults = None
        self.reports = 0
        self._running = False

    def attach_faults(self, faults) -> None:
        """Enable failure-aware rankings, driven by the fault injector."""
        self._faults = faults

    # -- reporting -----------------------------------------------------------
    def start(self) -> None:
        """Start the periodic reporting process."""
        if self._running:
            return
        self._running = True
        self.env.process(self._report_loop())

    def _report_loop(self):
        while True:
            yield self.env.timeout(self.config.report_interval)
            self.collect_reports()

    def collect_reports(self) -> None:
        """Poll every PE once (also callable directly, e.g. from tests)."""
        for pe in self.pes:
            pe.close_report_window()
            status = self._status[pe.pe_id]
            status.cpu_utilization = pe.recent_cpu_utilization
            status.free_memory_pages = pe.buffer.free_pages
            status.disk_utilization = pe.recent_disk_utilization
        self.reports += 1

    # -- queries by the load balancing strategies ---------------------------------
    def status_of(self, pe_id: int) -> NodeStatus:
        return self._status[pe_id]

    def _ranked_statuses(self):
        """Statuses the strategies may consider: all of them historically,
        only the available ones once a fault injector is attached."""
        if self._faults is None:
            return self._status.values()
        return [status for status in self._status.values() if status.available]

    def average_cpu_utilization(self) -> float:
        """Current average CPU utilisation over all (available) processors
        (for 3.2)."""
        statuses = self._ranked_statuses()
        if not statuses:
            return 0.0
        return sum(status.cpu_utilization for status in statuses) / len(statuses)

    def average_effective_cpu_utilization(self) -> float:
        """Capacity-weighted CPU utilisation: the fraction of the system's
        aggregate MIPS currently busy.  Equals :meth:`average_cpu_utilization`
        on uniform, fault-free hardware (and takes that exact code path
        there); with faults active, degraded stragglers contribute their
        reduced capacity."""
        if not self._heterogeneous and self._faults is None:
            return self.average_cpu_utilization()
        busy = 0.0
        capacity = 0.0
        for status in self._ranked_statuses():
            effective = status.cpu_capacity * status.speed_factor
            busy += status.cpu_utilization * effective
            capacity += effective
        return busy / capacity if capacity else 0.0

    def average_disk_utilization(self) -> float:
        statuses = self._ranked_statuses()
        if not statuses:
            return 0.0
        return sum(status.disk_utilization for status in statuses) / len(statuses)

    def average_memory_utilization(self) -> float:
        total = 0.0
        for pe in self.pes:
            total += pe.buffer.utilization()
        return total / len(self.pes) if self.pes else 0.0

    def avail_memory(self) -> List[NodeStatus]:
        """The AVAIL-MEMORY array: all nodes sorted by free memory, descending.

        ``avail_memory()[0]`` is the processor with the most free memory, as
        in the paper's data structure AVAIL-MEMORY[1..n].
        """
        return sorted(
            self._ranked_statuses(),
            key=lambda status: (-status.free_memory_pages, status.pe_id),
        )

    def nodes_by_cpu(self) -> List[NodeStatus]:
        """All usable nodes sorted for LUC: least CPU load first, PE index
        breaking ties.  On heterogeneous hardware "least loaded" means the
        most *absolute* idle MIPS -- a fast node at 50 % has more headroom
        than a slow node at 40 % -- so the ranking normalises by capacity;
        with faults active, dead PEs are excluded and stragglers are
        down-weighted by their current speed factor."""
        if self._heterogeneous or self._faults is not None:
            return sorted(
                self._ranked_statuses(),
                key=lambda status: (
                    -(1.0 - status.cpu_utilization)
                    * status.cpu_capacity
                    * status.speed_factor,
                    status.pe_id,
                ),
            )
        return sorted(
            self._status.values(),
            key=lambda status: (status.cpu_utilization, status.pe_id),
        )

    # -- adaptive corrections -------------------------------------------------------
    def note_join_assignment(
        self, pe_ids: Sequence[int], pages_per_processor: int = 0
    ) -> None:
        """Adapt the control data after assigning a join to ``pe_ids``.

        The CPU utilisation of the selected processors is artificially
        increased and their available memory reduced by the expected working
        space, so that the *next* query (arriving before the next report)
        does not select exactly the same nodes (§3.2).
        """
        for pe_id in pe_ids:
            status = self._status.get(pe_id)
            if status is None:
                continue
            status.cpu_utilization = min(
                1.0, status.cpu_utilization + self.config.adaptive_cpu_increment
            )
            if pages_per_processor > 0:
                status.free_memory_pages = max(
                    0, status.free_memory_pages - pages_per_processor
                )
