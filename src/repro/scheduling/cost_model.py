"""Analytic cost model for parallel hash join processing.

The paper derives the single-user optimal degree of join parallelism
``psu-opt`` from an analytic response-time formula in the style of [34, 17]
(see §2): response time improves with more join processors while the work per
processor shrinks faster than the startup/termination and communication
overhead grows.  This module provides that formula, the derived optima and
the two other degrees the load balancing strategies need:

* ``psu_opt``   -- the single-user optimum (minimiser of the formula);
* ``psu_noIO``  -- formula (3.1): the minimal number of processors whose
  aggregate memory avoids temporary file I/O in single-user mode;
* ``pmu_cpu``   -- formula (3.2): the CPU-utilisation-reduced multi-user
  degree.

The constants come from the Fig. 4 instruction cost table; a single
calibration factor on the per-processor startup cost reproduces the paper's
reported optima (psu-opt ≈ 10 / 30 / 70 for 0.1 / 1 / 5 % scan selectivity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.config.parameters import SystemConfig
from repro.workload.query import JoinQuery

__all__ = ["JoinProfile", "CostModel"]


@dataclass(frozen=True)
class JoinProfile:
    """Static characteristics of one join query needed by the cost model."""

    inner_tuples: int  # tuples produced by the selection on the inner relation
    outer_tuples: int  # tuples produced by the selection on the outer relation
    result_tuples: int
    tuple_size_bytes: int
    inner_pages: int  # pages of the inner scan output
    outer_pages: int
    fudge_factor: float

    @property
    def hash_table_pages(self) -> int:
        """Pages needed to keep the inner relation's hash table memory-resident."""
        return max(1, math.ceil(self.inner_pages * self.fudge_factor))


class CostModel:
    """Analytic response-time model and derived degrees of parallelism."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.costs = config.costs
        self.control = config.control
        # psu-opt / psu-noIO are pure functions of the cost-relevant query
        # fields (config is frozen), but evaluating psu-opt scans ~2n degrees
        # through the response-time formula.  Queries of one workload class
        # share these fields, so the per-run cache collapses that to one
        # evaluation per class.
        self._psu_opt_cache: dict = {}
        self._psu_no_io_cache: dict = {}
        # Heterogeneous systems cost CPU work against the mean effective MIPS
        # and memory against the capacity vector; uniform systems keep the
        # exact historical scalar expressions (self._effective_mips *is*
        # config.cpu.mips there, so every float matches bit for bit).
        self._heterogeneous = config.heterogeneous
        self._effective_mips = (
            config.cpu.mips * config.mean_mips_factor
            if self._heterogeneous
            else config.cpu.mips
        )
        if self._heterogeneous:
            self._buffer_capacity_vector = tuple(
                sorted(
                    (config.effective_buffer_pages(pe) for pe in range(config.num_pe)),
                    reverse=True,
                )
            )
        else:
            self._buffer_capacity_vector = None

    @staticmethod
    def _query_key(query: JoinQuery) -> tuple:
        return (
            query.inner_relation,
            query.outer_relation,
            query.scan_selectivity,
            query.result_fraction_of_inner,
            query.fudge_factor,
        )

    # -- query profile -------------------------------------------------------
    def profile(self, query: JoinQuery) -> JoinProfile:
        """Derive the static join profile for a query from the database config."""
        inner_cfg = (
            self.config.relation_a
            if query.inner_relation == self.config.relation_a.name
            else self.config.relation_b
        )
        outer_cfg = (
            self.config.relation_b
            if query.outer_relation == self.config.relation_b.name
            else self.config.relation_a
        )
        inner_tuples = round(inner_cfg.num_tuples * query.scan_selectivity)
        outer_tuples = round(outer_cfg.num_tuples * query.scan_selectivity)
        result_tuples = round(inner_tuples * query.result_fraction_of_inner)
        return JoinProfile(
            inner_tuples=inner_tuples,
            outer_tuples=outer_tuples,
            result_tuples=result_tuples,
            tuple_size_bytes=inner_cfg.tuple_size_bytes,
            inner_pages=inner_cfg.pages_for_tuples(inner_tuples),
            outer_pages=outer_cfg.pages_for_tuples(outer_tuples),
            fudge_factor=query.fudge_factor,
        )

    # -- formula (3.1): psu-noIO ------------------------------------------------
    def psu_no_io(self, query: JoinQuery) -> int:
        """Minimal degree of parallelism avoiding temporary file I/O.

        psu-noIO = MIN(n, ceil(bi * F / m)) with bi the inner scan output in
        pages, F the fudge factor and m the buffer size per processor.  On
        heterogeneous hardware "m per processor" becomes the capacity vector:
        the result is the smallest k whose k largest buffer pools hold the
        hash table (identical to the scalar formula when all pools match).
        """
        key = self._query_key(query)
        cached = self._psu_no_io_cache.get(key)
        if cached is None:
            profile = self.profile(query)
            needed = profile.inner_pages * profile.fudge_factor
            if self._buffer_capacity_vector is not None:
                cached = self.config.num_pe
                held = 0.0
                for index, pages in enumerate(self._buffer_capacity_vector):
                    held += pages
                    if held >= needed:
                        cached = index + 1
                        break
                cached = max(1, cached)
            else:
                memory_per_pe = self.config.buffer.buffer_pages
                cached = max(
                    1, min(self.config.num_pe, math.ceil(needed / memory_per_pe))
                )
            self._psu_no_io_cache[key] = cached
        return cached

    # -- single-user response time R(p) ------------------------------------------
    def estimate_response_time(self, query: JoinQuery, degree: int) -> float:
        """Estimated single-user response time with ``degree`` join processors.

        The formula mirrors the structure of the simulated execution: a
        parallel scan/redistribution phase whose duration is independent of
        the degree of join parallelism, a per-processor join phase (CPU and,
        if memory does not suffice, temporary file I/O) and a per-processor
        startup/termination overhead at the coordinator.
        """
        if degree < 1:
            raise ValueError("degree must be >= 1")
        profile = self.profile(query)
        mips = self._effective_mips * 1e6
        network = self.config.network
        costs = self.costs

        # -- coordinator: BOT/EOT plus per-join-processor control messages.
        per_jp_instructions = (
            (costs.send_message + costs.receive_message)
            * 2
            * self.control.cost_model_startup_factor
        )
        coordinator_seconds = (
            costs.initiate_transaction
            + costs.terminate_transaction
            + degree * per_jp_instructions
        ) / mips

        # -- scan phase (independent of the degree of join parallelism).
        scan_nodes_inner = max(1, self.config.a_node_count)
        scan_nodes_outer = max(1, self.config.b_node_count)
        inner_pages_per_node = math.ceil(profile.inner_pages / scan_nodes_inner)
        outer_pages_per_node = math.ceil(profile.outer_pages / scan_nodes_outer)
        prefetch = max(1, self.config.disk.prefetch_pages)

        def scan_seconds(pages_per_node: int, tuples_per_node: int) -> float:
            ios = math.ceil(pages_per_node / prefetch)
            io_time = ios * self.config.disk.sequential_io_time(
                min(prefetch, max(1, pages_per_node))
            )
            cpu = (
                ios * costs.io_operation
                + tuples_per_node * costs.read_tuple
                + tuples_per_node * costs.hash_tuple  # partitioning hash
            )
            # Redistribution: send the scan output to the join processors.
            out_bytes = tuples_per_node * profile.tuple_size_bytes
            packets = network.packets_for(out_bytes) if tuples_per_node else 0
            cpu += packets * (costs.send_message + costs.copy_message_packet)
            return max(io_time, cpu / mips)

        scan_phase = max(
            scan_seconds(
                inner_pages_per_node,
                math.ceil(profile.inner_tuples / scan_nodes_inner),
            ),
            scan_seconds(
                outer_pages_per_node,
                math.ceil(profile.outer_tuples / scan_nodes_outer),
            ),
        )

        # -- join phase: work of one join processor (1/degree of the input).
        inner_share = profile.inner_tuples / degree
        outer_share = profile.outer_tuples / degree
        result_share = profile.result_tuples / degree
        in_bytes = (inner_share + outer_share) * profile.tuple_size_bytes
        in_packets = network.packets_for(int(in_bytes)) if in_bytes else 0
        out_bytes = result_share * profile.tuple_size_bytes
        out_packets = network.packets_for(int(out_bytes)) if out_bytes else 0

        join_cpu = (
            in_packets * (costs.receive_message + costs.copy_message_packet)
            + inner_share * (costs.hash_tuple + costs.insert_into_hash_table)
            + outer_share * (costs.hash_tuple + costs.probe_hash_table)
            + result_share * costs.write_tuple_to_output
            + out_packets * (costs.send_message + costs.copy_message_packet)
        )

        # Temporary file I/O if the aggregate memory of `degree` processors
        # cannot hold the inner hash table (single-user: full buffers free).
        pages_needed = profile.hash_table_pages / degree
        pages_available = self.config.buffer.buffer_pages
        overflow_inner = max(0.0, pages_needed - pages_available)
        overflow_fraction = overflow_inner / pages_needed if pages_needed else 0.0
        outer_pages_share = profile.outer_pages / degree
        overflow_pages = overflow_inner * 2 + overflow_fraction * outer_pages_share * 2
        overflow_ios = math.ceil(overflow_pages / prefetch) if overflow_pages else 0
        join_io = overflow_ios * self.config.disk.sequential_io_time(prefetch)
        join_cpu += overflow_ios * costs.io_operation

        join_phase = max(join_io, join_cpu / mips)

        return coordinator_seconds + scan_phase + join_phase

    # -- psu-opt -------------------------------------------------------------------
    def psu_opt(self, query: JoinQuery, max_degree: Optional[int] = None) -> int:
        """Single-user optimal degree of join parallelism.

        The optimum is found by evaluating the response-time formula over a
        range of degrees.  It may exceed the number of processors in the
        system (the paper reports psu-opt = 70 > n = 60 for 5 % selectivity);
        callers cap it at ``n`` when allocating processors.
        """
        limit = max_degree if max_degree is not None else max(2 * self.config.num_pe, 128)
        key = (*self._query_key(query), limit)
        cached = self._psu_opt_cache.get(key)
        if cached is None:
            best_degree = 1
            best_time = float("inf")
            for degree in range(1, limit + 1):
                estimate = self.estimate_response_time(query, degree)
                if estimate < best_time - 1e-12:
                    best_time = estimate
                    best_degree = degree
            cached = self._psu_opt_cache[key] = best_degree
        return cached

    # -- formula (3.2): pmu-cpu -------------------------------------------------------
    def pmu_cpu(self, query: JoinQuery, cpu_utilization: float) -> int:
        """CPU-utilisation-adapted multi-user degree of parallelism.

        pmu-cpu = psu-opt * (1 - ucpu^3): reductions mostly kick in above
        50 % utilisation, where the parallelisation overhead is no longer
        affordable.
        """
        utilization = min(1.0, max(0.0, cpu_utilization))
        exponent = self.control.cpu_reduction_exponent
        susceptible = self.psu_opt(query)
        reduced = susceptible * (1.0 - utilization**exponent)
        return max(1, min(self.config.num_pe, round(reduced)))
