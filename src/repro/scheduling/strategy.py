"""Load balancing strategies: the paper's core abstraction.

A strategy answers one question per join query, at query run time:

    *how many* join processors should be used, and *which* ones?

Isolated strategies answer the two sub-questions in two consecutive steps
(a degree policy followed by a placement policy); integrated strategies
answer both in a single step using the control node's memory availability
array (and, for OPT-IO-CPU, the CPU utilisation as well).

The :data:`STRATEGIES` registry maps the names used throughout the paper's
figures (e.g. ``"pmu_cpu+LUM"``, ``"MIN-IO-SUOPT"``) to factory functions, so
experiments and the CLI can select strategies by name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.scheduling.control_node import ControlNode
from repro.scheduling.cost_model import CostModel
from repro.scheduling.degree import (
    DegreePolicy,
    DynamicCpuDegree,
    StaticNoIODegree,
    StaticSuOptDegree,
)
from repro.scheduling.placement import (
    LeastUtilizedCpuPlacement,
    LeastUtilizedMemoryPlacement,
    PlacementPolicy,
    RandomPlacement,
)
from repro.workload.query import JoinQuery

__all__ = [
    "JoinPlan",
    "SchedulingContext",
    "LoadBalancingStrategy",
    "IsolatedStrategy",
    "STRATEGIES",
    "make_strategy",
    "strategy_names",
]


@dataclass(frozen=True)
class JoinPlan:
    """The scheduling decision for one join query."""

    degree: int
    processors: tuple[int, ...]
    pages_per_processor: int  # expected working-space demand per join processor
    expected_overflow_pages: int = 0
    strategy_name: str = ""

    def __post_init__(self) -> None:
        if self.degree != len(self.processors):
            raise ValueError("degree must equal the number of selected processors")
        if self.degree < 1:
            raise ValueError("a join needs at least one processor")


@dataclass
class SchedulingContext:
    """Everything a strategy may consult when planning a join."""

    cost_model: CostModel
    control: Optional[ControlNode] = None
    eligible_processors: Optional[Sequence[int]] = None

    @property
    def num_pe(self) -> int:
        return self.cost_model.config.num_pe

    @property
    def eligible(self) -> List[int]:
        if self.eligible_processors is not None:
            return list(self.eligible_processors)
        # Any processor may act as join processor (paper §2, footnote 3).
        return list(range(self.num_pe))


class LoadBalancingStrategy:
    """Base class: subclasses implement :meth:`plan_join`."""

    name = "abstract"

    def plan_join(self, query: JoinQuery, context: SchedulingContext) -> JoinPlan:
        raise NotImplementedError

    # Helper shared by all strategies.
    @staticmethod
    def _pages_per_processor(query: JoinQuery, context: SchedulingContext, degree: int) -> int:
        profile = context.cost_model.profile(query)
        return max(1, math.ceil(profile.hash_table_pages / max(1, degree)))

    def describe(self) -> str:
        return self.name


@dataclass
class IsolatedStrategy(LoadBalancingStrategy):
    """Two-step strategy: a degree policy followed by a placement policy."""

    degree_policy: DegreePolicy
    placement_policy: PlacementPolicy
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self.name = self.label or f"{self.degree_policy.name}+{self.placement_policy.name}"

    def plan_join(self, query: JoinQuery, context: SchedulingContext) -> JoinPlan:
        eligible = context.eligible
        degree = self.degree_policy.degree(query, context.cost_model, context.control)
        degree = max(1, min(degree, len(eligible)))
        pages = self._pages_per_processor(query, context, degree)
        processors = self.placement_policy.select(
            degree, eligible, context.control, pages_per_processor=pages
        )
        return JoinPlan(
            degree=len(processors),
            processors=tuple(processors),
            pages_per_processor=pages,
            strategy_name=self.name,
        )


# -- integrated strategies (defined in integrated.py, imported lazily to avoid
#    a circular import in type checking tools) ----------------------------------


def _registry() -> Dict[str, Callable[..., LoadBalancingStrategy]]:
    from repro.scheduling.integrated import (
        MinIOStrategy,
        MinIOSuOptStrategy,
        OptIOCpuStrategy,
    )

    def isolated(degree_policy_factory, placement_factory):
        def build(seed: int = 0) -> LoadBalancingStrategy:
            placement = placement_factory(seed) if placement_factory is RandomPlacement else placement_factory()
            return IsolatedStrategy(degree_policy_factory(), placement)

        return build

    return {
        # Static degree, three placements (Fig. 5).
        "psu_opt+RANDOM": isolated(StaticSuOptDegree, RandomPlacement),
        "psu_opt+LUC": isolated(StaticSuOptDegree, LeastUtilizedCpuPlacement),
        "psu_opt+LUM": isolated(StaticSuOptDegree, LeastUtilizedMemoryPlacement),
        "psu_noIO+RANDOM": isolated(StaticNoIODegree, RandomPlacement),
        "psu_noIO+LUC": isolated(StaticNoIODegree, LeastUtilizedCpuPlacement),
        "psu_noIO+LUM": isolated(StaticNoIODegree, LeastUtilizedMemoryPlacement),
        # Dynamic degree (Fig. 6).
        "pmu_cpu+RANDOM": isolated(DynamicCpuDegree, RandomPlacement),
        "pmu_cpu+LUC": isolated(DynamicCpuDegree, LeastUtilizedCpuPlacement),
        "pmu_cpu+LUM": isolated(DynamicCpuDegree, LeastUtilizedMemoryPlacement),
        # Integrated strategies (Fig. 6, 7, 9).
        "MIN-IO": lambda seed=0: MinIOStrategy(),
        "MIN-IO-SUOPT": lambda seed=0: MinIOSuOptStrategy(),
        "OPT-IO-CPU": lambda seed=0: OptIOCpuStrategy(),
    }


#: Lazily built registry of strategy factories keyed by paper name.
STRATEGIES: Dict[str, Callable[..., LoadBalancingStrategy]] = {}


def _ensure_registry() -> None:
    if not STRATEGIES:
        STRATEGIES.update(_registry())


def strategy_names() -> List[str]:
    """All registered strategy names, in a stable order."""
    _ensure_registry()
    return list(STRATEGIES)


def make_strategy(name: str, seed: int = 0) -> LoadBalancingStrategy:
    """Instantiate a strategy by its paper name (e.g. ``"OPT-IO-CPU"``)."""
    _ensure_registry()
    try:
        factory = STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise KeyError(f"unknown strategy {name!r}; known strategies: {known}") from None
    return factory(seed=seed)
