"""Partially Preemptible Hash Join (PPHJ) at a single join processor.

PPHJ [23] is the memory-adaptive local join method used by the paper: both
join inputs are split into ``p = ceil(sqrt(F * b_i))`` partitions; at least
``p`` pages of working space are required to start, and as many inner (A)
partitions as possible are kept memory-resident.  If memory is taken away by
higher-priority transactions, memory-resident partitions are written to disk;
arriving outer (B) tuples whose partition is not resident are spooled to a
temporary partition and joined later (deferred join).

A join subquery is only started once its minimal working space is available,
otherwise it waits in the buffer manager's FCFS memory queue (paper §4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from repro.config.parameters import InstructionCosts
from repro.engine.buffer import BufferManager, WorkingSpace
from repro.hardware.cpu import PRIORITY_QUERY
from repro.hardware.network import Network

__all__ = ["JoinProcessorShare", "PPHJExecutor"]


@dataclass(frozen=True)
class JoinProcessorShare:
    """The share of a parallel hash join assigned to one join processor."""

    inner_tuples: int
    outer_tuples: int
    result_tuples: int
    tuple_size_bytes: int
    blocking_factor: int
    fudge_factor: float

    @property
    def inner_pages(self) -> int:
        return max(1, math.ceil(self.inner_tuples / self.blocking_factor)) if self.inner_tuples else 0

    @property
    def outer_pages(self) -> int:
        return max(1, math.ceil(self.outer_tuples / self.blocking_factor)) if self.outer_tuples else 0

    @property
    def hash_table_pages(self) -> int:
        """Pages needed to keep this processor's inner partitions resident."""
        return max(1, math.ceil(self.inner_pages * self.fudge_factor))

    @property
    def num_partitions(self) -> int:
        """PPHJ partition count p = ceil(sqrt(F * b_i)) (at least 1)."""
        return max(1, math.ceil(math.sqrt(self.fudge_factor * max(1, self.inner_pages))))

    @property
    def min_pages(self) -> int:
        """Minimal working space: one page per partition."""
        return self.num_partitions


class PPHJExecutor:
    """Executes one join processor's share of a parallel hash join."""

    def __init__(
        self,
        pe,
        share: JoinProcessorShare,
        network: Network,
        costs: InstructionCosts,
        desired_pages: Optional[int] = None,
        priority: int = PRIORITY_QUERY,
        owner: str = "join",
        inner_sources: int = 1,
        outer_sources: int = 1,
        coordinator_pe: Optional[int] = None,
    ):
        self.pe = pe
        self.env = pe.env
        self.share = share
        self.network = network
        self.costs = costs
        self.priority = priority
        self.owner = owner
        self.inner_sources = max(1, inner_sources)
        self.outer_sources = max(1, outer_sources)
        # Destination of the result stream (for tiered-topology wire costs).
        self.coordinator_pe = coordinator_pe
        self.desired_pages = (
            desired_pages if desired_pages is not None else share.hash_table_pages
        )
        # Execution state / statistics.
        self.working_space: Optional[WorkingSpace] = None
        self.memory_wait_time = 0.0
        self.granted_pages = 0
        self.stolen_pages = 0
        self.overflow_inner_pages = 0
        self.overflow_outer_pages = 0
        self.temp_pages_written = 0
        self.temp_pages_read = 0
        self.result_bytes_sent = 0

    # -- memory management -------------------------------------------------------
    def _on_steal(self, pages: int) -> None:
        """Buffer manager callback: memory was taken by higher-priority work."""
        self.stolen_pages += pages

    def acquire_memory(self) -> Generator:
        """Wait in the FCFS memory queue until the minimal space is available."""
        start = self.env.now
        buffer: BufferManager = self.pe.buffer
        desired = min(self.desired_pages, buffer.total_pages)
        minimum = min(self.share.min_pages, buffer.total_pages, desired)
        self.working_space = yield buffer.reserve(
            self.owner,
            desired_pages=desired,
            min_pages=minimum,
            steal_callback=self._on_steal,
        )
        self.memory_wait_time = self.env.now - start
        self.granted_pages = self.working_space.pages

    def release_memory(self) -> None:
        if self.working_space is not None:
            self.pe.buffer.release(self.working_space)

    def _resident_fraction(self) -> float:
        """Fraction of the inner hash table currently memory-resident."""
        if self.share.hash_table_pages == 0:
            return 1.0
        pages = self.working_space.pages if self.working_space is not None else 0
        return max(0.0, min(1.0, pages / self.share.hash_table_pages))

    def _receive_instructions(self, nbytes: int, sources: int) -> float:
        """CPU cost of receiving ``nbytes`` redistributed from ``sources`` nodes.

        The receive overhead is paid per logical message (the tuples from one
        producer arrive as one stream), the copy overhead per arriving packet.
        Since every producer sends at least one partially filled packet, a
        higher number of data processors increases the receive-side cost --
        part of the redistribution overhead the paper attributes to large
        systems (§5.2, footnote 8).
        """
        if nbytes <= 0:
            return 0.0
        message_packets = self.network.packets_for(nbytes)
        per_source = max(1, math.ceil(nbytes / max(1, sources)))
        arriving_packets = max(
            message_packets, sources * self.network.packets_for(per_source)
        )
        return (
            message_packets * self.costs.receive_message
            + arriving_packets * self.costs.copy_message_packet
        )

    # -- build phase -----------------------------------------------------------------
    def build_phase(self) -> Generator:
        """Receive the inner relation share and build the (partial) hash table."""
        share = self.share
        costs = self.costs
        pe = self.pe
        priority = self.priority
        if share.inner_tuples > 0:
            receive_bytes = share.inner_tuples * share.tuple_size_bytes
            cpu = self._receive_instructions(receive_bytes, self.inner_sources)
            cpu += share.inner_tuples * (costs.hash_tuple + costs.insert_into_hash_table)
            yield from pe.cpu.consume(cpu, priority=priority)

        resident = self._resident_fraction()
        self.overflow_inner_pages = math.ceil((1.0 - resident) * share.inner_pages)
        if self.overflow_inner_pages > 0:
            prefetch = pe.disks.prefetch
            ios = math.ceil(self.overflow_inner_pages / prefetch)
            yield from pe.cpu.consume(ios * costs.io_operation, priority=priority)
            yield from pe.disks.write_sequential(self.overflow_inner_pages)
            self.temp_pages_written += self.overflow_inner_pages
            pe.temp_pages_written += self.overflow_inner_pages

    # -- probe phase --------------------------------------------------------------------
    def probe_phase(self, result_destination=None) -> Generator:
        """Receive the outer share, probe resident partitions, spool the rest,
        perform the deferred join for disk-resident partitions and ship the
        result to the coordinator."""
        share = self.share
        costs = self.costs
        pe = self.pe
        priority = self.priority
        resident = self._resident_fraction()

        if share.outer_tuples > 0:
            receive_bytes = share.outer_tuples * share.tuple_size_bytes
            cpu = self._receive_instructions(receive_bytes, self.outer_sources)
            cpu += share.outer_tuples * costs.hash_tuple
            resident_tuples = round(resident * share.outer_tuples)
            spooled_tuples = share.outer_tuples - resident_tuples
            cpu += resident_tuples * costs.probe_hash_table
            cpu += spooled_tuples * costs.write_tuple_to_output
            yield from pe.cpu.consume(cpu, priority=priority)

            self.overflow_outer_pages = (
                math.ceil(spooled_tuples / share.blocking_factor) if spooled_tuples else 0
            )
            if self.overflow_outer_pages > 0:
                prefetch = pe.disks.prefetch
                ios = math.ceil(self.overflow_outer_pages / prefetch)
                yield from pe.cpu.consume(ios * costs.io_operation, priority=priority)
                yield from pe.disks.write_sequential(self.overflow_outer_pages)
                self.temp_pages_written += self.overflow_outer_pages
                pe.temp_pages_written += self.overflow_outer_pages

        # Deferred join of disk-resident partitions.
        deferred_pages = self.overflow_inner_pages + self.overflow_outer_pages
        if deferred_pages > 0:
            deferred_inner_tuples = round((1.0 - resident) * share.inner_tuples)
            deferred_outer_tuples = round((1.0 - resident) * share.outer_tuples)
            prefetch = pe.disks.prefetch
            ios = math.ceil(deferred_pages / prefetch)
            cpu = ios * costs.io_operation
            cpu += deferred_inner_tuples * (
                costs.read_tuple + costs.hash_tuple + costs.insert_into_hash_table
            )
            cpu += deferred_outer_tuples * (costs.read_tuple + costs.probe_hash_table)
            io_process = self.env.process(pe.disks.read_sequential(deferred_pages))
            cpu_process = self.env.process(pe.cpu.consume(cpu, priority=priority))
            yield self.env.all_of([io_process, cpu_process])
            self.temp_pages_read += deferred_pages
            pe.temp_pages_read += deferred_pages

        # Produce and ship the result tuples.
        if share.result_tuples > 0:
            result_bytes = share.result_tuples * share.tuple_size_bytes
            cpu = share.result_tuples * costs.write_tuple_to_output
            cpu += self.network.send_instructions(result_bytes)
            yield from pe.cpu.consume(cpu, priority=priority)
            yield from self.network.transfer(
                result_bytes, src=pe.pe_id, dst=self.coordinator_pe
            )
            self.result_bytes_sent = result_bytes

        pe.joins_processed += 1

    # -- combined statistics -----------------------------------------------------------------
    @property
    def overflow_pages(self) -> int:
        """Total temporary-file pages written by this join processor."""
        return self.overflow_inner_pages + self.overflow_outer_pages
