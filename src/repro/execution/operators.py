"""Relational operators: scans and the PAROP redistribution helper.

The query processing system models basic relational operators (sort, scan,
join) as well as a parallelisation meta-operator (PAROP) used for dynamically
redistributing data among processors and for merging multiple inputs
(paper §4).  Operators are expressed as *work profiles* plus simulation
processes that charge the CPU, disk and network of the PE they run on.

To keep the event count manageable, CPU work is charged in aggregated
requests (per scan chunk / per message) rather than per tuple; the total
demand is identical to a per-tuple accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.config.parameters import InstructionCosts
from repro.database.relation import Fragment, Relation
from repro.hardware.cpu import PRIORITY_QUERY
from repro.hardware.network import Network

__all__ = ["ScanWork", "scan_fragment", "redistribution_packets", "parop_merge_instructions"]


@dataclass(frozen=True)
class ScanWork:
    """Static work profile of one scan subquery on one fragment."""

    fragment: Fragment
    matching_tuples: int
    data_pages: int
    index_pages: int
    output_bytes: int

    @property
    def total_pages(self) -> int:
        return self.data_pages + self.index_pages


def plan_scan(
    relation: Relation,
    pe_id: int,
    selectivity: float,
    tuple_size_bytes: int,
    fragment: Optional[Fragment] = None,
    fraction: float = 1.0,
) -> ScanWork:
    """Compute the work profile of a clustered-index scan on one fragment.

    ``fragment``/``fraction`` support replica failover: a site may scan an
    explicit fragment copy (possibly hosted on a PE other than the fragment's
    primary) and only a fraction of it, as under chained declustering's
    balanced post-failure split.
    """
    if fragment is None:
        fragment = relation.fragment_on(pe_id)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"scan fraction {fraction} outside (0, 1]")
    index_pages = relation.index.height if relation.index is not None else 0
    if fraction == 1.0:
        matching = fragment.matching_tuples(selectivity)
        data_pages = fragment.matching_pages(selectivity)
    else:
        matching = round(fragment.matching_tuples(selectivity) * fraction)
        data_pages = (
            math.ceil(matching / fragment.blocking_factor) if matching > 0 else 0
        )
    return ScanWork(
        fragment=fragment,
        matching_tuples=matching,
        data_pages=data_pages,
        index_pages=index_pages,
        output_bytes=matching * tuple_size_bytes,
    )


def redistribution_packets(
    network: Network, output_bytes: int, destinations: int
) -> int:
    """Packets needed to redistribute ``output_bytes`` over ``destinations``.

    Splitting a scan output over many join processors fragments it into more,
    partially filled packets: every destination needs at least one packet.
    This is one of the reasons a higher degree of join parallelism increases
    the communication overhead (paper §2).
    """
    if output_bytes <= 0 or destinations <= 0:
        return 0
    per_destination = math.ceil(output_bytes / destinations)
    return destinations * network.packets_for(per_destination)


def parop_merge_instructions(
    costs: InstructionCosts, network: Network, result_bytes: int, sources: int
) -> float:
    """CPU instructions at the coordinator for merging ``sources`` result streams."""
    if result_bytes <= 0:
        return 0.0
    packets = redistribution_packets(network, result_bytes, max(1, sources))
    return packets * (costs.receive_message + costs.copy_message_packet)


def scan_fragment(
    pe,
    work: ScanWork,
    network: Network,
    costs: InstructionCosts,
    destinations: int,
    priority: int = PRIORITY_QUERY,
    destination_ids: Optional[Sequence[int]] = None,
) -> Generator:
    """Simulation process: execute one scan subquery on ``pe``.

    Reads the matching pages through the clustered index (sequential,
    prefetched), pays the per-tuple CPU costs (read + partitioning hash) and
    the send-side communication costs for redistributing the output to
    ``destinations`` join processors.  The wire transfer itself is waited on
    once for the node's whole output; when ``destination_ids`` are known, a
    tiered topology charges the slowest (src, dst) tier of the fan-out.
    """
    env = pe.env
    prefetch = pe.disks.prefetch

    pages = work.total_pages
    if pages > 0:
        physical_ios = math.ceil(pages / prefetch)
        # I/O and CPU overlap: run the disk reads and the CPU work as two
        # concurrent sub-processes and wait for both (dataflow pipelining).
        io_process = env.process(pe.disks.read_sequential(pages))
        cpu_instructions = (
            physical_ios * costs.io_operation
            + work.matching_tuples * (costs.read_tuple + costs.hash_tuple)
        )
        cpu_process = env.process(pe.cpu.consume(cpu_instructions, priority=priority))
        yield env.all_of([io_process, cpu_process])

    if work.output_bytes > 0 and destinations > 0:
        packets = redistribution_packets(network, work.output_bytes, destinations)
        send_instructions = packets * (costs.send_message + costs.copy_message_packet)
        yield from pe.cpu.consume(send_instructions, priority=priority)
        yield from network.transfer(work.output_bytes, src=pe.pe_id, dst=destination_ids)
