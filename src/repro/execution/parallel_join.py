"""Parallel hash join orchestration across scan and join processors.

Execution follows the paper's two-phase scheme (§2):

1. *Building phase*: a parallel scan on the smaller (inner) relation A at its
   data processors; the output is dynamically redistributed among the join
   processors chosen by the load balancing strategy, which build (partially
   memory-resident) hash tables with the PPHJ algorithm.
2. *Probing phase*: the outer relation B is scanned in parallel at its data
   processors and redistributed with the same partitioning function; arriving
   tuples probe the hash tables (or are spooled for the deferred join).

The coordinator starts the subqueries, merges the result streams (PAROP) and
runs the distributed commit with the read-only optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.config.parameters import InstructionCosts
from repro.database.allocation import failover_scan_sites, split_evenly
from repro.engine.lock import LockMode
from repro.engine.twopc import run_commit
from repro.execution.operators import parop_merge_instructions, plan_scan, scan_fragment
from repro.execution.pphj import JoinProcessorShare, PPHJExecutor
from repro.hardware.cpu import PRIORITY_QUERY
from repro.scheduling.strategy import JoinPlan
from repro.workload.query import JoinQuery

__all__ = ["JoinExecutionResult", "execute_join_query"]


@dataclass
class JoinExecutionResult:
    """Per-query execution statistics recorded by the coordinator."""

    query: JoinQuery
    plan: JoinPlan
    response_time: float = 0.0
    memory_wait_time: float = 0.0
    overflow_pages: int = 0
    temp_pages_read: int = 0
    startup_messages: int = 0


def _scan_sites(system, relation):
    """Scan sites ``(pe_id, fragment, fraction)`` for one relation.

    Primaries serve their own fragments in full unless the system runs with
    replication and some PE is currently dead, in which case reads fail over
    to surviving copies (chained declustering splits the load across the
    ring).  Falls back to the primaries when no alive copy exists -- the
    fault runtime holds such queries before they reach execution.
    """
    faults = getattr(system, "faults", None)
    if faults is not None and relation.backups:
        dead = faults.dead_pes()
        if dead:
            sites = failover_scan_sites(relation, dead)
            if sites is not None:
                return sites
    return [(pe_id, None, 1.0) for pe_id in relation.node_ids]


def _control_message(sender, receiver, network, costs, priority) -> Generator:
    """One small control message (subquery start / completion)."""
    yield from sender.cpu.consume(costs.send_message, priority=priority)
    yield from network.transfer(256, src=sender.pe_id, dst=receiver.pe_id)
    yield from receiver.cpu.consume(costs.receive_message, priority=priority)


def execute_join_query(
    system,
    query: JoinQuery,
    plan: JoinPlan,
    priority: int = PRIORITY_QUERY,
) -> Generator:
    """Simulation process executing one join query end to end.

    ``system`` is a :class:`~repro.simulation.system.ParallelSystem`-like
    object exposing ``pes``, ``network``, ``catalog``, ``config`` and
    ``commit_stats``.  Returns a :class:`JoinExecutionResult`.
    """
    env = system.env
    config = system.config
    costs: InstructionCosts = config.costs
    network = system.network
    coordinator = system.pes[query.coordinator_pe]

    inner = system.catalog.relation(query.inner_relation)
    outer = system.catalog.relation(query.outer_relation)
    join_pes = [system.pes[pe_id] for pe_id in plan.processors]

    result = JoinExecutionResult(query=query, plan=plan)
    start_time = env.now

    # -- BOT at the coordinator.
    yield from coordinator.cpu.consume(costs.initiate_transaction, priority=priority)

    # -- scan sites for both inputs (replica-aware when PEs are dead).
    inner_sites = _scan_sites(system, inner)
    outer_sites = _scan_sites(system, outer)
    inner_scan_pes = sorted({pe_id for pe_id, _, _ in inner_sites})
    outer_scan_pes = sorted({pe_id for pe_id, _, _ in outer_sites})

    # -- acquire relation-level shared locks at the scan nodes (strict 2PL;
    #    no conflicts with OLTP, which touches different relations).
    for pe_id in inner_scan_pes:
        yield system.pes[pe_id].locks.acquire(query.txn_id, inner.name, LockMode.SHARED)
    for pe_id in outer_scan_pes:
        yield system.pes[pe_id].locks.acquire(query.txn_id, outer.name, LockMode.SHARED)

    # -- start the subqueries: one control message per participating PE.
    #    The coordinator issues all sends back to back; delivery and
    #    receive-side processing proceed in parallel at the participants.
    participants = sorted(set(inner_scan_pes) | set(outer_scan_pes) | set(plan.processors))
    remote_ids = [pe_id for pe_id in participants if pe_id != coordinator.pe_id]
    result.startup_messages = len(remote_ids)
    yield from coordinator.cpu.consume(
        costs.send_message * len(remote_ids), priority=priority
    )

    def _deliver_start(pe):
        yield from network.transfer(256, src=coordinator.pe_id, dst=pe.pe_id)
        yield from pe.cpu.consume(costs.receive_message, priority=priority)

    yield env.all_of(
        [env.process(_deliver_start(system.pes[pe_id])) for pe_id in remote_ids]
    )

    # -- distribute the per-join-processor shares of the redistributed input.
    profile = system.cost_model.profile(query)
    inner_shares = split_evenly(profile.inner_tuples, plan.degree)
    outer_shares = split_evenly(profile.outer_tuples, plan.degree)
    result_shares = split_evenly(profile.result_tuples, plan.degree)

    executors: List[PPHJExecutor] = []
    for index, pe in enumerate(join_pes):
        share = JoinProcessorShare(
            inner_tuples=inner_shares[index],
            outer_tuples=outer_shares[index],
            result_tuples=result_shares[index],
            tuple_size_bytes=profile.tuple_size_bytes,
            blocking_factor=config.relation_a.blocking_factor,
            fudge_factor=query.fudge_factor,
        )
        executors.append(
            PPHJExecutor(
                pe,
                share,
                network,
                costs,
                # Ask for enough memory for this processor's own share (the
                # plan's estimate is an average and may round down).
                desired_pages=max(plan.pages_per_processor, share.hash_table_pages),
                priority=priority,
                owner=f"join-{query.txn_id}",
                inner_sources=len(inner_sites),
                outer_sources=len(outer_sites),
                coordinator_pe=coordinator.pe_id,
            )
        )

    # -- the join processors first secure their working space (FCFS memory queue).
    yield env.all_of([env.process(executor.acquire_memory()) for executor in executors])

    try:
        # -- building phase: parallel scan on A at its data processors with
        #    dataflow-pipelined redistribution into the join processors' hash
        #    builds (modelled by running scans and builds concurrently).
        building = []
        for pe_id, fragment, fraction in inner_sites:
            work = plan_scan(
                inner, pe_id, query.scan_selectivity, profile.tuple_size_bytes,
                fragment=fragment, fraction=fraction,
            )
            building.append(
                env.process(
                    scan_fragment(
                        system.pes[pe_id], work, network, costs, plan.degree, priority,
                        destination_ids=plan.processors,
                    )
                )
            )
        building.extend(env.process(executor.build_phase()) for executor in executors)
        yield env.all_of(building)

        # -- probing phase: parallel scan on B pipelined into probing and the
        #    deferred join; result streams are merged at the coordinator
        #    (PAROP) as they arrive.
        probing = []
        for pe_id, fragment, fraction in outer_sites:
            work = plan_scan(
                outer, pe_id, query.scan_selectivity, profile.tuple_size_bytes,
                fragment=fragment, fraction=fraction,
            )
            probing.append(
                env.process(
                    scan_fragment(
                        system.pes[pe_id], work, network, costs, plan.degree, priority,
                        destination_ids=plan.processors,
                    )
                )
            )
        probing.extend(env.process(executor.probe_phase()) for executor in executors)

        result_bytes = profile.result_tuples * profile.tuple_size_bytes
        merge_cpu = parop_merge_instructions(costs, network, result_bytes, plan.degree)
        probing.append(env.process(coordinator.cpu.consume(merge_cpu, priority=priority)))
        yield env.all_of(probing)
    finally:
        for executor in executors:
            executor.release_memory()

    # -- distributed commit (read-only optimisation: single round).
    participant_pes = [system.pes[pe_id] for pe_id in participants if pe_id != coordinator.pe_id]
    yield from run_commit(
        coordinator,
        participant_pes,
        network,
        costs,
        read_only=True,
        priority=priority,
        statistics=system.commit_stats,
    )
    for pe_id in participants:
        system.pes[pe_id].locks.release_all(query.txn_id)
    coordinator.locks.release_all(query.txn_id)

    # -- EOT.
    yield from coordinator.cpu.consume(costs.terminate_transaction, priority=priority)

    query.completion_time = env.now
    query.chosen_degree = plan.degree
    query.chosen_processors = plan.processors
    query.overflow_pages = sum(executor.overflow_pages for executor in executors)
    query.memory_wait_time = max(
        (executor.memory_wait_time for executor in executors), default=0.0
    )

    result.response_time = env.now - start_time
    result.memory_wait_time = query.memory_wait_time
    result.overflow_pages = query.overflow_pages
    result.temp_pages_read = sum(executor.temp_pages_read for executor in executors)
    return result
