"""Query execution: operators, PPHJ, parallel hash join, OLTP path."""

from repro.execution.oltp import execute_oltp_transaction
from repro.execution.operators import (
    ScanWork,
    parop_merge_instructions,
    plan_scan,
    redistribution_packets,
    scan_fragment,
)
from repro.execution.parallel_join import JoinExecutionResult, execute_join_query
from repro.execution.pphj import JoinProcessorShare, PPHJExecutor

__all__ = [
    "execute_oltp_transaction",
    "ScanWork",
    "parop_merge_instructions",
    "plan_scan",
    "redistribution_packets",
    "scan_fragment",
    "JoinExecutionResult",
    "execute_join_query",
    "JoinProcessorShare",
    "PPHJExecutor",
]
