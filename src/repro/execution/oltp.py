"""Execution of debit-credit (TPC-B-like) OLTP transactions.

Each transaction runs entirely on its home node (affinity-based routing,
paper §5.3): four non-clustered index selects on node-local relations
followed by updates of the selected tuples, a forced log write and a local
commit.  OLTP work runs at higher CPU priority than complex queries and its
buffer footprint may steal memory from running hash joins (footnote 4 /
PPHJ adaptation).
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.config.parameters import InstructionCosts, OltpConfig
from repro.engine.lock import LockMode
from repro.hardware.cpu import PRIORITY_OLTP
from repro.workload.query import OltpTransaction
from repro.workload.tpcb import OltpCostProfile, build_cost_profile

__all__ = ["execute_oltp_transaction"]


def execute_oltp_transaction(
    system,
    transaction: OltpTransaction,
    profile: Optional[OltpCostProfile] = None,
    rng: Optional[random.Random] = None,
) -> Generator:
    """Simulation process executing one OLTP transaction on its home PE."""
    env = system.env
    config = system.config
    costs: InstructionCosts = config.costs
    oltp_config: OltpConfig = config.oltp or OltpConfig()
    if profile is None:
        profile = build_cost_profile(oltp_config, costs)
    if rng is None:
        rng = random.Random(transaction.txn_id)

    pe = system.pes[transaction.home_pe if transaction.home_pe is not None else transaction.coordinator_pe]

    # Maintain the OLTP buffer footprint on this node (steals from joins if
    # necessary -- the PPHJ steal callback reacts by spooling partitions).
    pe.buffer.ensure_oltp_footprint(oltp_config.working_set_pages)

    # BOT.
    yield from pe.cpu.consume(costs.initiate_transaction, priority=PRIORITY_OLTP)

    # Acquire exclusive locks on the accessed tuples (page-granularity ids on
    # the node-local account relation; disjoint from A and B so no conflicts
    # with join queries).
    locked = []
    for access in range(transaction.tuple_accesses):
        resource = ("ACCT", pe.pe_id, rng.randrange(10_000))
        yield pe.locks.acquire(transaction.txn_id, resource, LockMode.EXCLUSIVE)
        locked.append(resource)

    # CPU for index traversals, tuple reads and updates (aggregated).
    yield from pe.cpu.consume(profile.cpu_instructions, priority=PRIORITY_OLTP)

    # Physical reads for buffer misses.
    misses = 0
    for access in range(profile.page_reads):
        if rng.random() > profile.buffer_hit_ratio:
            misses += 1
    for miss in range(misses):
        yield from pe.disks.read_random(page_key=("acct", pe.pe_id, rng.randrange(5_000)))

    # Commit: force the log, then release locks (strict 2PL).
    for _ in range(profile.log_writes):
        yield from pe.disks.write_random()

    # Replica maintenance: with a replicated database the updates must also
    # be shipped to and forced at the backup copy of this node's fragment
    # before commit (eager replication keeps failover copies current).
    if config.replication is not None and "ACCT" in system.catalog:
        backup_pe_id = system.catalog.relation("ACCT").backup_of(pe.pe_id)
        if backup_pe_id is not None and backup_pe_id != pe.pe_id:
            backup_pe = system.pes[backup_pe_id]
            network = system.network
            for _ in range(profile.log_writes):
                yield from pe.cpu.consume(costs.send_message, priority=PRIORITY_OLTP)
                yield from network.transfer(
                    config.buffer.page_size_bytes, src=pe.pe_id, dst=backup_pe_id
                )
                yield from backup_pe.cpu.consume(
                    costs.receive_message, priority=PRIORITY_OLTP
                )
                yield from backup_pe.disks.write_random()

    yield from pe.cpu.consume(costs.terminate_transaction, priority=PRIORITY_OLTP)
    pe.locks.release_all(transaction.txn_id)

    transaction.completion_time = env.now
    pe.oltp_processed += 1
    return transaction
