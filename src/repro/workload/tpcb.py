"""Debit-credit (TPC-B-like) OLTP workload helpers.

The paper's OLTP workload is "similar to the one of the debit-credit (TPC-B)
benchmark": each transaction performs four non-clustered index selects on
arbitrary input relations and updates the corresponding tuples (§5.1), and is
routed with affinity so that processing is largely local (§5.3).

This module provides a cost profile for one such transaction -- the execution
layer turns the profile into CPU, buffer and disk requests on the home PE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.parameters import InstructionCosts, OltpConfig

__all__ = ["OltpCostProfile", "build_cost_profile"]


@dataclass(frozen=True)
class OltpCostProfile:
    """Aggregate resource demand of a single debit-credit transaction."""

    cpu_instructions: float
    page_reads: int  # logical page reads (index + data)
    buffer_hit_ratio: float  # fraction served without disk I/O
    log_writes: int  # synchronous log I/Os at commit
    data_page_writes: int  # deferred dirty-page writes (asynchronous)

    @property
    def expected_disk_reads(self) -> float:
        """Expected number of physical read I/Os per transaction."""
        return self.page_reads * (1.0 - self.buffer_hit_ratio)


def build_cost_profile(config: OltpConfig, costs: InstructionCosts) -> OltpCostProfile:
    """Derive the per-transaction cost profile from the OLTP configuration.

    Per select: traverse ``index_levels`` non-clustered index pages plus one
    data page, read the tuple; per update: modify the tuple and write it into
    the output buffer.  BOT/EOT and per-I/O overhead come from the instruction
    cost table.  Calibrated so that 100 TPS per node yields roughly 50 % CPU,
    60 % disk and 45 % memory utilisation on the paper's configuration
    (§5.3).
    """
    selects = config.tuple_accesses
    pages_per_select = config.index_levels + 1
    page_reads = selects * pages_per_select

    cpu = float(costs.initiate_transaction + costs.terminate_transaction)
    # CPU for page accesses: every logical page access pays the I/O overhead
    # share proportional to the miss ratio plus tuple handling.
    expected_misses = page_reads * (1.0 - config.buffer_hit_ratio)
    cpu += expected_misses * costs.io_operation
    cpu += selects * (costs.read_tuple * pages_per_select)
    # Updates: re-write the tuple and log it.
    cpu += selects * (costs.read_tuple + costs.write_tuple_to_output)
    cpu += config.log_io_per_commit * costs.io_operation
    cpu += selects * config.instructions_per_call_overhead

    return OltpCostProfile(
        cpu_instructions=cpu,
        page_reads=page_reads,
        buffer_hit_ratio=config.buffer_hit_ratio,
        log_writes=config.log_io_per_commit,
        data_page_writes=selects,
    )
