"""Synthetic and captured trace support.

The original simulation system could replay real-life database traces [18].
Those traces are not available, so this module provides a synthetic
equivalent: a trace is simply a time-ordered list of (arrival_time, class
name) records that can be produced from any :class:`WorkloadSpec` and replayed
deterministically.  This exercises the same code path in the driver (a
pre-computed arrival list instead of on-line sampling).

Captured arrival logs can drive the same path: :func:`load_trace` reads a
trace from a CSV file (``arrival_time,class_name`` header) or a JSON file
(a list of record objects, or ``{"records": [...]}``), and
:func:`save_trace` writes one -- the two round-trip losslessly.  On the
CLI, ``--arrival trace --arrival-param file=PATH`` replays such a file
instead of materialising the spec's own streams.
"""

from __future__ import annotations

import csv
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

from repro.sim import Environment
from repro.workload.generator import Submitter, WorkloadSpec
from repro.workload.query import Transaction

__all__ = [
    "TraceRecord",
    "Trace",
    "generate_trace",
    "load_trace",
    "parse_trace",
    "save_trace",
    "TraceReplayer",
]


@dataclass(frozen=True)
class TraceRecord:
    """One arrival in a trace."""

    arrival_time: float
    class_name: str


@dataclass
class Trace:
    """A reproducible, time-ordered arrival trace."""

    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> float:
        return self.records[-1].arrival_time if self.records else 0.0

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.class_name] = counts.get(record.class_name, 0) + 1
        return counts


def generate_trace(spec: WorkloadSpec, duration: float, seed: int | None = None) -> Trace:
    """Sample a trace of ``duration`` simulated seconds from a workload spec.

    Each class draws from its own rng stream, seeded exactly like the live
    :class:`~repro.workload.generator.WorkloadGenerator` (``seed * 1009 +
    class index``), so a generated trace replays bit-identically to live
    sampling of the same spec.  (Earlier versions drew all classes from one
    shared rng, which made traces diverge from the generator's arrivals.)
    """
    base_seed = spec.seed if seed is None else seed
    records: List[TraceRecord] = []
    for index, workload_class in enumerate(spec.classes):
        if workload_class.arrival_rate <= 0 and workload_class.arrival is None:
            continue
        rng = random.Random(base_seed * 1009 + index)
        workload_class.begin_stream()
        clock = 0.0
        while True:
            delta = workload_class.interarrival(rng, clock)
            if delta == float("inf"):
                break
            clock += delta
            if clock > duration:
                break
            records.append(TraceRecord(arrival_time=clock, class_name=workload_class.name))
    records.sort(key=lambda record: record.arrival_time)
    return Trace(records=records)


def _trace_from_rows(rows, source: str) -> Trace:
    records: List[TraceRecord] = []
    for index, row in enumerate(rows):
        try:
            time_text = row["arrival_time"]
            class_name = row["class_name"]
        except (KeyError, TypeError, IndexError):
            raise ValueError(
                f"{source}: record {index} needs 'arrival_time' and 'class_name' fields"
            ) from None
        if time_text is None or class_name is None:
            # csv.DictReader yields None for short rows rather than raising.
            raise ValueError(
                f"{source}: record {index} needs 'arrival_time' and 'class_name' fields"
            )
        try:
            arrival_time = float(time_text)
        except (TypeError, ValueError):
            raise ValueError(
                f"{source}: record {index} has non-numeric arrival_time {time_text!r}"
            ) from None
        if arrival_time < 0:
            raise ValueError(
                f"{source}: record {index} has negative arrival_time {arrival_time!r}"
            )
        records.append(TraceRecord(arrival_time=arrival_time, class_name=str(class_name)))
    records.sort(key=lambda record: record.arrival_time)
    return Trace(records=records)


def parse_trace(text: str, source: str = "<trace>", fmt: str | None = None) -> Trace:
    """Parse trace text in CSV or JSON form (sniffed when ``fmt`` is None).

    Callers that already hold the file content (e.g. the runner, which
    reads the bytes once to verify a content digest) parse from the same
    buffer instead of re-reading the file.
    """
    if fmt not in (None, "csv", "json"):
        raise ValueError(f"unknown trace format {fmt!r}; expected 'csv' or 'json'")
    if fmt == "json" or (fmt is None and text.lstrip()[:1] in ("[", "{")):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"{source}: not valid JSON: {exc}") from None
        rows = data.get("records") if isinstance(data, dict) else data
        if not isinstance(rows, list):
            raise ValueError(
                f"{source}: expected a JSON list of records or an object with "
                "a 'records' list"
            )
        return _trace_from_rows(rows, source)
    reader = csv.DictReader(text.splitlines())
    missing = {"arrival_time", "class_name"} - set(reader.fieldnames or ())
    if missing:
        raise ValueError(
            f"{source}: CSV header must name the {sorted(missing)} column(s) "
            f"(got {reader.fieldnames})"
        )
    return _trace_from_rows(reader, source)


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a captured arrival trace from a CSV or JSON file.

    CSV needs an ``arrival_time,class_name`` header (extra columns are
    ignored); JSON is either a list of ``{"arrival_time": ..,
    "class_name": ..}`` objects or ``{"records": [...]}`` as written by
    :func:`save_trace`.  Records are sorted by arrival time, so logs
    captured from concurrent streams need not be pre-merged.
    """
    path = Path(path)
    fmt = "json" if path.suffix.lower() == ".json" else None
    return parse_trace(path.read_text(encoding="utf-8"), str(path), fmt)


def save_trace(trace: Trace, path: Union[str, Path], fmt: str | None = None) -> Path:
    """Write a trace to CSV or JSON (format from ``fmt`` or the extension).

    The written file loads back via :func:`load_trace` with identical
    records (floats survive via ``repr`` round-tripping in both formats).
    """
    path = Path(path)
    fmt = fmt or ("json" if path.suffix.lower() == ".json" else "csv")
    if fmt not in ("csv", "json"):
        raise ValueError(f"unknown trace format {fmt!r}; expected 'csv' or 'json'")
    if fmt == "json":
        payload = {
            "records": [
                {"arrival_time": record.arrival_time, "class_name": record.class_name}
                for record in trace
            ]
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_time", "class_name"])
        for record in trace:
            writer.writerow([repr(record.arrival_time), record.class_name])
    return path


class TraceReplayer:
    """Replays a trace against the system, using the spec's factories."""

    def __init__(self, env: Environment, spec: WorkloadSpec, trace: Trace, submit: Submitter):
        self.env = env
        self.spec = spec
        self.trace = trace
        self.submit = submit
        self._factories = {cls.name: cls.factory for cls in spec.classes}
        self.replayed = 0

    def start(self) -> None:
        self.env.process(self._replay())

    def _replay(self):
        for record in self.trace:
            delay = record.arrival_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            factory = self._factories.get(record.class_name)
            if factory is None:
                raise KeyError(f"trace references unknown class {record.class_name!r}")
            transaction: Transaction = factory()
            # Stamp the declared trace time (the env clock can sit one ulp
            # off after the relative timeout), so response-time accounting
            # matches the trace exactly.
            transaction.arrival_time = record.arrival_time
            self.replayed += 1
            self.submit(transaction)
