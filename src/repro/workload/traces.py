"""Synthetic trace support.

The original simulation system could replay real-life database traces [18].
Those traces are not available, so this module provides a synthetic
equivalent: a trace is simply a time-ordered list of (arrival_time, class
name) records that can be produced from any :class:`WorkloadSpec` and replayed
deterministically.  This exercises the same code path in the driver (a
pre-computed arrival list instead of on-line sampling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.sim import Environment
from repro.workload.generator import Submitter, WorkloadSpec
from repro.workload.query import Transaction

__all__ = ["TraceRecord", "Trace", "generate_trace", "TraceReplayer"]


@dataclass(frozen=True)
class TraceRecord:
    """One arrival in a trace."""

    arrival_time: float
    class_name: str


@dataclass
class Trace:
    """A reproducible, time-ordered arrival trace."""

    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> float:
        return self.records[-1].arrival_time if self.records else 0.0

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.class_name] = counts.get(record.class_name, 0) + 1
        return counts


def generate_trace(spec: WorkloadSpec, duration: float, seed: int | None = None) -> Trace:
    """Sample a trace of ``duration`` simulated seconds from a workload spec.

    Each class draws from its own rng stream, seeded exactly like the live
    :class:`~repro.workload.generator.WorkloadGenerator` (``seed * 1009 +
    class index``), so a generated trace replays bit-identically to live
    sampling of the same spec.  (Earlier versions drew all classes from one
    shared rng, which made traces diverge from the generator's arrivals.)
    """
    base_seed = spec.seed if seed is None else seed
    records: List[TraceRecord] = []
    for index, workload_class in enumerate(spec.classes):
        if workload_class.arrival_rate <= 0 and workload_class.arrival is None:
            continue
        rng = random.Random(base_seed * 1009 + index)
        workload_class.begin_stream()
        clock = 0.0
        while True:
            delta = workload_class.interarrival(rng, clock)
            if delta == float("inf"):
                break
            clock += delta
            if clock > duration:
                break
            records.append(TraceRecord(arrival_time=clock, class_name=workload_class.name))
    records.sort(key=lambda record: record.arrival_time)
    return Trace(records=records)


class TraceReplayer:
    """Replays a trace against the system, using the spec's factories."""

    def __init__(self, env: Environment, spec: WorkloadSpec, trace: Trace, submit: Submitter):
        self.env = env
        self.spec = spec
        self.trace = trace
        self.submit = submit
        self._factories = {cls.name: cls.factory for cls in spec.classes}
        self.replayed = 0

    def start(self) -> None:
        self.env.process(self._replay())

    def _replay(self):
        for record in self.trace:
            delay = record.arrival_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            factory = self._factories.get(record.class_name)
            if factory is None:
                raise KeyError(f"trace references unknown class {record.class_name!r}")
            transaction: Transaction = factory()
            # Stamp the declared trace time (the env clock can sit one ulp
            # off after the relative timeout), so response-time accounting
            # matches the trace exactly.
            transaction.arrival_time = record.arrival_time
            self.replayed += 1
            self.submit(transaction)
