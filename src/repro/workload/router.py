"""Coordinator placement: first level of workload allocation.

Each incoming transaction or query is assigned to one processor acting as
its coordinator (paper §4).  Join queries use random placement uniformly over
all PEs (Fig. 4); OLTP transactions use affinity-based routing so that they
run locally on the nodes owning their data (§5.3, [25]).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from repro.workload.query import OltpTransaction, Transaction

__all__ = ["Router", "RandomRouter", "RoundRobinRouter", "AffinityRouter"]


class Router(Protocol):
    """Strategy interface mapping a transaction to its coordinator PE."""

    def route(self, transaction: Transaction) -> int:  # pragma: no cover - protocol
        ...


class RandomRouter:
    """Uniform random placement over a set of candidate PEs."""

    def __init__(self, pe_ids: Sequence[int], seed: int = 0):
        if not pe_ids:
            raise ValueError("RandomRouter needs at least one PE")
        self._pe_ids = list(pe_ids)
        self._rng = random.Random(seed)

    def route(self, transaction: Transaction) -> int:
        pe = self._rng.choice(self._pe_ids)
        transaction.coordinator_pe = pe
        return pe


class RoundRobinRouter:
    """Deterministic round-robin placement (useful for tests)."""

    def __init__(self, pe_ids: Sequence[int]):
        if not pe_ids:
            raise ValueError("RoundRobinRouter needs at least one PE")
        self._pe_ids = list(pe_ids)
        self._next = 0

    def route(self, transaction: Transaction) -> int:
        pe = self._pe_ids[self._next % len(self._pe_ids)]
        self._next += 1
        transaction.coordinator_pe = pe
        return pe


class AffinityRouter:
    """Affinity-based routing for OLTP: transactions run on their home node.

    Non-OLTP transactions fall back to a uniform random choice over all PEs.
    """

    def __init__(self, oltp_pe_ids: Sequence[int], all_pe_ids: Sequence[int], seed: int = 0):
        if not oltp_pe_ids:
            raise ValueError("AffinityRouter needs at least one OLTP PE")
        self._oltp_pe_ids = list(oltp_pe_ids)
        self._fallback = RandomRouter(all_pe_ids, seed=seed)
        self._rng = random.Random(seed + 1)

    def route(self, transaction: Transaction) -> int:
        if isinstance(transaction, OltpTransaction):
            pe = (
                transaction.home_pe
                if transaction.home_pe is not None
                else self._rng.choice(self._oltp_pe_ids)
            )
            transaction.home_pe = pe
            transaction.coordinator_pe = pe
            return pe
        return self._fallback.route(transaction)
