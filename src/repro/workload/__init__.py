"""Workload model: query classes, arrival generation, routing, OLTP, traces."""

from repro.workload.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DeterministicArrivals,
    OnOffArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
    StepArrivals,
    TraceArrivals,
    make_arrival_process,
)
from repro.workload.generator import (
    WorkloadClass,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.workload.query import (
    JoinQuery,
    OltpTransaction,
    QueryClass,
    ScanQuery,
    Transaction,
    UpdateStatement,
)
from repro.workload.router import AffinityRouter, RandomRouter, RoundRobinRouter, Router
from repro.workload.tpcb import OltpCostProfile, build_cost_profile
from repro.workload.traces import Trace, TraceRecord, TraceReplayer, generate_trace

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "DeterministicArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "SinusoidalArrivals",
    "StepArrivals",
    "TraceArrivals",
    "make_arrival_process",
    "WorkloadClass",
    "WorkloadGenerator",
    "WorkloadSpec",
    "JoinQuery",
    "OltpTransaction",
    "QueryClass",
    "ScanQuery",
    "Transaction",
    "UpdateStatement",
    "AffinityRouter",
    "RandomRouter",
    "RoundRobinRouter",
    "Router",
    "OltpCostProfile",
    "build_cost_profile",
    "Trace",
    "TraceRecord",
    "TraceReplayer",
    "generate_trace",
]
