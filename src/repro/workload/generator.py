"""Open-queuing workload generation.

The simulation system is an open queuing model: every transaction and query
type has its own arrival process (paper §4).  Arrival processes are Poisson
(exponential inter-arrival times) by default; deterministic arrivals are
available for tests and for single-user experiments where exactly one query
is in the system at a time.  Non-stationary profiles (bursty MMPP,
sinusoidal, load surges, trace replay) plug in through
:mod:`repro.workload.arrivals`: any :class:`WorkloadClass` can carry an
:class:`~repro.workload.arrivals.ArrivalProcess` that modulates its rate
over simulated time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from repro.config.parameters import SystemConfig
from repro.sim import Environment
from repro.workload.arrivals import ArrivalProcess, make_arrival_process
from repro.workload.query import JoinQuery, OltpTransaction, Transaction

__all__ = ["ArrivalProcess", "WorkloadClass", "WorkloadSpec", "WorkloadGenerator"]

#: Type of the factory creating a fresh transaction for each arrival.
TransactionFactory = Callable[[], Transaction]
#: Type of the sink receiving generated transactions (the system driver).
Submitter = Callable[[Transaction], None]


@dataclass
class WorkloadClass:
    """One transaction/query class with its own arrival stream.

    ``arrival_rate`` is the class's (mean) rate in arrivals per second over
    the whole system.  By default arrivals are Poisson at that rate
    (``deterministic=True`` switches to fixed inter-arrival times); setting
    ``arrival`` to an :class:`~repro.workload.arrivals.ArrivalProcess`
    instead samples a possibly non-stationary process -- ``arrival_rate``
    then documents the profile's long-run mean.
    """

    name: str
    factory: TransactionFactory
    arrival_rate: float  # arrivals per second over the whole system
    deterministic: bool = False  # exponential (False) or fixed inter-arrival
    arrival: Optional[ArrivalProcess] = None  # non-stationary rate profile

    def interarrival(self, rng: random.Random, now: float = 0.0) -> float:
        if self.arrival is not None:
            return self.arrival.interarrival(now, rng)
        if self.arrival_rate <= 0:
            return float("inf")
        mean = 1.0 / self.arrival_rate
        return mean if self.deterministic else rng.expovariate(self.arrival_rate)

    def begin_stream(self) -> None:
        """Reset any modulating arrival-process state before a sampling pass."""
        if self.arrival is not None:
            self.arrival.reset()


@dataclass
class WorkloadSpec:
    """A heterogeneous workload: a list of classes sharing one random seed."""

    classes: List[WorkloadClass] = field(default_factory=list)
    seed: int = 42

    def add(self, workload_class: WorkloadClass) -> "WorkloadSpec":
        self.classes.append(workload_class)
        return self

    def with_arrival_profile(
        self,
        kind: str,
        params: Optional[Mapping[str, float] | Sequence[Tuple[str, float]]] = None,
    ) -> "WorkloadSpec":
        """Copy of this spec with every class carrying an arrival profile.

        Each class keeps its own mean rate; the profile (``mmpp``, ``sine``,
        ``step``, ...) modulates that rate over time.  ``kind="poisson"``
        normalises to the default sampler, so a profiled spec with
        ``poisson`` draws streams bit-identical to the unprofiled spec.
        """
        if kind == "poisson" and not params:
            classes = [replace(cls, arrival=None) for cls in self.classes]
        else:
            classes = [
                replace(cls, arrival=make_arrival_process(kind, cls.arrival_rate, params))
                for cls in self.classes
            ]
        return WorkloadSpec(classes=classes, seed=self.seed)

    @classmethod
    def for_config(cls, config: SystemConfig) -> "WorkloadSpec":
        """The default workload of a configuration: joins, plus OLTP if set."""
        return (
            cls.mixed_join_oltp(config)
            if config.oltp is not None
            else cls.homogeneous_join(config)
        )

    @classmethod
    def homogeneous_join(
        cls, config: SystemConfig, arrival_rate_per_pe: Optional[float] = None
    ) -> "WorkloadSpec":
        """Join-only workload: rate grows proportionally with the system size."""
        join_cfg = config.join_query
        rate_per_pe = (
            join_cfg.arrival_rate_per_pe if arrival_rate_per_pe is None else arrival_rate_per_pe
        )

        def make_join() -> JoinQuery:
            return JoinQuery(
                inner_relation=config.relation_a.name,
                outer_relation=config.relation_b.name,
                scan_selectivity=join_cfg.scan_selectivity,
                result_fraction_of_inner=join_cfg.result_fraction_of_inner,
                fudge_factor=join_cfg.fudge_factor,
            )

        spec = cls(seed=config.seed)
        spec.add(
            WorkloadClass(
                name="join",
                factory=make_join,
                arrival_rate=rate_per_pe * config.num_pe,
            )
        )
        return spec

    @classmethod
    def mixed_join_oltp(cls, config: SystemConfig) -> "WorkloadSpec":
        """Heterogeneous workload: joins plus debit-credit OLTP (Fig. 9)."""
        if config.oltp is None:
            raise ValueError("mixed workload requires config.oltp to be set")
        spec = cls.homogeneous_join(config)
        oltp_cfg = config.oltp
        oltp_nodes = (
            config.a_node_ids if oltp_cfg.placement.upper() == "A" else config.b_node_ids
        )
        rng = random.Random(config.seed + 7)

        def make_oltp() -> OltpTransaction:
            return OltpTransaction(
                home_pe=rng.choice(oltp_nodes),
                tuple_accesses=oltp_cfg.tuple_accesses,
            )

        spec.add(
            WorkloadClass(
                name="oltp",
                factory=make_oltp,
                arrival_rate=oltp_cfg.arrival_rate_per_node * len(oltp_nodes),
            )
        )
        return spec


class WorkloadGenerator:
    """Drives the arrival processes of a :class:`WorkloadSpec`.

    For every class, a simulation process draws inter-arrival times, stamps
    the new transaction with its arrival time and hands it to the submitter
    (normally ``ParallelSystem.submit``).
    """

    def __init__(self, env: Environment, spec: WorkloadSpec, submit: Submitter):
        self.env = env
        self.spec = spec
        self.submit = submit
        self.generated: dict[str, int] = {cls.name: 0 for cls in spec.classes}
        #: Multiplier on every class's arrival rate, adjusted at runtime by
        #: the fault injector's cascading-overload (surge) coupling.  At the
        #: default 1.0 the sampled delays pass through untouched, keeping the
        #: per-class RNG streams byte-identical to surge-free runs.
        self.rate_scale = 1.0
        self._processes = []

    def start(self) -> None:
        """Start one arrival process per workload class."""
        for index, workload_class in enumerate(self.spec.classes):
            # Deterministic per-class seed (independent of PYTHONHASHSEED).
            rng = random.Random(self.spec.seed * 1009 + index)
            self._processes.append(self.env.process(self._arrivals(workload_class, rng)))

    def _arrivals(self, workload_class: WorkloadClass, rng: random.Random):
        if workload_class.arrival_rate <= 0 and workload_class.arrival is None:
            return
            yield  # pragma: no cover - makes this a generator
        workload_class.begin_stream()
        while True:
            delay = workload_class.interarrival(rng, self.env.now)
            if delay == float("inf"):
                return  # exhausted (e.g. a finite trace) or rate dropped to 0
            if self.rate_scale != 1.0:
                delay /= self.rate_scale
            yield self.env.timeout(delay)
            transaction = workload_class.factory()
            transaction.arrival_time = self.env.now
            self.generated[workload_class.name] += 1
            self.submit(transaction)
