"""Arrival processes: stationary and non-stationary inter-arrival sampling.

The paper's experiments drive every workload class with a stationary Poisson
stream, but the *dynamic* in "dynamic load balancing" only matters when the
offered load fluctuates.  This module abstracts the arrival process of a
:class:`~repro.workload.generator.WorkloadClass` so any class can carry a
time-varying rate profile:

* :class:`PoissonArrivals` -- homogeneous Poisson (the paper's default);
* :class:`DeterministicArrivals` -- fixed inter-arrival times;
* :class:`OnOffArrivals` -- a 2-state Markov-modulated Poisson process
  (bursty on/off load with exponential sojourn times);
* :class:`SinusoidalArrivals` -- diurnal-style sinusoidal rate modulation;
* :class:`StepArrivals` -- a piecewise-constant load surge/spike;
* :class:`TraceArrivals` -- replay of an explicit list of arrival times.

Non-homogeneous Poisson processes (sine, step) are sampled by Lewis-Shedler
thinning against the peak rate, so every process draws from a single
``random.Random`` stream in a deterministic order: the same seed always
reproduces the same arrival times, bit for bit, whether sampled live by the
workload generator or pre-materialised into a trace.

Processes are built from primitive parameters via
:func:`make_arrival_process`, which is what lets a
:class:`~repro.runner.spec.PointSpec` carry an arrival profile as picklable,
cache-hashable ``(kind, params)`` data across process boundaries.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "OnOffArrivals",
    "SinusoidalArrivals",
    "StepArrivals",
    "TraceArrivals",
    "make_arrival_process",
]

#: Arrival kinds understood by :func:`make_arrival_process` (and therefore by
#: the scenario engine's ``--arrival`` axis).  ``"trace"`` is resolved by the
#: runner (generate + replay) rather than by the factory.
ARRIVAL_KINDS = ("poisson", "deterministic", "mmpp", "sine", "step", "trace")


class ArrivalProcess:
    """Samples the time from ``now`` until the next arrival.

    Implementations may keep modulating state (e.g. the on/off phase of an
    MMPP); :meth:`reset` restarts the process from time zero so one instance
    can drive several independent sampling passes (live generation and trace
    materialisation must see identical streams).
    """

    def interarrival(self, now: float, rng: random.Random) -> float:
        """Time until the next arrival after ``now`` (``inf`` = never)."""
        raise NotImplementedError

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at simulated time ``t``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restart any modulating state (default: stateless, no-op)."""

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate (arrivals per second)."""
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals (exponential inter-arrival times)."""

    arrival_rate: float

    def interarrival(self, now: float, rng: random.Random) -> float:
        if self.arrival_rate <= 0:
            return float("inf")
        return rng.expovariate(self.arrival_rate)

    def rate(self, t: float) -> float:
        return max(0.0, self.arrival_rate)

    @property
    def mean_rate(self) -> float:
        return max(0.0, self.arrival_rate)


@dataclass
class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival times (one arrival every ``1/rate`` seconds)."""

    arrival_rate: float

    def interarrival(self, now: float, rng: random.Random) -> float:
        if self.arrival_rate <= 0:
            return float("inf")
        return 1.0 / self.arrival_rate

    def rate(self, t: float) -> float:
        return max(0.0, self.arrival_rate)

    @property
    def mean_rate(self) -> float:
        return max(0.0, self.arrival_rate)


class _ThinnedProcess(ArrivalProcess):
    """Non-homogeneous Poisson sampling by Lewis-Shedler thinning.

    Subclasses provide :meth:`rate` (the time-varying intensity) and
    :attr:`peak_rate` (an upper bound on it); candidates are drawn from a
    homogeneous process at the peak rate and accepted with probability
    ``rate(t) / peak_rate``.  The rng draw order (one expovariate + one
    uniform per candidate) is fixed, which keeps sampling deterministic.
    """

    @property
    def peak_rate(self) -> float:
        raise NotImplementedError

    def interarrival(self, now: float, rng: random.Random) -> float:
        peak = self.peak_rate
        if peak <= 0:
            return float("inf")
        t = now
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self.rate(t):
                return t - now


@dataclass
class SinusoidalArrivals(_ThinnedProcess):
    """Diurnal-style load: ``rate(t) = base * (1 + amplitude * sin(...))``.

    ``amplitude`` is relative (0..1 keeps the rate non-negative); ``period``
    is the cycle length in simulated seconds and ``phase`` shifts the cycle
    (in radians).
    """

    arrival_rate: float
    amplitude: float = 0.5
    period: float = 60.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {self.amplitude}")

    def rate(self, t: float) -> float:
        value = self.arrival_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period + self.phase)
        )
        return max(0.0, value)

    @property
    def peak_rate(self) -> float:
        return max(0.0, self.arrival_rate * (1.0 + self.amplitude))

    @property
    def mean_rate(self) -> float:
        # The sine integrates to zero over full cycles (exact when the rate
        # never clips at zero, i.e. amplitude <= 1).
        return max(0.0, self.arrival_rate)


@dataclass
class StepArrivals(_ThinnedProcess):
    """Load surge: the base rate is multiplied by ``surge_factor`` during
    ``[surge_start, surge_end)`` and unchanged outside the surge window."""

    arrival_rate: float
    surge_factor: float = 3.0
    surge_start: float = 20.0
    surge_end: float = 40.0

    def __post_init__(self) -> None:
        if self.surge_factor < 0:
            raise ValueError(f"surge_factor must be >= 0, got {self.surge_factor}")
        if self.surge_end < self.surge_start:
            raise ValueError(
                f"surge_end ({self.surge_end}) must be >= surge_start ({self.surge_start})"
            )

    def rate(self, t: float) -> float:
        base = max(0.0, self.arrival_rate)
        if self.surge_start <= t < self.surge_end:
            return base * self.surge_factor
        return base

    @property
    def peak_rate(self) -> float:
        return max(0.0, self.arrival_rate) * max(1.0, self.surge_factor)

    @property
    def mean_rate(self) -> float:
        return max(0.0, self.arrival_rate)


@dataclass
class OnOffArrivals(ArrivalProcess):
    """2-state MMPP: Poisson arrivals whose rate is modulated by an on/off
    Markov chain with exponentially distributed sojourn times.

    The chain starts in the *off* (low-rate) state; ``on_rate``/``off_rate``
    are the arrival rates inside each state and ``mean_on``/``mean_off`` the
    mean sojourn times.  State switches are driven by the same rng as the
    arrival draws, in a fixed order, so the whole modulated stream is
    reproducible from the seed alone.
    """

    on_rate: float
    off_rate: float
    mean_on: float = 5.0
    mean_off: float = 15.0

    def __post_init__(self) -> None:
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ValueError("mean_on and mean_off must be positive")
        if self.on_rate < 0 or self.off_rate < 0:
            raise ValueError("on_rate and off_rate must be >= 0")
        self.reset()

    def reset(self) -> None:
        self._on = False
        self._switch_at: Optional[float] = None  # drawn lazily from the rng

    def _current_rate(self) -> float:
        return self.on_rate if self._on else self.off_rate

    def interarrival(self, now: float, rng: random.Random) -> float:
        if self.on_rate <= 0 and self.off_rate <= 0:
            return float("inf")  # no state ever produces arrivals
        t = now
        while True:
            if self._switch_at is None:
                sojourn = rng.expovariate(1.0 / (self.mean_on if self._on else self.mean_off))
                self._switch_at = t + sojourn
            rate = self._current_rate()
            if rate <= 0:
                candidate = float("inf")
            else:
                candidate = t + rng.expovariate(rate)
            if candidate < self._switch_at:
                return candidate - now
            # No arrival before the next state switch: advance the chain.
            t = self._switch_at
            self._on = not self._on
            self._switch_at = None

    def rate(self, t: float) -> float:
        # The modulating state is stochastic; report the current state's rate.
        return self._current_rate()

    @property
    def mean_rate(self) -> float:
        cycle = self.mean_on + self.mean_off
        return (self.on_rate * self.mean_on + self.off_rate * self.mean_off) / cycle


@dataclass
class TraceArrivals(ArrivalProcess):
    """Replays an explicit, strictly increasing list of arrival times.

    Stateful: a cursor walks the list so a record at the stream origin
    (``times[0] == 0.0`` with the clock already at 0) is emitted rather
    than skipped; :meth:`reset` rewinds for a fresh sampling pass.
    """

    times: Tuple[float, ...] = ()
    _index: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times)
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace arrival times must be strictly increasing")
        self.times = times
        self.reset()

    def reset(self) -> None:
        self._index = 0

    def interarrival(self, now: float, rng: random.Random) -> float:
        # Skip any records the clock has already passed (a replay started
        # mid-trace), but emit a record exactly at ``now`` if it is next.
        while self._index < len(self.times) and self.times[self._index] < now:
            self._index += 1
        if self._index >= len(self.times):
            return float("inf")
        arrival = self.times[self._index]
        self._index += 1
        return arrival - now

    def rate(self, t: float) -> float:
        if not self.times:
            return 0.0
        duration = self.times[-1]
        return len(self.times) / duration if duration > 0 else 0.0

    @property
    def mean_rate(self) -> float:
        return self.rate(0.0)


def _params_dict(params: Optional[Mapping[str, float] | Sequence[Tuple[str, float]]]) -> Dict[str, float]:
    if params is None:
        return {}
    if isinstance(params, Mapping):
        return {str(k): float(v) for k, v in params.items()}
    return {str(k): float(v) for k, v in params}


def make_arrival_process(
    kind: str,
    arrival_rate: float,
    params: Optional[Mapping[str, float] | Sequence[Tuple[str, float]]] = None,
) -> ArrivalProcess:
    """Build an arrival process of ``kind`` with mean rate ``arrival_rate``.

    ``params`` are the kind's shape parameters (unknown keys raise, so typos
    on the CLI fail fast):

    * ``mmpp``: ``burst_factor`` (on-rate = factor x mean rate, default 4),
      ``on_fraction`` (fraction of time in the on state, default 0.25) and
      ``cycle`` (mean on+off cycle length in seconds, default 20); the off
      rate is derived so the long-run mean equals ``arrival_rate``.
    * ``sine``: ``amplitude`` (relative, default 0.5), ``period`` (default
      60 s), ``phase`` (radians, default 0).
    * ``step``: ``surge_factor`` (default 3), ``surge_start`` (default 20 s),
      ``surge_end`` (default 40 s).
    * ``poisson`` / ``deterministic``: no parameters.
    """
    options = _params_dict(params)

    def take(name: str, default: float) -> float:
        return float(options.pop(name, default))

    kind = str(kind)
    if kind == "poisson":
        process: ArrivalProcess = PoissonArrivals(arrival_rate)
    elif kind == "deterministic":
        process = DeterministicArrivals(arrival_rate)
    elif kind == "mmpp":
        burst_factor = take("burst_factor", 4.0)
        on_fraction = take("on_fraction", 0.25)
        cycle = take("cycle", 20.0)
        if not 0.0 < on_fraction < 1.0:
            raise ValueError(f"on_fraction must be in (0, 1), got {on_fraction}")
        if burst_factor * on_fraction > 1.0:
            raise ValueError(
                "burst_factor*on_fraction must be <= 1 to keep the off rate "
                f"non-negative, got {burst_factor * on_fraction:g}"
            )
        on_rate = arrival_rate * burst_factor
        off_rate = arrival_rate * (1.0 - burst_factor * on_fraction) / (1.0 - on_fraction)
        process = OnOffArrivals(
            on_rate=on_rate,
            off_rate=off_rate,
            mean_on=on_fraction * cycle,
            mean_off=(1.0 - on_fraction) * cycle,
        )
    elif kind == "sine":
        process = SinusoidalArrivals(
            arrival_rate,
            amplitude=take("amplitude", 0.5),
            period=take("period", 60.0),
            phase=take("phase", 0.0),
        )
    elif kind == "step":
        process = StepArrivals(
            arrival_rate,
            surge_factor=take("surge_factor", 3.0),
            surge_start=take("surge_start", 20.0),
            surge_end=take("surge_end", 40.0),
        )
    elif kind == "trace":
        raise ValueError(
            "trace arrivals are materialised by the runner (generate_trace + "
            "TraceReplayer); build TraceArrivals directly to replay explicit times"
        )
    else:
        known = ", ".join(k for k in ARRIVAL_KINDS if k != "trace")
        raise ValueError(f"unknown arrival kind {kind!r}; expected one of: {known}")
    if options:
        raise ValueError(
            f"unknown parameter(s) for arrival kind {kind!r}: {sorted(options)}"
        )
    return process
