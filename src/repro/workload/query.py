"""Workload units: queries and transactions.

The simulation system supports heterogeneous (multi-class) workloads
consisting of several query and transaction types (paper §4).  A *query* is a
transaction with a single database operation.  The classes below are plain
descriptions -- the execution layer (:mod:`repro.execution`) interprets them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "QueryClass",
    "Transaction",
    "JoinQuery",
    "ScanQuery",
    "UpdateStatement",
    "OltpTransaction",
]


class QueryClass(str, Enum):
    """Supported query/transaction types (paper §4, workload model)."""

    RELATION_SCAN = "relation-scan"
    CLUSTERED_INDEX_SCAN = "clustered-index-scan"
    UNCLUSTERED_INDEX_SCAN = "unclustered-index-scan"
    TWO_WAY_JOIN = "two-way-join"
    MULTI_WAY_JOIN = "multi-way-join"
    UPDATE = "update"
    OLTP = "oltp"


_transaction_ids = itertools.count(1)


@dataclass
class Transaction:
    """Base class for everything that enters the system.

    ``txn_id`` is globally unique; ``arrival_time`` is stamped by the workload
    generator and ``coordinator_pe`` by the router.
    """

    arrival_time: float = 0.0
    coordinator_pe: Optional[int] = None
    txn_id: int = field(default_factory=lambda: next(_transaction_ids))
    query_class: QueryClass = QueryClass.OLTP

    # Filled in at completion time by the execution layer.
    completion_time: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        """Observed response time (None while still running)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def read_only(self) -> bool:
        """Read-only transactions can use the one-phase commit optimisation."""
        return True


@dataclass
class ScanQuery(Transaction):
    """A single-relation scan/selection query."""

    relation: str = "A"
    selectivity: float = 0.01
    use_index: bool = True
    query_class: QueryClass = QueryClass.CLUSTERED_INDEX_SCAN


@dataclass
class JoinQuery(Transaction):
    """A two-way join query with selections on both inputs (paper §5.1).

    Both selections use clustered indices; their outputs are dynamically
    redistributed among the join processors chosen by the load balancing
    strategy.  The join result has the same cardinality as the scan output on
    the inner relation A.
    """

    inner_relation: str = "A"
    outer_relation: str = "B"
    scan_selectivity: float = 0.01
    result_fraction_of_inner: float = 1.0
    fudge_factor: float = 1.05
    query_class: QueryClass = QueryClass.TWO_WAY_JOIN

    # Decision recorded by the load balancing strategy, for analysis.
    chosen_degree: Optional[int] = None
    chosen_processors: tuple[int, ...] = ()
    overflow_pages: int = 0
    memory_wait_time: float = 0.0


@dataclass
class UpdateStatement(Transaction):
    """An update statement touching a set of tuples (with or without index)."""

    relation: str = "A"
    selectivity: float = 0.001
    use_index: bool = True
    query_class: QueryClass = QueryClass.UPDATE

    @property
    def read_only(self) -> bool:
        return False


@dataclass
class OltpTransaction(Transaction):
    """A debit-credit style OLTP transaction (four selects + updates)."""

    home_pe: Optional[int] = None
    tuple_accesses: int = 4
    query_class: QueryClass = QueryClass.OLTP

    @property
    def read_only(self) -> bool:
        return False
