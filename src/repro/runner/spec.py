"""Declarative scenario model: figures and ad-hoc sweeps as data.

A :class:`ScenarioSpec` holds one or more :class:`Sweep` blocks.  Each sweep
is a cartesian product over its axes (system sizes, arrival rates, scan
selectivities, OLTP placements, strategies or fixed degrees); expanding a
spec yields a flat tuple of :class:`PointSpec` records, each of which fully
describes one independent simulation run with primitive, picklable fields.
That makes points safe to ship to worker processes and stable to hash for
the on-disk result cache.

Seeding: every point carries an explicit seed.  By default the first
replicate of every point shares the spec's base seed (the paper fixes
``seed=42`` for every configuration, and this keeps the engine's tables
identical to the legacy serial loops).  Sweeps with ``reseed_per_point=True``
-- and every replicate beyond the first of a ``replicates > 1`` sweep --
instead derive a deterministic per-point seed from the base seed and the
point's *full* distinguishing coordinates (scenario, kind, system size,
strategy/degree, rate, selectivity, OLTP placement, arrival process, config
overrides and replicate index) via :func:`derive_seed`.  Deriving from the full coordinate
tuple rather than the (series label, x) pair matters: two points can share a
label and an x value while simulating different configurations (e.g. a rate
or placement axis that the label does not interpolate), and every replicate
must observe a different arrival stream.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config.parameters import REPLICATION_POLICIES, NodeClass, TopologyConfig
from repro.faults.plan import (
    FailuresEntry,
    canonical_failures as _canonical_failures,
    failures_label as _failures_label,
)
from repro.workload.arrivals import ARRIVAL_KINDS

__all__ = [
    "Sweep",
    "ScenarioSpec",
    "PointSpec",
    "derive_seed",
    "expand",
    "point_from_payload",
    "shard_timeline_point",
]

#: Kinds of point execution understood by the runner.  ``timeline`` runs an
#: open (possibly non-stationary) workload for a fixed simulated duration and
#: attaches a windowed time series to the result.
POINT_KINDS = ("multi", "single", "fixed-degree", "analytic", "timeline")

#: Named configuration builders (see ``repro.runner.runner.build_config``).
SCENARIO_BUILDERS = ("homogeneous", "memory-bound", "join-complexity", "mixed")

#: Axes a sweep may use as its x values.
X_AXES = ("num_pe", "selectivity_pct", "rate", "degree")

#: Sweep axes that :attr:`Sweep.perturb` may jitter per replicate.
PERTURBABLE_AXES = ("arrival_rate", "selectivity")

#: Queries per point when a single-user/fixed-degree sweep leaves
#: ``num_queries`` unset (shared with ``runner.run_point_spec`` for
#: hand-built points).
DEFAULT_NUM_QUERIES = {"single": 5, "fixed-degree": 2}

#: Window length (simulated seconds) when a timeline sweep leaves
#: ``timeline_window`` unset.
DEFAULT_TIMELINE_WINDOW = 1.0

#: Encoded hardware axes.  A node-classes axis entry is a tuple of class
#: encodings, each a tuple of (field, value) pairs for
#: :class:`~repro.config.parameters.NodeClass`, e.g.
#: ``((("name", "fast"), ("fraction", 0.5), ("mips_factor", 2.0)),)``.
#: A topology axis entry is a tuple of (field, value) pairs for
#: :class:`~repro.config.parameters.TopologyConfig`.  Everything stays
#: primitive so points remain picklable and JSON-round-trippable.
NodeClassesEntry = Tuple[Tuple[Tuple[str, object], ...], ...]
TopologyEntry = Tuple[Tuple[str, object], ...]


def _canonical_node_classes(entry) -> Optional[NodeClassesEntry]:
    """Normalise a node-classes entry; ``None`` when hardware-equivalent to
    the uniform system (all factors 1.0), so explicitly-default heterogeneous
    axes collapse onto the historical points -- same seeds, same cache keys,
    byte-identical outputs."""
    if entry is None:
        return None
    normalized = tuple(
        tuple((str(key), value) for key, value in node_class) for node_class in entry
    )
    for node_class in normalized:
        if not NodeClass(**dict(node_class)).is_default_hardware:
            return normalized
    return None


def _canonical_topology(entry) -> Optional[TopologyEntry]:
    """Normalise a topology entry; ``None`` when the topology is flat."""
    if entry is None:
        return None
    normalized = tuple((str(key), value) for key, value in entry)
    if TopologyConfig(**dict(normalized)).is_flat:
        return None
    return normalized


def _canonical_replication(entry) -> Optional[str]:
    """Normalise a replication axis entry; ``None`` for the single-copy
    database ("none" canonicalises to ``None``, so explicitly-unreplicated
    points share the historical points' seeds and cache keys)."""
    if entry is None:
        return None
    policy = str(entry)
    if policy == "none":
        return None
    if policy not in REPLICATION_POLICIES:
        raise ValueError(
            f"unknown replication policy {entry!r}; expected one of "
            f"{('none',) + REPLICATION_POLICIES}"
        )
    return policy


def _nodes_label(entry: Optional[NodeClassesEntry]) -> str:
    """Short series-label token for a (canonical) node-classes entry.

    Each class renders as ``name:size`` (count, or fraction as written), so
    two mixes of the same class at different sizes stay distinct series.
    """
    if not entry:
        return "uniform"
    parts = []
    for node_class in entry:
        attrs = dict(node_class)
        name = str(attrs.get("name", "?"))
        size = attrs.get("count", attrs.get("fraction"))
        parts.append(f"{name}:{size:g}" if size is not None else name)
    return "+".join(parts)


def _topology_label(entry: Optional[TopologyEntry]) -> str:
    """Short series-label token for a (canonical) topology entry."""
    if not entry:
        return "flat"
    attrs = dict(entry)
    racks = attrs.get("racks", 1)
    regions = attrs.get("regions", 1)
    if regions and int(regions) > 1:
        return f"{racks}r/{regions}g"
    return f"{racks}r"


def derive_seed(base_seed: int, *components: object) -> int:
    """Deterministic 31-bit seed derived from a base seed and coordinates.

    Stable across processes and Python versions (unlike ``hash``), so a
    point re-run anywhere reproduces the same arrival streams.
    """
    text = repr((int(base_seed),) + tuple(str(c) for c in components))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) & 0x7FFFFFFF


@dataclass(frozen=True)
class Sweep:
    """One axis-product of simulation points sharing a series template.

    ``None`` entries on the rate/selectivity/placement axes mean "use the
    scenario builder's default for that parameter".
    """

    kind: str = "multi"  # one of POINT_KINDS
    scenario: str = "homogeneous"  # one of SCENARIO_BUILDERS
    strategies: Tuple[str, ...] = ()
    system_sizes: Tuple[int, ...] = ()
    rates: Tuple[Optional[float], ...] = (None,)
    selectivities: Tuple[Optional[float], ...] = (None,)
    oltp_placements: Tuple[Optional[str], ...] = (None,)
    degrees: Tuple[int, ...] = ()
    x_axis: str = "num_pe"  # one of X_AXES
    series: str = "{strategy}"
    num_queries: Optional[int] = None  # single-user / fixed-degree points
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    reseed_per_point: bool = False
    #: Independent repetitions of every point; replicate 0 keeps the sweep's
    #: default seeding, replicates 1..n-1 get derived seeds.  Analytic points
    #: are deterministic and are never replicated.
    replicates: int = 1
    #: Arrival-process axis (``multi``/``timeline`` kinds): each entry is one
    #: of :data:`~repro.workload.arrivals.ARRIVAL_KINDS` or ``None`` for the
    #: scenario default (stationary Poisson).
    arrivals: Tuple[Optional[str], ...] = (None,)
    #: Shape parameters shared by every non-None arrival axis entry, e.g.
    #: ``(("surge_factor", 3.0), ("surge_start", 20.0))``.
    arrival_params: Tuple[Tuple[str, float], ...] = ()
    #: Window length (simulated seconds) for timeline points; ``None`` uses
    #: :data:`DEFAULT_TIMELINE_WINDOW`.
    timeline_window: Optional[float] = None
    #: Per-replicate workload jitter: ``(("arrival_rate", 0.1),)`` multiplies
    #: the rate axis of replicates >= 1 by a factor drawn uniformly from
    #: ``[1 - 0.1, 1 + 0.1]`` (derived-seed rng, so jitter is deterministic
    #: and collision-free).  Replicate 0 stays unperturbed, and the nominal
    #: axis value keeps labelling the (series, x) group, so confidence
    #: intervals then reflect workload noise on top of seed noise.
    perturb: Tuple[Tuple[str, float], ...] = ()
    #: Hardware axes: encoded :class:`NodeClass` mixes and
    #: :class:`TopologyConfig` tiers (see :data:`NodeClassesEntry` /
    #: :data:`TopologyEntry` above).  ``None`` entries keep the uniform
    #: hardware; entries that *encode* uniform hardware are canonicalised to
    #: ``None`` at expansion, so they share the historical points' seeds and
    #: cache keys.
    node_classes: Tuple[Optional[NodeClassesEntry], ...] = (None,)
    topologies: Tuple[Optional[TopologyEntry], ...] = (None,)
    #: Fault-plan axis: encoded :class:`~repro.faults.plan.FaultEvent`
    #: sequences (see :data:`~repro.faults.plan.FailuresEntry`).  ``None`` /
    #: empty entries mean fault-free execution and are canonicalised to
    #: ``None`` at expansion, so they produce the historical points
    #: unchanged (same seeds, same cache keys, byte-identical outputs).
    failures: Tuple[Optional[FailuresEntry], ...] = (None,)
    #: Replica-placement axis: ``None``/"none" (single copy, canonicalised to
    #: ``None`` at expansion -- same seeds, same cache keys, byte-identical
    #: outputs as the historical points), "mirror" or "chained".
    replication: Tuple[Optional[str], ...] = (None,)

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown sweep kind {self.kind!r}")
        if self.scenario not in SCENARIO_BUILDERS:
            raise ValueError(f"unknown scenario builder {self.scenario!r}")
        if self.x_axis not in X_AXES:
            raise ValueError(f"unknown x axis {self.x_axis!r}")
        if self.num_queries is not None and self.num_queries < 1:
            raise ValueError(f"num_queries must be >= 1, got {self.num_queries}")
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if self.kind in ("fixed-degree", "analytic"):
            if not self.degrees:
                raise ValueError(f"sweep kind {self.kind!r} requires degrees")
        elif not self.strategies:
            raise ValueError(f"sweep kind {self.kind!r} requires strategies")
        if not self.system_sizes:
            raise ValueError("a sweep needs at least one system size")
        if self.x_axis == "rate" and any(rate is None for rate in self.rates):
            raise ValueError("x_axis='rate' requires explicit rates")
        if self.x_axis == "selectivity_pct" and any(s is None for s in self.selectivities):
            raise ValueError("x_axis='selectivity_pct' requires explicit selectivities")
        if self.x_axis == "degree" and not self.degrees:
            raise ValueError("x_axis='degree' requires degrees")
        for kind in self.arrivals:
            if kind is not None and kind not in ARRIVAL_KINDS:
                raise ValueError(
                    f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
                )
        if any(kind is not None for kind in self.arrivals) and self.kind not in (
            "multi",
            "timeline",
        ):
            raise ValueError(
                f"arrival processes only apply to multi/timeline sweeps, not {self.kind!r}"
            )
        if "trace" in self.arrivals and self.kind != "timeline":
            # Only the timeline execution branch materialises and replays a
            # trace; accepting it elsewhere would silently run plain Poisson
            # arrivals under a "[trace]" label.
            raise ValueError("arrival kind 'trace' requires a timeline sweep")
        if self.arrival_params and all(kind is None for kind in self.arrivals):
            raise ValueError(
                "arrival_params given but no arrival process set; they would "
                "be silently dropped (add an arrivals axis entry)"
            )
        if self.timeline_window is not None:
            if self.kind != "timeline":
                raise ValueError("timeline_window only applies to timeline sweeps")
            if self.timeline_window <= 0:
                raise ValueError(
                    f"timeline_window must be positive, got {self.timeline_window}"
                )
        for entry in self.node_classes:
            # Constructing the classes validates the encoding (unknown keys,
            # bad fractions/factors) at declaration time, not in a worker.
            _canonical_node_classes(entry)
        for entry in self.topologies:
            _canonical_topology(entry)
        for entry in self.failures:
            # Decoding constructs the FaultEvents, validating kinds/values at
            # declaration time, not in a worker.
            _canonical_failures(entry)
        for entry in self.replication:
            _canonical_replication(entry)
        for axis, fraction in self.perturb:
            if axis not in PERTURBABLE_AXES:
                raise ValueError(
                    f"unknown perturb axis {axis!r}; expected one of {PERTURBABLE_AXES}"
                )
            if not 0.0 < float(fraction) < 1.0:
                raise ValueError(f"perturb fraction must be in (0, 1), got {fraction}")
            if axis == "arrival_rate" and any(rate is None for rate in self.rates):
                raise ValueError(
                    "perturb='arrival_rate' requires explicit rates "
                    "(the scenario default rate cannot be jittered)"
                )
            if axis == "selectivity" and any(s is None for s in self.selectivities):
                raise ValueError(
                    "perturb='selectivity' requires explicit selectivities"
                )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named experiment declared as data: sweeps plus shared run limits.

    ``measured_joins``/``max_simulated_time`` of ``None`` defer to the
    environment-overridable defaults of :mod:`repro.experiments.base` at
    execution time.  ``extra_tables`` are post-processors rendering
    additional report tables from the finished
    :class:`~repro.experiments.base.ExperimentResult` (e.g. the Fig. 7
    degree annotations); they run in the parent process only.
    """

    name: str
    title: str
    x_label: str
    sweeps: Tuple[Sweep, ...] = ()
    measured_joins: Optional[int] = None
    warmup_joins: Optional[int] = None
    max_simulated_time: Optional[float] = None
    seed: int = 42
    extra_tables: Tuple[Callable[["object"], str], ...] = field(
        default_factory=tuple, compare=False
    )
    #: For non-simulated scenarios (the Fig. 4 parameter table): a renderer
    #: the CLI prints instead of the sweep table when the spec has no points.
    static_table: Optional[Callable[[], str]] = field(default=None, compare=False)

    def points(self) -> Tuple["PointSpec", ...]:
        return expand(self)

    def with_limits(
        self,
        measured_joins: Optional[int] = None,
        max_simulated_time: Optional[float] = None,
    ) -> "ScenarioSpec":
        """Copy with run limits replaced (``None`` keeps the current value)."""
        updates = {}
        if measured_joins is not None:
            updates["measured_joins"] = measured_joins
        if max_simulated_time is not None:
            updates["max_simulated_time"] = max_simulated_time
        return replace(self, **updates) if updates else self

    def with_replicates(self, replicates: int) -> "ScenarioSpec":
        """Copy with every sweep set to ``replicates`` repetitions per point."""
        if replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {replicates}")
        return replace(
            self,
            sweeps=tuple(replace(sweep, replicates=replicates) for sweep in self.sweeps),
        )


@dataclass(frozen=True)
class PointSpec:
    """One fully-resolved simulation point.

    Every field is a primitive (or tuple of primitives), so a point can be
    pickled to a worker process and hashed for the result cache.  The
    ``figure``/``series``/``x`` fields are presentation-only; the remaining
    fields determine the simulation outcome and form the cache key (see
    :meth:`cache_payload`).
    """

    figure: str
    series: str
    x: float
    kind: str
    scenario: str
    num_pe: int
    seed: int
    strategy: Optional[str] = None
    degree: Optional[int] = None
    rate: Optional[float] = None
    selectivity: Optional[float] = None
    oltp_placement: Optional[str] = None
    num_queries: Optional[int] = None
    measured_joins: Optional[int] = None
    warmup_joins: Optional[int] = None
    max_simulated_time: Optional[float] = None
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    #: Replicate index within the sweep (0 for unreplicated points).  Part of
    #: the cache key: two replicates are distinct measurements even if a seed
    #: derivation change ever made their seeds collide.
    replicate: int = 0
    #: Arrival process of the point's workload classes (``None`` = the
    #: scenario default, stationary Poisson) plus its shape parameters.
    arrival_kind: Optional[str] = None
    arrival_params: Tuple[Tuple[str, float], ...] = ()
    #: Window length for timeline points (``None`` for other kinds).
    timeline_window: Optional[float] = None
    #: Canonical hardware axes of the point (``None`` = uniform / flat; see
    #: :data:`NodeClassesEntry` / :data:`TopologyEntry`).
    node_classes: Optional[NodeClassesEntry] = None
    topology: Optional[TopologyEntry] = None
    #: Canonical fault plan of the point (``None`` = fault-free; see
    #: :data:`~repro.faults.plan.FailuresEntry`).
    failures: Optional[FailuresEntry] = None
    #: Canonical replica-placement policy (``None`` = single copy).
    replication: Optional[str] = None

    def cache_payload(self) -> Tuple[Tuple[str, object], ...]:
        """The (key, value) pairs that determine this point's result."""
        return (
            ("kind", self.kind),
            ("scenario", self.scenario),
            ("num_pe", self.num_pe),
            ("seed", self.seed),
            ("strategy", self.strategy),
            ("degree", self.degree),
            ("rate", self.rate),
            ("selectivity", self.selectivity),
            ("oltp_placement", self.oltp_placement),
            ("num_queries", self.num_queries),
            ("measured_joins", self.measured_joins),
            ("warmup_joins", self.warmup_joins),
            ("max_simulated_time", self.max_simulated_time),
            ("config_overrides", self.config_overrides),
            ("replicate", self.replicate),
            ("arrival_kind", self.arrival_kind),
            ("arrival_params", self.arrival_params),
            ("timeline_window", self.timeline_window),
            ("node_classes", self.node_classes),
            ("topology", self.topology),
            ("failures", self.failures),
            ("replication", self.replication),
        )


def point_from_payload(payload) -> PointSpec:
    """Rebuild a :class:`PointSpec` from a JSON-decoded ``asdict`` payload.

    JSON round-trips turn the tuple-valued fields (``config_overrides``,
    ``arrival_params``, ``node_classes``, ``topology``, ``failures``) into
    (nested) lists;
    normalising them back keeps rebuilt points equal to the originals (and
    hashable by the result cache with byte-identical keys).
    """
    data = dict(payload)
    data["config_overrides"] = tuple(
        (str(path), value) for path, value in (data.get("config_overrides") or ())
    )
    data["arrival_params"] = tuple(
        (str(name), value) for name, value in (data.get("arrival_params") or ())
    )
    node_classes = data.get("node_classes")
    data["node_classes"] = (
        None
        if node_classes is None
        else tuple(
            tuple((str(key), value) for key, value in node_class)
            for node_class in node_classes
        )
    )
    topology = data.get("topology")
    data["topology"] = (
        None
        if topology is None
        else tuple((str(key), value) for key, value in topology)
    )
    failures = data.get("failures")
    data["failures"] = (
        None
        if failures is None
        else tuple(
            tuple((str(key), value) for key, value in event) for event in failures
        )
    )
    return PointSpec(**data)


def shard_timeline_point(
    point: PointSpec, shard_windows: int
) -> Tuple[PointSpec, ...]:
    """Split a long timeline point into *prefix-run* window-range subtasks.

    A deterministic event-driven run has the prefix property: everything
    that happens before simulated time ``t`` is independent of the horizon,
    so a run truncated at ``t`` produces exactly the windows ``[0, t)`` of
    the full run.  Shard ``k`` is therefore the same point with
    ``max_simulated_time`` clamped to the ``k * shard_windows``-th window
    boundary -- a perfectly ordinary :class:`PointSpec` with its own cache
    key -- and the final shard is the *original* point (full horizon, same
    cache key), so stitching the shards back in expansion order degenerates
    to taking the longest finished prefix and the stitched result is
    trivially byte-identical to an unsharded run.

    The price is duplicated prefix work (roughly ``(s + 1) / 2`` times the
    full run for ``s`` shards); the payoff is that a coordinator can stream
    a long point's windows while it runs and spread the prefixes across
    idle workers, instead of watching one worker go dark for the whole
    horizon.  Points that are not timelines, have no resolved duration, or
    fit within ``shard_windows`` windows shard to themselves.
    """
    if shard_windows < 1 or point.kind != "timeline" or point.max_simulated_time is None:
        return (point,)
    window = (
        point.timeline_window
        if point.timeline_window is not None
        else DEFAULT_TIMELINE_WINDOW
    )
    duration = float(point.max_simulated_time)
    total_windows = math.ceil(duration / window - 1e-9)
    if total_windows <= shard_windows:
        return (point,)
    shards = []
    windows = shard_windows
    while windows < total_windows:
        shards.append(replace(point, max_simulated_time=windows * window))
        windows += shard_windows
    shards.append(point)
    return tuple(shards)


def _series_label(sweep: Sweep, **context: object) -> str:
    return sweep.series.format(**context)


def _canonical_x(value: float) -> float:
    """Round an x value to 12 significant digits.

    Derived x values (e.g. ``selectivity * 100.0``) can land one ulp apart
    for coordinates that are meant to be the same table row; canonicalising
    at expansion time keeps (series, x) grouping exact.
    """
    return float(f"{float(value):.12g}")


def _x_value(sweep: Sweep, num_pe: int, selectivity, rate, degree) -> float:
    if sweep.x_axis == "num_pe":
        raw = float(num_pe)
    elif sweep.x_axis == "selectivity_pct":
        raw = float(selectivity) * 100.0
    elif sweep.x_axis == "rate":
        raw = float(rate)
    else:
        raw = float(degree)
    return _canonical_x(raw)


def _point_seed(
    spec: ScenarioSpec,
    sweep: Sweep,
    *,
    num_pe: int,
    strategy: Optional[str],
    degree: Optional[int],
    rate: Optional[float],
    selectivity: Optional[float],
    placement: Optional[str],
    arrival: Optional[str],
    replicate: int,
    node_classes: Optional[NodeClassesEntry] = None,
    topology: Optional[TopologyEntry] = None,
    failures: Optional[FailuresEntry] = None,
    replication: Optional[str] = None,
) -> int:
    """Seed for one point: base seed, or a collision-free derived seed.

    Replicate 0 of a sweep without ``reseed_per_point`` keeps the spec's base
    seed -- replicated runs therefore contain the legacy fixed-seed run as
    their first replicate (and share its cache entry).  Every other point
    derives from the full distinguishing coordinate tuple, never from the
    (series label, x) pair, which can be shared by distinct configurations.

    The hardware and fault axes join the component tuple only when
    non-default: appending them unconditionally would change every existing
    derived seed (and with it the committed golden figures).
    """
    if replicate == 0 and not sweep.reseed_per_point:
        return spec.seed
    components = [
        sweep.kind,
        sweep.scenario,
        num_pe,
        strategy,
        degree,
        rate,
        selectivity,
        placement,
        arrival,
        sweep.config_overrides,
        replicate,
    ]
    if node_classes is not None or topology is not None:
        components.extend([node_classes, topology])
    if failures is not None:
        components.append(failures)
    if replication is not None:
        components.append(replication)
    return derive_seed(spec.seed, *components)


def _perturbed_axes(
    spec: ScenarioSpec,
    sweep: Sweep,
    *,
    rate: Optional[float],
    selectivity: Optional[float],
    replicate: int,
    coordinates: Tuple[object, ...],
) -> Tuple[Optional[float], Optional[float]]:
    """Jittered (rate, selectivity) for one replicate of one point.

    Replicate 0 keeps the nominal axes (so a perturbed sweep still embeds the
    unperturbed run); replicates >= 1 multiply each perturbed axis by a
    factor drawn uniformly from ``[1 - fraction, 1 + fraction]`` using a rng
    seeded from the point's full coordinates -- deterministic across
    processes and distinct per replicate.
    """
    if replicate == 0 or not sweep.perturb:
        return rate, selectivity
    rng = random.Random(derive_seed(spec.seed, "perturb", *coordinates, replicate))
    # Fixed draw order (sorted axis names) keeps the jitter independent of
    # the declaration order of ``perturb``.
    for axis, fraction in sorted(sweep.perturb):
        factor = rng.uniform(1.0 - float(fraction), 1.0 + float(fraction))
        if axis == "arrival_rate":
            rate = float(rate) * factor  # type: ignore[arg-type]
        else:
            selectivity = float(selectivity) * factor  # type: ignore[arg-type]
    return rate, selectivity


def expand(spec: ScenarioSpec) -> Tuple[PointSpec, ...]:
    """Expand a scenario into its flat, ordered tuple of points.

    Axis nesting (outer to inner): system size, selectivity, rate, OLTP
    placement, arrival process, then strategy/degree -- matching the
    iteration order of the legacy hand-written figure loops, so series
    appear in the same order in the rendered tables.

    Run limits left as ``None`` on the spec are resolved *here* (against the
    ``REPRO_BENCH_JOINS``/``REPRO_BENCH_TIME_LIMIT`` environment defaults),
    not in the worker, so the resolved values are part of every point and of
    its cache key -- runs under different environment settings never collide
    on one cache entry.  For timeline sweeps the resolved time limit is the
    run *duration* (timeline points have no completion target).

    Per-replicate perturbation (``Sweep.perturb``) jitters the rate /
    selectivity stored on the point while the series label and x keep the
    nominal values, so all replicates of a coordinate still group into one
    table cell.
    """
    from repro.experiments.base import default_measured_joins, default_time_limit

    measured = spec.measured_joins if spec.measured_joins is not None else default_measured_joins()
    warmup = spec.warmup_joins if spec.warmup_joins is not None else max(5, measured // 5)
    limit = (
        spec.max_simulated_time if spec.max_simulated_time is not None else default_time_limit()
    )
    if limit <= 0 and any(sweep.kind == "timeline" for sweep in spec.sweeps):
        # Timeline points run for exactly ``limit`` seconds; failing here
        # beats a PointExecutionError from inside a worker process.
        raise ValueError(
            "timeline sweeps need a positive run duration, got "
            f"max_simulated_time={limit}"
        )
    points: List[PointSpec] = []
    for sweep in spec.sweeps:
        inner: Sequence[object] = (
            sweep.degrees if sweep.kind in ("fixed-degree", "analytic") else sweep.strategies
        )
        window = (
            (
                sweep.timeline_window
                if sweep.timeline_window is not None
                else DEFAULT_TIMELINE_WINDOW
            )
            if sweep.kind == "timeline"
            else None
        )
        # Canonicalise the hardware axes once per sweep: encodings of uniform
        # hardware / flat topologies collapse to None here, so they produce
        # the very same points (seeds, cache keys, bytes) as the axis default.
        # They join the arrival axis in one flat product to keep the historic
        # loop nesting (and with it the point order of existing scenarios).
        workload_axes = [
            (
                arrival,
                _canonical_node_classes(raw_classes),
                _canonical_topology(raw_topology),
                _canonical_failures(raw_failures),
                _canonical_replication(raw_replication),
            )
            for arrival in sweep.arrivals
            for raw_classes in sweep.node_classes
            for raw_topology in sweep.topologies
            for raw_failures in sweep.failures
            for raw_replication in sweep.replication
        ]
        for num_pe in sweep.system_sizes:
            for selectivity in sweep.selectivities:
                for rate in sweep.rates:
                    for placement in sweep.oltp_placements:
                        for (
                            arrival,
                            node_classes_entry,
                            topology_entry,
                            failures_entry,
                            replication_entry,
                        ) in workload_axes:
                            for member in inner:
                                strategy = None
                                degree = None
                                if sweep.kind in ("fixed-degree", "analytic"):
                                    degree = int(member)  # type: ignore[arg-type]
                                    if degree > num_pe:
                                        continue
                                else:
                                    strategy = str(member)
                                x = _x_value(sweep, num_pe, selectivity, rate, degree)
                                label = _series_label(
                                    sweep,
                                    strategy=strategy,
                                    degree=degree,
                                    num_pe=num_pe,
                                    rate=rate,
                                    selectivity=selectivity,
                                    selectivity_pct=(
                                        selectivity * 100.0
                                        if selectivity is not None
                                        else None
                                    ),
                                    placement=placement,
                                    arrival=arrival,
                                    nodes=_nodes_label(node_classes_entry),
                                    topology=_topology_label(topology_entry),
                                    failures=_failures_label(failures_entry),
                                    replication=replication_entry or "none",
                                )
                                if sweep.num_queries is not None:
                                    num_queries = sweep.num_queries
                                else:
                                    num_queries = DEFAULT_NUM_QUERIES.get(sweep.kind, 5)
                                # Analytic points are deterministic model
                                # evaluations: replicating them would just
                                # repeat the identical number.
                                replicates = (
                                    1 if sweep.kind == "analytic" else sweep.replicates
                                )
                                for replicate in range(replicates):
                                    coordinates = (
                                        sweep.kind,
                                        sweep.scenario,
                                        num_pe,
                                        strategy,
                                        degree,
                                        rate,
                                        selectivity,
                                        placement,
                                        arrival,
                                        sweep.config_overrides,
                                    )
                                    if (
                                        node_classes_entry is not None
                                        or topology_entry is not None
                                    ):
                                        coordinates += (
                                            node_classes_entry,
                                            topology_entry,
                                        )
                                    if failures_entry is not None:
                                        coordinates += (failures_entry,)
                                    if replication_entry is not None:
                                        coordinates += (replication_entry,)
                                    seed = _point_seed(
                                        spec,
                                        sweep,
                                        num_pe=num_pe,
                                        strategy=strategy,
                                        degree=degree,
                                        rate=rate,
                                        selectivity=selectivity,
                                        placement=placement,
                                        arrival=arrival,
                                        replicate=replicate,
                                        node_classes=node_classes_entry,
                                        topology=topology_entry,
                                        failures=failures_entry,
                                        replication=replication_entry,
                                    )
                                    point_rate, point_selectivity = _perturbed_axes(
                                        spec,
                                        sweep,
                                        rate=rate,
                                        selectivity=selectivity,
                                        replicate=replicate,
                                        coordinates=coordinates,
                                    )
                                    points.append(
                                        PointSpec(
                                            figure=spec.name,
                                            series=label,
                                            x=x,
                                            kind=sweep.kind,
                                            scenario=sweep.scenario,
                                            num_pe=num_pe,
                                            seed=seed,
                                            strategy=strategy,
                                            degree=degree,
                                            rate=point_rate,
                                            selectivity=point_selectivity,
                                            oltp_placement=placement,
                                            num_queries=(
                                                None
                                                if sweep.kind
                                                in ("multi", "analytic", "timeline")
                                                else num_queries
                                            ),
                                            measured_joins=(
                                                measured if sweep.kind == "multi" else None
                                            ),
                                            warmup_joins=(
                                                warmup if sweep.kind == "multi" else None
                                            ),
                                            max_simulated_time=(
                                                limit
                                                if sweep.kind in ("multi", "timeline")
                                                else None
                                            ),
                                            config_overrides=sweep.config_overrides,
                                            replicate=replicate,
                                            arrival_kind=arrival,
                                            arrival_params=(
                                                sweep.arrival_params
                                                if arrival is not None
                                                else ()
                                            ),
                                            timeline_window=window,
                                            node_classes=node_classes_entry,
                                            topology=topology_entry,
                                            failures=failures_entry,
                                            replication=replication_entry,
                                        )
                                    )
    return tuple(points)
