"""Work-queue worker daemon.

A :class:`Worker` drains any :class:`~repro.runner.backends.base.QueueBackend`
-- the shared-directory filesystem queue, or an HTTP coordinator reached
with ``--backend http --url`` -- and is oblivious to the transport: it
atomically claims one task at a time, executes the point through the same
``execute_point``/``to_dict`` path as :class:`~repro.runner.runner.ParallelRunner`
(so results are bit-identical no matter which driver ran them), stores the
result in the queue's result store and marks the task done.

While a task runs, a daemon thread refreshes the lease heartbeat every
``lease_seconds / 4``; if the worker dies, its lease goes stale and another
worker reclaims the task (immediately when the dead worker lived on the
same host, after the lease timeout otherwise).  A task that raises consumes
one unit of its retry budget and is released for another attempt; once the
budget is exhausted the queue reports it as failed.

Interruption (SIGTERM via the CLI handler, or Ctrl-C) releases the current
lease without consuming a retry, so a killed worker's task is re-run -- not
lost, and not double-counted -- by whoever claims it next.

Transport errors and filesystem hiccups look alike here:
:class:`urllib.error.URLError` subclasses :class:`OSError`, so the
heartbeat thread rides out a coordinator restart exactly like a flaky
shared mount.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.runner.backends.base import ClaimedTask, QueueBackend
from repro.runner.runner import PointExecutionError, execute_point_checked
from repro.simulation.results import SimulationResult

__all__ = ["Worker", "WorkerStats"]


@dataclass
class WorkerStats:
    """What one :meth:`Worker.run` call did."""

    executed: int = 0  # points simulated by this worker
    satisfied: int = 0  # tasks completed straight from the result store
    failed: int = 0  # attempts that raised (retry budget permitting)

    @property
    def claimed(self) -> int:
        return self.executed + self.satisfied + self.failed


class _Heartbeat(threading.Thread):
    """Refreshes one task's lease until stopped."""

    def __init__(self, queue: QueueBackend, task_id: str, worker_id: str, interval: float):
        super().__init__(name=f"heartbeat-{task_id[:8]}", daemon=True)
        self._queue = queue
        self._task_id = task_id
        self._worker_id = worker_id
        self._interval = interval
        # Not named ``_stop``: that would shadow threading.Thread's internal
        # ``_stop()`` method and break ``join``.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._interval):
            try:
                if not self._queue.heartbeat(self._task_id, self._worker_id):
                    return  # lease lost (reclaimed): completion stays safe
            except OSError:
                pass  # transient FS hiccup: try again next interval

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self._interval + 1.0)


class Worker:
    """Claims and executes queue tasks until the queue drains."""

    def __init__(
        self,
        queue: QueueBackend,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.5,
    ):
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be positive, got {poll_interval}")
        self.queue = queue
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_interval = poll_interval
        self.heartbeat_interval = max(0.1, queue.lease_seconds / 4.0)

    def run(self, max_tasks: Optional[int] = None) -> WorkerStats:
        """Drain the queue; returns after ``max_tasks`` claims at the latest.

        Without ``max_tasks`` the worker runs until every task is done or
        failed -- including tasks currently leased to other workers, which
        it waits on (and reclaims if their leases go stale).
        """
        if max_tasks is not None and max_tasks < 1:
            raise ValueError(f"max_tasks must be >= 1, got {max_tasks}")
        stats = WorkerStats()
        # Memo of terminal task ids, filled in by claim_next's scans: repeat
        # scans of a large queue skip the finished tasks instead of
        # re-reading every record, and the drain check below is a cheap
        # directory listing against the memo instead of a full status scan.
        finished: set = set()
        while max_tasks is None or stats.claimed < max_tasks:
            claimed = self.queue.claim_next(self.worker_id, finished)
            if claimed is None:
                # Drained when every task is done or failed.  The memo is the
                # cheap local-scan check; backends that claim server-side
                # (HTTP) never fill it, so fall back to one status probe.
                if len(finished) >= len(self.queue.task_ids()):
                    break
                if self.queue.status().unfinished == 0:
                    break
                time.sleep(self.poll_interval)
                continue
            self._run_claimed(claimed, stats)
        return stats

    def _run_claimed(self, task: ClaimedTask, stats: WorkerStats) -> None:
        task_id = task.task_id
        cached = self.queue.load_result(task.point)
        if cached is not None:
            # Result already in the store (an interrupted worker got this
            # far, or a previous dispatch shared the point): just mark done.
            self.queue.complete(task_id, task.point, None, self.worker_id)
            stats.satisfied += 1
            return
        heartbeat = _Heartbeat(self.queue, task_id, self.worker_id, self.heartbeat_interval)
        heartbeat.start()
        try:
            data = execute_point_checked(task.point)
        except PointExecutionError as exc:
            heartbeat.stop()
            self.queue.record_failure(task_id, self.worker_id, str(exc))
            stats.failed += 1
            return
        except BaseException:
            # Interrupted (SIGTERM/SystemExit/KeyboardInterrupt): hand the
            # task back without consuming a retry.
            heartbeat.stop()
            self.queue.release(task_id, self.worker_id)
            raise
        heartbeat.stop()
        result = SimulationResult.from_dict(data)
        self.queue.complete(task_id, task.point, result, self.worker_id)
        stats.executed += 1
