"""On-disk result cache for simulation points.

Each point is stored as one JSON file named by the SHA-256 of its
execution-relevant fields (configuration, strategy, workload axes, seed and
run limits -- see :meth:`repro.runner.spec.PointSpec.cache_payload`).  The
presentation fields (figure name, series label, x value) are deliberately
excluded, so the same simulation shared by two figures or an ad-hoc sweep is
computed once.

The cache directory defaults to ``$REPRO_CACHE_DIR``, falling back to
``$XDG_CACHE_HOME/repro-lb`` and then ``~/.cache/repro-lb``.  Files are
written atomically (temp file + rename) so concurrent runs never observe a
half-written entry; unreadable or stale-format entries are treated as
misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Optional, Union

from repro.runner.spec import PointSpec
from repro.simulation.results import SimulationResult

__all__ = ["ResultCache", "default_cache_dir", "point_key", "write_json_atomic"]

#: Bump when the result schema or point semantics change: old entries miss.
#: v2: ``replicate`` joined the point cache payload.
#: v3: arrival process axes + timeline window joined the payload, results
#: may carry a ``timeline`` time series, and derived replicate seeds now
#: cover the arrival coordinate.
#: v4: heterogeneous hardware -- ``node_classes``/``topology`` joined the
#: payload (canonicalised to ``None`` on uniform points), and timeline
#: windows may carry per-node-class utilisation tuples.
#: v5: fault injection -- the ``failures`` fault-plan axis joined the
#: payload (canonicalised to ``None`` on fault-free points), and timeline
#: windows carry per-window ``availability``/``anomaly`` fields.
#: v6: replication & failover -- the ``replication`` axis joined the payload
#: (canonicalised to ``None`` on single-copy points), and timeline windows
#: carry a per-window ``effective_availability`` field.
CACHE_FORMAT_VERSION = 6


def write_json_atomic(path: Path, payload: dict) -> None:
    """Write JSON via a unique temp file + atomic rename.

    The temp name embeds pid *and* a uuid: the pid alone collides for
    concurrent threads of one process (and for pid-recycling across hosts
    on a shared mount).  The final rename is atomic, so concurrent writers
    of one path can never interleave partial content; readers either see
    the old complete file or the new complete file.
    """
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def point_key(point: PointSpec) -> str:
    """The host-independent cache/task key of a simulation point.

    Every result store and every queue backend -- filesystem, in-memory,
    HTTP -- addresses a point by this key, so a task id computed by a
    dispatching client names the same work on the coordinator and the same
    result file in a shared cache.
    """
    payload = {"version": CACHE_FORMAT_VERSION, "point": point.cache_payload()}
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-lb"


class ResultCache:
    """Maps :class:`PointSpec` keys to :class:`SimulationResult` JSON files."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def key(self, point: PointSpec) -> str:
        return point_key(point)

    def path(self, point: PointSpec) -> Path:
        return self.root / f"{self.key(point)}.json"

    def get(self, point: PointSpec) -> Optional[SimulationResult]:
        path = self.path(point)
        try:
            data = json.loads(path.read_text())
            result = SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, point: PointSpec, result: SimulationResult) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(point)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "point": point.cache_payload(),
            "figure": point.figure,
            "series": point.series,
            "x": point.x,
            "result": result.to_dict(),
        }
        write_json_atomic(path, payload)
        return path

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.root.glob("*.json"))
        except OSError:
            return 0
