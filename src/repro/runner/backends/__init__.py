"""Pluggable work-distribution backends behind the ``QueueBackend`` protocol.

Three conforming implementations:

* :class:`~repro.runner.backends.filesystem.FilesystemBackend` -- durable
  queue in a (possibly shared) directory; the historical ``WorkQueue``.
* :class:`~repro.runner.backends.memory.MemoryBackend` -- lock-protected
  in-process queue, held by the ``repro-lb serve`` coordinator.
* :class:`~repro.runner.backends.http.HttpBackend` -- client of a running
  coordinator; workers on any machine, no shared mount.

:func:`make_backend` resolves a user-facing target (queue directory or
coordinator URL) to the right implementation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.runner.backends.base import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    ClaimedTask,
    EnqueueSummary,
    QueueBackend,
    QueueStatus,
    TaskRecord,
)
from repro.runner.backends.filesystem import FilesystemBackend
from repro.runner.backends.http import HttpBackend
from repro.runner.backends.memory import MemoryBackend

__all__ = [
    "QueueBackend",
    "FilesystemBackend",
    "MemoryBackend",
    "HttpBackend",
    "TaskRecord",
    "ClaimedTask",
    "EnqueueSummary",
    "QueueStatus",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "make_backend",
]


def make_backend(
    target: Union[str, Path, QueueBackend],
    lease_seconds: Optional[float] = None,
) -> QueueBackend:
    """Resolve a queue target to a backend.

    An existing backend passes through untouched; an ``http(s)://`` URL
    becomes an :class:`HttpBackend` (whose lease comes from the coordinator,
    so ``lease_seconds`` is ignored); anything else is a queue directory.
    """
    if isinstance(target, QueueBackend):
        return target
    text = str(target)
    if text.startswith(("http://", "https://")):
        return HttpBackend(text)
    return FilesystemBackend(
        target,
        lease_seconds=DEFAULT_LEASE_SECONDS if lease_seconds is None else lease_seconds,
    )
