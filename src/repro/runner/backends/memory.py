"""In-memory :class:`~repro.runner.backends.base.QueueBackend`.

This is the queue the ``repro-lb serve`` coordinator holds: every task
record, lease, retry ledger and result lives in process memory behind one
re-entrant lock, so the (threaded) HTTP handlers mutate a consistent queue
without filesystem round trips.  The semantics mirror the filesystem
backend exactly -- same terminal states, same lease/heartbeat/staleness
rules including the dead-pid fast path for claimants on the coordinator's
own host -- and the shared conformance suite runs against both.

It is also usable stand-alone (tests, single-process experiments): the
``results`` adapter quacks like a :class:`~repro.runner.cache.ResultCache`
(``get``/``put``/``key``/``hits``/``misses``/``root``), storing results as
their ``to_dict()`` payloads so a stored-and-reloaded result round-trips
through exactly the representation the on-disk cache and the HTTP transport
use.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.runner.backends.base import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    EnqueueSummary,
    QueueBackend,
    TaskRecord,
    pid_alive,
)
from repro.runner.cache import point_key
from repro.runner.spec import PointSpec
from repro.simulation.results import SimulationResult

__all__ = ["MemoryBackend", "MemoryResults"]


class MemoryResults:
    """Dict-backed result store with the :class:`ResultCache` surface.

    Results are held as their JSON payloads (``SimulationResult.to_dict``)
    and rehydrated on ``get``: the store round-trips through the same
    representation as the on-disk cache and the HTTP transport, so a result
    served from memory is field-identical to one served from disk.
    """

    def __init__(self, lock: Optional[threading.RLock] = None):
        self._lock = lock or threading.RLock()
        self._payloads: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.root = "<memory>"

    def key(self, point: PointSpec) -> str:
        return point_key(point)

    def get(self, point: PointSpec) -> Optional[SimulationResult]:
        with self._lock:
            payload = self._payloads.get(self.key(point))
            if payload is None:
                self.misses += 1
                return None
            self.hits += 1
            return SimulationResult.from_dict(payload)

    def put(self, point: PointSpec, result: SimulationResult) -> str:
        key = self.key(point)
        with self._lock:
            self._payloads[key] = result.to_dict()
        return key

    def get_payload(self, task_id: str) -> Optional[dict]:
        """The stored raw result payload, for serving over HTTP."""
        with self._lock:
            return self._payloads.get(task_id)

    def put_payload(self, task_id: str, payload: dict) -> None:
        with self._lock:
            self._payloads[task_id] = payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._payloads)


class MemoryBackend(QueueBackend):
    """Lock-protected in-process queue with filesystem-backend semantics."""

    def __init__(self, lease_seconds: float = DEFAULT_LEASE_SECONDS):
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.lease_seconds = float(lease_seconds)
        self._lock = threading.RLock()
        self._tasks: Dict[str, TaskRecord] = {}
        self._leases: Dict[str, Dict[str, object]] = {}
        self._done: Dict[str, Dict[str, object]] = {}
        self._failed: Dict[str, Dict[str, object]] = {}
        self._results = MemoryResults(self._lock)
        self._host = socket.gethostname()

    @property
    def results(self) -> MemoryResults:
        return self._results

    @property
    def lock(self) -> threading.RLock:
        """The backend's lock, shared with coordinator-level bookkeeping."""
        return self._lock

    def describe(self) -> str:
        return "<memory>"

    # -- enqueue -------------------------------------------------------------------
    def enqueue(
        self, points: Sequence[PointSpec], max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> EnqueueSummary:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        enqueued = already_queued = already_done = 0
        seen: set = set()
        with self._lock:
            for point in points:
                task_id = self.task_id(point)
                if task_id in seen:
                    continue
                seen.add(task_id)
                created = task_id not in self._tasks
                if created:
                    self._tasks[task_id] = TaskRecord(
                        task_id=task_id,
                        point=point,
                        max_attempts=int(max_attempts),
                        enqueued_at=time.time(),
                    )
                if task_id in self._done:
                    already_done += 1
                elif self._results.get_payload(task_id) is not None:
                    # Pre-seeded result (e.g. a re-submitted sweep): mark it
                    # done so no worker wastes a slot re-running it.
                    self.mark_done(task_id, worker="dispatch", attempts=0)
                    already_done += 1
                elif created:
                    enqueued += 1
                else:
                    already_queued += 1
        return EnqueueSummary(
            enqueued=enqueued, already_queued=already_queued, already_done=already_done
        )

    # -- task inspection -----------------------------------------------------------
    def task_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._tasks)

    def load_task(self, task_id: str) -> Optional[TaskRecord]:
        with self._lock:
            return self._tasks.get(task_id)

    def is_done(self, task_id: str) -> bool:
        with self._lock:
            return task_id in self._done

    def attempts(self, task_id: str) -> int:
        with self._lock:
            data = self._failed.get(task_id)
            return int(data["attempts"]) if data else 0

    def last_error(self, task_id: str) -> Optional[str]:
        with self._lock:
            data = self._failed.get(task_id)
            if not data or not data["errors"]:
                return None
            return str(data["errors"][-1]["error"])

    # -- leases --------------------------------------------------------------------
    def _lease_is_stale(self, lease: Dict[str, object], now: Optional[float] = None) -> bool:
        now = time.time() if now is None else now
        if lease.get("host") == self._host:
            pid = lease.get("pid")
            if isinstance(pid, int) and not pid_alive(pid):
                return True
        return now - float(lease.get("heartbeat_at", 0.0)) > self.lease_seconds

    def lease_state(self, task_id: str, now: Optional[float] = None) -> Optional[str]:
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None:
                return None
            return "stale" if self._lease_is_stale(lease, now) else "running"

    def try_claim(
        self,
        task_id: str,
        worker: str,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> bool:
        import os

        with self._lock:
            lease = self._leases.get(task_id)
            if lease is not None:
                if not self._lease_is_stale(lease):
                    return False
                del self._leases[task_id]  # reclaim: the lock arbitrates
            now = time.time()
            self._leases[task_id] = {
                "task_id": task_id,
                "worker": worker,
                "host": self._host if host is None else host,
                "pid": os.getpid() if pid is None else pid,
                "claimed_at": now,
                "heartbeat_at": now,
            }
            return True

    def heartbeat(self, task_id: str, worker: str) -> bool:
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None or lease.get("worker") != worker:
                return False
            lease["heartbeat_at"] = time.time()
            return True

    def release(self, task_id: str, worker: Optional[str] = None) -> None:
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None:
                return
            if worker is not None and lease.get("worker") != worker:
                return
            del self._leases[task_id]

    # -- completion / failure ------------------------------------------------------
    def mark_done(self, task_id: str, worker: str, attempts: int) -> None:
        with self._lock:
            self._done[task_id] = {
                "task_id": task_id,
                "worker": worker,
                "attempts": int(attempts),
                "completed_at": time.time(),
            }

    def complete(
        self,
        task_id: str,
        point: PointSpec,
        result: Optional[SimulationResult],
        worker: str,
    ) -> None:
        with self._lock:
            if result is not None:
                self._results.put(point, result)
            self.mark_done(task_id, worker, attempts=self.attempts(task_id))
            self.release(task_id, worker)

    def complete_payload(self, task_id: str, payload: dict, worker: str) -> None:
        """Completion path for the HTTP handler: store the raw result dict."""
        with self._lock:
            self._results.put_payload(task_id, payload)
            self.mark_done(task_id, worker, attempts=self.attempts(task_id))
            self.release(task_id, worker)

    def record_failure(self, task_id: str, worker: str, error: str) -> int:
        with self._lock:
            lease = self._leases.get(task_id)
            if lease is None or lease.get("worker") != worker:
                return self.attempts(task_id)
            data = self._failed.setdefault(task_id, {"attempts": 0, "errors": []})
            data["errors"].append({"worker": worker, "time": time.time(), "error": str(error)})
            data["attempts"] = int(data["attempts"]) + 1
            self.release(task_id, worker)
            return int(data["attempts"])

    # -- results -------------------------------------------------------------------
    def load_result(self, point: PointSpec) -> Optional[SimulationResult]:
        return self._results.get(point)

    def result_payload(self, task_id: str) -> Optional[dict]:
        return self._results.get_payload(task_id)
