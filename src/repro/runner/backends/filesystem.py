"""Filesystem-backed :class:`~repro.runner.backends.base.QueueBackend`.

A queue directory (local, or a shared mount visible to several hosts) holds
one durable *task record* per unique simulation point of a dispatched
scenario.  Tasks are keyed by the existing result-cache key -- the SHA-256
of the point's execution-relevant fields -- which is host-independent, so
any worker on any machine can claim a task, run it and store the result
where every other participant finds it.

Directory layout (all files are JSON, all writes atomic via temp file +
rename)::

    <queue-dir>/
      tasks/<task-id>.json    durable task record: the PointSpec payload,
                              enqueue time and the per-task retry budget
      leases/<task-id>.json   claim of the worker currently running the task
                              (worker id, host, pid, heartbeat timestamp)
      done/<task-id>.json     completion marker (worker, attempts, time)
      failed/<task-id>.json   accumulated failed attempts and their errors
      results/<task-id>.json  the result store: a plain
                              :class:`~repro.runner.cache.ResultCache`
                              rooted inside the queue directory

Claim protocol: a lease is taken by hard-linking a fully-written unique
temp file to ``leases/<task-id>.json`` -- link creation is atomic and fails
if the lease exists, on local filesystems and NFS alike.  The claim holder
refreshes ``heartbeat_at`` while it runs (atomic replace).  A lease is
*stale* -- and may be reclaimed -- when its heartbeat is older than the
queue's ``lease_seconds``, or immediately when it was taken on this host by
a process that no longer exists.  Reclaiming renames the stale lease to a
unique tombstone first, so exactly one contender wins even when several
workers spot the same stale lease.

Completion is idempotent: results are keyed like the cache, so a task that
is executed twice (e.g. after a lease expired under a live-but-slow worker)
writes byte-identical results and the duplicate completion is harmless.
Failures consume the task's retry budget; a task whose budget is exhausted
is *failed* and is no longer claimed.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.runner.backends.base import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    QueueBackend,
    TaskRecord,
    pid_alive,
)
from repro.runner.cache import ResultCache, write_json_atomic
from repro.runner.spec import PointSpec, point_from_payload
from repro.simulation.results import SimulationResult

__all__ = ["FilesystemBackend", "TASK_FORMAT_VERSION"]

#: Bump when the task-record schema changes: older records are rejected.
TASK_FORMAT_VERSION = 1


class FilesystemBackend(QueueBackend):
    """Durable point-task queue in a (possibly shared) directory."""

    def __init__(
        self,
        root: Union[str, Path],
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ):
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        self.root = Path(root)
        self.lease_seconds = float(lease_seconds)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"
        self._results = ResultCache(self.root / "results")

    @property
    def results(self) -> ResultCache:
        return self._results

    def describe(self) -> str:
        return str(self.root)

    # -- low-level helpers ---------------------------------------------------------
    def _ensure_layout(self) -> None:
        for directory in (self.tasks_dir, self.leases_dir, self.done_dir, self.failed_dir):
            directory.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, object]]:
        """Parse a JSON file; unreadable or corrupt files read as ``None``."""
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    # -- task identity -------------------------------------------------------------
    def _task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.json"

    def _lease_path(self, task_id: str) -> Path:
        return self.leases_dir / f"{task_id}.json"

    def _done_path(self, task_id: str) -> Path:
        return self.done_dir / f"{task_id}.json"

    def _failed_path(self, task_id: str) -> Path:
        return self.failed_dir / f"{task_id}.json"

    # -- enqueue -------------------------------------------------------------------
    def enqueue(self, points: Sequence[PointSpec], max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        """Persist task records for every unique point not yet enqueued.

        Re-dispatching an interrupted sweep is safe and cheap: tasks that
        already have a completion marker (or a stored result, e.g. from a
        worker that crashed between storing and marking) are counted as
        done, existing unfinished records are left untouched, and only new
        points create task files.
        """
        from repro.runner.backends.base import EnqueueSummary

        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._ensure_layout()
        enqueued = already_queued = already_done = 0
        seen: set = set()
        for point in points:
            task_id = self.task_id(point)
            if task_id in seen:
                continue
            seen.add(task_id)
            task_path = self._task_path(task_id)
            if not task_path.exists():
                write_json_atomic(
                    task_path,
                    {
                        "version": TASK_FORMAT_VERSION,
                        "task_id": task_id,
                        "point": asdict(point),
                        "max_attempts": int(max_attempts),
                        "enqueued_at": time.time(),
                        # presentation hints for humans inspecting the queue
                        "figure": point.figure,
                        "series": point.series,
                        "x": point.x,
                    },
                )
                created = True
            else:
                created = False
            if self.is_done(task_id):
                already_done += 1
            elif self.results.get(point) is not None:
                # Result stored but never marked (a worker died in the gap,
                # or the queue was pointed at pre-computed results): mark it
                # done now so no worker wastes a slot re-running it.
                self.mark_done(task_id, worker="dispatch", attempts=0)
                already_done += 1
            elif created:
                enqueued += 1
            else:
                already_queued += 1
        return EnqueueSummary(
            enqueued=enqueued, already_queued=already_queued, already_done=already_done
        )

    # -- task inspection -----------------------------------------------------------
    def task_ids(self) -> List[str]:
        """Every enqueued task id, sorted (stable claim-scan order)."""
        try:
            names = [path.stem for path in self.tasks_dir.glob("*.json")]
        except OSError:
            return []
        return sorted(names)

    def load_task(self, task_id: str) -> Optional[TaskRecord]:
        data = self._read_json(self._task_path(task_id))
        if data is None or data.get("version") != TASK_FORMAT_VERSION:
            return None
        try:
            point = point_from_payload(data["point"])
        except (KeyError, TypeError):
            return None
        return TaskRecord(
            task_id=str(data.get("task_id", task_id)),
            point=point,
            max_attempts=int(data.get("max_attempts", DEFAULT_MAX_ATTEMPTS)),
            enqueued_at=float(data.get("enqueued_at", 0.0)),
        )

    def is_done(self, task_id: str) -> bool:
        return self._done_path(task_id).exists()

    def attempts(self, task_id: str) -> int:
        data = self._read_json(self._failed_path(task_id))
        if data is None:
            return 0
        try:
            return int(data.get("attempts", 0))
        except (TypeError, ValueError):
            return 0

    def last_error(self, task_id: str) -> Optional[str]:
        data = self._read_json(self._failed_path(task_id))
        if not data:
            return None
        errors = data.get("errors") or []
        if not isinstance(errors, list) or not errors:
            return None
        last = errors[-1]
        return str(last.get("error")) if isinstance(last, dict) else str(last)

    # -- leases --------------------------------------------------------------------
    def _lease_is_stale(self, lease_path: Path, now: Optional[float] = None) -> bool:
        now = time.time() if now is None else now
        lease = self._read_json(lease_path)
        if lease is None:
            # Unreadable lease (external corruption): fall back to file age.
            try:
                return now - lease_path.stat().st_mtime > self.lease_seconds
            except OSError:
                return False  # vanished: nothing to reclaim
        if lease.get("host") == socket.gethostname():
            pid = lease.get("pid")
            if isinstance(pid, int) and not pid_alive(pid):
                return True
        try:
            heartbeat = float(lease.get("heartbeat_at", lease.get("claimed_at", 0.0)))
        except (TypeError, ValueError):
            heartbeat = 0.0
        return now - heartbeat > self.lease_seconds

    def lease_state(self, task_id: str, now: Optional[float] = None) -> Optional[str]:
        lease_path = self._lease_path(task_id)
        if not lease_path.exists():
            return None
        return "stale" if self._lease_is_stale(lease_path, now) else "running"

    def _lease_payload(
        self,
        task_id: str,
        worker: str,
        claimed_at: float,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> Dict[str, object]:
        return {
            "task_id": task_id,
            "worker": worker,
            "host": socket.gethostname() if host is None else host,
            "pid": os.getpid() if pid is None else pid,
            "claimed_at": claimed_at,
            "heartbeat_at": time.time(),
        }

    def try_claim(
        self,
        task_id: str,
        worker: str,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> bool:
        """Atomically take the task's lease; False when someone holds it.

        A stale lease (expired heartbeat, or dead local process) is
        tombstoned first; the rename arbitrates between concurrent
        reclaimers, then the hard-link creation arbitrates the new claim.
        """
        self._ensure_layout()
        lease_path = self._lease_path(task_id)
        if lease_path.exists():
            if not self._lease_is_stale(lease_path):
                return False
            tombstone = lease_path.with_name(
                f"{task_id}.reclaimed.{os.getpid()}.{uuid.uuid4().hex}"
            )
            try:
                os.rename(lease_path, tombstone)
            except OSError:
                return False  # another contender won the reclaim
            try:
                os.unlink(tombstone)
            except OSError:
                pass
        tmp = lease_path.with_name(f"{task_id}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        tmp.write_text(json.dumps(self._lease_payload(task_id, worker, time.time(), host, pid)))
        try:
            os.link(tmp, lease_path)
        except FileExistsError:
            return False
        except OSError:
            # Filesystem without hard links (rare): fall back to exclusive
            # creation of the final name.
            try:
                fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            with os.fdopen(fd, "w") as handle:
                handle.write(tmp.read_text())
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return True

    def heartbeat(self, task_id: str, worker: str) -> bool:
        """Refresh the lease's heartbeat; False when the lease is lost."""
        lease_path = self._lease_path(task_id)
        lease = self._read_json(lease_path)
        if lease is None or lease.get("worker") != worker:
            return False
        lease["heartbeat_at"] = time.time()
        write_json_atomic(lease_path, lease)
        return True

    def release(self, task_id: str, worker: Optional[str] = None) -> None:
        """Drop the task's lease (idempotent).

        With ``worker`` given, the lease is only dropped when that worker
        still holds it: a claimant whose expired lease was reclaimed must
        not drop the new holder's live lease.
        """
        lease_path = self._lease_path(task_id)
        if worker is not None:
            lease = self._read_json(lease_path)
            if lease is not None and lease.get("worker") != worker:
                return
        try:
            os.unlink(lease_path)
        except OSError:
            pass

    # -- completion / failure ------------------------------------------------------
    def mark_done(self, task_id: str, worker: str, attempts: int) -> None:
        self._ensure_layout()
        write_json_atomic(
            self._done_path(task_id),
            {
                "task_id": task_id,
                "worker": worker,
                "attempts": int(attempts),
                "completed_at": time.time(),
            },
        )

    def complete(
        self,
        task_id: str,
        point: PointSpec,
        result: Optional[SimulationResult],
        worker: str,
    ) -> None:
        """Store the result (when given), mark the task done, drop the lease."""
        if result is not None:
            self.results.put(point, result)
        self.mark_done(task_id, worker, attempts=self.attempts(task_id))
        self.release(task_id, worker)

    def record_failure(self, task_id: str, worker: str, error: str) -> int:
        """Append one failed attempt (claim holder only) and drop the lease.

        Returns the accumulated attempt count.  Only the current lease
        holder mutates the failure record, so the read-modify-write cannot
        race: a worker whose expired lease was reclaimed while it ran --
        whether the new holder still runs or has already finished and
        released -- must not double-charge the budget (the holder of each
        execution window reports its own outcome) nor drop a live lease.
        """
        lease = self._read_json(self._lease_path(task_id))
        if lease is None or lease.get("worker") != worker:
            return self.attempts(task_id)
        path = self._failed_path(task_id)
        data = self._read_json(path) or {}
        errors = data.get("errors")
        if not isinstance(errors, list):
            errors = []
        errors.append({"worker": worker, "time": time.time(), "error": str(error)})
        attempts = int(data.get("attempts", 0) or 0) + 1
        self._ensure_layout()
        write_json_atomic(
            path, {"task_id": task_id, "attempts": attempts, "errors": errors}
        )
        self.release(task_id, worker)
        return attempts

    # -- results -------------------------------------------------------------------
    def load_result(self, point: PointSpec) -> Optional[SimulationResult]:
        return self.results.get(point)
