"""HTTP :class:`~repro.runner.backends.base.QueueBackend`: a coordinator client.

Workers and dispatching clients on any machine talk to one ``repro-lb
serve`` coordinator (see :mod:`repro.service.coordinator`) over plain JSON
HTTP -- no shared mount required.  The client implements the protocol
primitives as single round trips and overrides the scan-shaped operations
(``claim_next``, ``status``, ``poll_finished``) with their server-side
endpoints, so a claim is one request instead of one per task.

Transport notes:

* everything uses :mod:`urllib.request`; transport failures surface as
  :class:`urllib.error.URLError`, which subclasses :class:`OSError` --
  exactly what the worker's heartbeat thread already tolerates, so a
  worker rides out a coordinator restart the same way it rides out a
  flaky mount;
* ``lease_seconds`` is fetched from ``GET /config`` at construction, so
  every participant of one queue agrees on the lease without repeating it
  on the command line (and a bad URL fails fast, before a worker loop
  starts);
* results travel as their ``to_dict()`` payloads -- the same JSON
  representation the on-disk cache stores -- so a result drained through
  HTTP is field-identical (and, exported, byte-identical) to a local run.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Sequence, Set

from repro.runner.backends.base import (
    DEFAULT_MAX_ATTEMPTS,
    ClaimedTask,
    EnqueueSummary,
    QueueBackend,
    QueueStatus,
    TaskRecord,
)
from repro.runner.cache import point_key
from repro.runner.spec import PointSpec, point_from_payload
from repro.simulation.results import SimulationResult

__all__ = ["HttpBackend"]

#: Per-request timeout: generous enough for a coordinator busy expanding a
#: sweep, far below any lease, so a hung request never masks a dead server.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Transient-failure retry budget: a claim/heartbeat/status round trip is
#: attempted this many times before the error surfaces.  Total added delay
#: stays under ~1 s (see ``_RETRY_BASE_SECONDS``), far below any lease.
RETRY_ATTEMPTS = 3

#: Backoff base for attempt ``i`` (0-indexed): ``0.1 * 8**i`` seconds with
#: +/-50% jitter -- roughly 0.1 s after the first failure, 0.8 s after the
#: second, so two workers that lost the same coordinator don't reconnect
#: in lockstep.
_RETRY_BASE_SECONDS = 0.1


def _retryable(exc: BaseException) -> bool:
    """Whether a transport failure is worth retrying.

    Retry covers a restarting or briefly overloaded coordinator: connection
    resets and refusals (``URLError``/``OSError``), plus the proxy-shaped
    502/503 responses.  Any other HTTP status is the server *answering* --
    a 4xx means the request itself is wrong and retrying cannot help.
    """
    if isinstance(exc, urllib.error.HTTPError):
        return exc.code in (502, 503)
    return isinstance(exc, OSError)  # URLError subclasses OSError


class _RemoteResults:
    """Result-store adapter over ``GET /results`` / ``POST /complete``-free puts.

    Quacks like :class:`~repro.runner.cache.ResultCache` (``get``/``put``/
    ``key``/``hits``/``misses``/``root``) so the distributed runner and the
    CLI cache-stats line work unchanged over HTTP.
    """

    def __init__(self, backend: "HttpBackend"):
        self._backend = backend
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> str:
        return self._backend.base_url

    def key(self, point: PointSpec) -> str:
        return point_key(point)

    def get(self, point: PointSpec) -> Optional[SimulationResult]:
        payload = self._backend._get(f"/results/{self.key(point)}")
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return SimulationResult.from_dict(payload["result"])

    def put(self, point: PointSpec, result: SimulationResult) -> str:
        # A direct put (outside the claim protocol) completes the task: the
        # coordinator marks stored-result tasks done exactly like the
        # filesystem backend's enqueue-time preseeding.
        self._backend.complete(self.key(point), point, result, worker="put")
        return self.key(point)


class HttpBackend(QueueBackend):
    """Queue backend speaking to a ``repro-lb serve`` coordinator."""

    def __init__(
        self,
        url: str,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        self.base_url = url.rstrip("/")
        if not self.base_url.startswith(("http://", "https://")):
            raise ValueError(f"coordinator URL must be http(s)://..., got {url!r}")
        self.request_timeout = float(request_timeout)
        self._results = _RemoteResults(self)
        # Fail fast on a bad URL and agree on the lease with the server.
        config = self._call("GET", "/config")
        self.lease_seconds = float(config["lease_seconds"])
        self.server_max_attempts = int(config.get("max_attempts", DEFAULT_MAX_ATTEMPTS))

    @property
    def results(self) -> _RemoteResults:
        return self._results

    def describe(self) -> str:
        return self.base_url

    # -- transport -----------------------------------------------------------------
    def _call(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Optional[dict]:
        """One JSON round trip; 404 reads as ``None``, other errors raise.

        Transient failures (connection reset/refused, HTTP 502/503) are
        retried up to :data:`RETRY_ATTEMPTS` times with jittered backoff;
        other 4xx/5xx statuses stay fatal on the first response.
        """
        request = urllib.request.Request(
            self.base_url + path,
            data=None if payload is None else json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method=method,
        )
        for attempt in range(RETRY_ATTEMPTS):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.request_timeout
                ) as response:
                    body = response.read()
            except urllib.error.HTTPError as exc:
                if exc.code == 404:
                    return None
                if _retryable(exc) and attempt + 1 < RETRY_ATTEMPTS:
                    self._backoff(attempt)
                    continue
                detail = ""
                try:
                    detail = exc.read().decode("utf-8", "replace")
                except OSError:
                    pass
                raise urllib.error.URLError(
                    f"coordinator {self.base_url}{path} returned {exc.code}: {detail}"
                ) from exc
            except OSError:
                # URLError (connection refused/reset, DNS) subclasses OSError.
                if attempt + 1 < RETRY_ATTEMPTS:
                    self._backoff(attempt)
                    continue
                raise
            return json.loads(body.decode("utf-8")) if body else None
        raise AssertionError("unreachable: retry loop exits by return or raise")

    @staticmethod
    def _backoff(attempt: int) -> None:
        base = _RETRY_BASE_SECONDS * (8**attempt)
        time.sleep(base * (0.5 + random.random()))

    def _get(self, path: str) -> Optional[dict]:
        return self._call("GET", path)

    # -- protocol primitives -------------------------------------------------------
    def enqueue(
        self, points: Sequence[PointSpec], max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> EnqueueSummary:
        from dataclasses import asdict

        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        response = self._call(
            "POST",
            "/sweeps",
            {
                "points": [asdict(point) for point in points],
                "max_attempts": int(max_attempts),
            },
        )
        summary = (response or {}).get("summary") or {}
        return EnqueueSummary(
            enqueued=int(summary.get("enqueued", 0)),
            already_queued=int(summary.get("already_queued", 0)),
            already_done=int(summary.get("already_done", 0)),
        )

    def task_ids(self) -> List[str]:
        response = self._get("/tasks") or {}
        return [str(task_id) for task_id in response.get("task_ids", [])]

    def load_task(self, task_id: str) -> Optional[TaskRecord]:
        payload = self._get(f"/tasks/{task_id}")
        if payload is None:
            return None
        try:
            point = point_from_payload(payload["point"])
        except (KeyError, TypeError):
            return None
        return TaskRecord(
            task_id=str(payload.get("task_id", task_id)),
            point=point,
            max_attempts=int(payload.get("max_attempts", DEFAULT_MAX_ATTEMPTS)),
            enqueued_at=float(payload.get("enqueued_at", 0.0)),
        )

    def _state(self, task_id: str) -> Dict[str, object]:
        return self._get(f"/tasks/{task_id}/state") or {}

    def is_done(self, task_id: str) -> bool:
        return bool(self._state(task_id).get("done"))

    def attempts(self, task_id: str) -> int:
        return int(self._state(task_id).get("attempts", 0) or 0)

    def last_error(self, task_id: str) -> Optional[str]:
        error = self._state(task_id).get("last_error")
        return None if error is None else str(error)

    def lease_state(self, task_id: str, now: Optional[float] = None) -> Optional[str]:
        lease = self._state(task_id).get("lease")
        return None if lease is None else str(lease)

    def try_claim(
        self,
        task_id: str,
        worker: str,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> bool:
        response = self._call(
            "POST",
            "/try_claim",
            {
                "task_id": task_id,
                "worker": worker,
                "host": socket.gethostname() if host is None else host,
                "pid": os.getpid() if pid is None else pid,
            },
        )
        return bool((response or {}).get("claimed"))

    def claim_next(
        self,
        worker: str,
        finished: Optional[set] = None,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> Optional[ClaimedTask]:
        # One round trip: the coordinator runs the claim scan server-side
        # (the ``finished`` memo is a local-scan optimisation; the server
        # skips terminal tasks itself).
        response = self._call(
            "POST",
            "/claim",
            {
                "worker": worker,
                "host": socket.gethostname() if host is None else host,
                "pid": os.getpid() if pid is None else pid,
            },
        )
        payload = (response or {}).get("task")
        if payload is None:
            return None
        return ClaimedTask(
            record=TaskRecord(
                task_id=str(payload["task_id"]),
                point=point_from_payload(payload["point"]),
                max_attempts=int(payload.get("max_attempts", DEFAULT_MAX_ATTEMPTS)),
                enqueued_at=float(payload.get("enqueued_at", 0.0)),
            )
        )

    def heartbeat(self, task_id: str, worker: str) -> bool:
        response = self._call(
            "POST", "/heartbeat", {"task_id": task_id, "worker": worker}
        )
        return bool((response or {}).get("ok"))

    def release(self, task_id: str, worker: Optional[str] = None) -> None:
        self._call("POST", "/release", {"task_id": task_id, "worker": worker})

    def mark_done(self, task_id: str, worker: str, attempts: int) -> None:
        self._call(
            "POST",
            "/complete",
            {"task_id": task_id, "point": None, "result": None, "worker": worker},
        )

    def complete(
        self,
        task_id: str,
        point: PointSpec,
        result: Optional[SimulationResult],
        worker: str,
    ) -> None:
        from dataclasses import asdict

        self._call(
            "POST",
            "/complete",
            {
                "task_id": task_id,
                "point": asdict(point),
                "result": None if result is None else result.to_dict(),
                "worker": worker,
            },
        )

    def record_failure(self, task_id: str, worker: str, error: str) -> int:
        response = self._call(
            "POST", "/fail", {"task_id": task_id, "worker": worker, "error": error}
        )
        return int((response or {}).get("attempts", 0) or 0)

    def load_result(self, point: PointSpec) -> Optional[SimulationResult]:
        return self._results.get(point)

    # -- scan-shaped overrides -----------------------------------------------------
    def status(self, task_ids=None) -> QueueStatus:
        response = self._call(
            "POST",
            "/status",
            {"task_ids": None if task_ids is None else sorted(task_ids)},
        )
        return QueueStatus.from_dict(response or {})

    def poll_finished(self, task_ids) -> Set[str]:
        response = self._call("POST", "/poll", {"task_ids": sorted(task_ids)})
        return {str(task_id) for task_id in (response or {}).get("finished", [])}
