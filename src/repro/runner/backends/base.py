"""The ``QueueBackend`` protocol: the abstract work-distribution surface.

PR 4's distributed layer was written against one concrete class -- the
filesystem :class:`~repro.runner.backends.filesystem.FilesystemBackend`
(née ``WorkQueue``) -- which tied every consumer (worker daemon,
coordinator, CLI) to a shared mount.  This module extracts the *semantic*
surface those consumers actually rely on, so dispatch can run over any
transport that honours the same contract:

* durable **task records** keyed by the host-independent result-cache key
  (:func:`repro.runner.cache.point_key`), enqueued idempotently;
* an exclusive, heartbeat-refreshed **lease** per running task, reclaimable
  when the heartbeat expires (or immediately when the holder is a dead
  process on the same host);
* a per-task **retry budget** consumed by failing attempts, with terminal
  ``done``/``failed`` states and a result store addressed by point.

Conforming implementations: the filesystem backend (shared directory), the
in-memory backend (inside the ``repro-lb serve`` coordinator) and the HTTP
backend (workers on any machine talking to that coordinator).  A shared
conformance suite (``tests/test_backends.py``) pins the contract --
claim exclusivity, heartbeat expiry, retry budgets, interrupt-safe lease
release and resume-after-kill -- across all of them.

The generic algorithms that only need the primitive operations --
``claim_next`` scanning, ``is_failed``, ``status`` folding and the
``wait`` loop (capped exponential backoff, reset on progress) -- live here
so every backend inherits identical semantics.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.runner.spec import PointSpec
from repro.simulation.results import SimulationResult

__all__ = [
    "QueueBackend",
    "TaskRecord",
    "ClaimedTask",
    "EnqueueSummary",
    "QueueStatus",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_MAX_POLL_INTERVAL",
    "pid_alive",
]

#: Seconds without a heartbeat after which a lease may be reclaimed.  Every
#: participant of one queue must use the same value.
DEFAULT_LEASE_SECONDS = 60.0

#: Times a task may fail before the queue stops retrying it.
DEFAULT_MAX_ATTEMPTS = 3

#: Ceiling for the wait loop's exponential backoff (seconds).  Idle polls
#: double from the caller's ``poll_interval`` up to this cap and snap back
#: to the floor whenever a task finishes, so a long drain does not hammer
#: the backend while a finishing sweep is still collected promptly.
DEFAULT_MAX_POLL_INTERVAL = 5.0


@dataclass(frozen=True)
class TaskRecord:
    """One durable point task."""

    task_id: str
    point: PointSpec
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    enqueued_at: float = 0.0


@dataclass(frozen=True)
class ClaimedTask:
    """A task currently leased to this process."""

    record: TaskRecord

    @property
    def task_id(self) -> str:
        return self.record.task_id

    @property
    def point(self) -> PointSpec:
        return self.record.point


@dataclass(frozen=True)
class EnqueueSummary:
    """Outcome of one :meth:`QueueBackend.enqueue` call (unique tasks)."""

    enqueued: int = 0  # newly created task records
    already_queued: int = 0  # task record existed, not finished yet
    already_done: int = 0  # completion marker (or stored result) present

    @property
    def total(self) -> int:
        return self.enqueued + self.already_queued + self.already_done


@dataclass
class QueueStatus:
    """Aggregate view of a queue."""

    total: int = 0
    pending: int = 0  # no lease, no completion, budget left
    running: int = 0  # fresh lease held by some worker
    stale: int = 0  # lease present but its heartbeat expired (or holder dead)
    done: int = 0
    failed: int = 0  # retry budget exhausted
    failures: List[Dict[str, object]] = field(default_factory=list)

    @property
    def unfinished(self) -> int:
        return self.total - self.done - self.failed

    @property
    def all_done(self) -> bool:
        return self.total > 0 and self.done == self.total

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "pending": self.pending,
            "running": self.running,
            "stale": self.stale,
            "done": self.done,
            "failed": self.failed,
            "unfinished": self.unfinished,
            "all_done": self.all_done,
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QueueStatus":
        return cls(
            total=int(data.get("total", 0)),
            pending=int(data.get("pending", 0)),
            running=int(data.get("running", 0)),
            stale=int(data.get("stale", 0)),
            done=int(data.get("done", 0)),
            failed=int(data.get("failed", 0)),
            failures=list(data.get("failures") or []),
        )

    def render(self) -> str:
        lines = [
            f"tasks:   {self.total}",
            f"done:    {self.done}",
            f"running: {self.running}",
            f"stale:   {self.stale}",
            f"pending: {self.pending}",
            f"failed:  {self.failed}",
        ]
        for failure in self.failures:
            lines.append(
                f"  failed task {failure['task_id']} "
                f"({failure['attempts']} attempt(s)): {failure['last_error']}"
            )
        return "\n".join(lines)


def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a local process id."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists (or cannot tell): assume alive
    return True


class QueueBackend(ABC):
    """Abstract work-distribution backend.

    Subclasses implement the primitive storage operations; the claim scan,
    terminal-state classification, status fold and wait loop are shared so
    every backend exposes identical semantics to workers and coordinators.
    """

    #: Lease/heartbeat timeout; all participants of one queue must agree.
    lease_seconds: float = DEFAULT_LEASE_SECONDS

    # -- identity ------------------------------------------------------------------
    def task_id(self, point: PointSpec) -> str:
        """A point's task id: its (host-independent) result-cache key."""
        from repro.runner.cache import point_key

        return point_key(point)

    def describe(self) -> str:
        """Human-readable locator (queue directory, coordinator URL, ...)."""
        return repr(self)

    # -- primitive surface ---------------------------------------------------------
    @abstractmethod
    def enqueue(
        self, points: Sequence[PointSpec], max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> EnqueueSummary:
        """Persist task records for every unique point not yet enqueued."""

    @abstractmethod
    def task_ids(self) -> List[str]:
        """Every enqueued task id, in a stable claim-scan order."""

    @abstractmethod
    def load_task(self, task_id: str) -> Optional[TaskRecord]:
        """The task's durable record, or ``None`` when unreadable/unknown."""

    @abstractmethod
    def is_done(self, task_id: str) -> bool:
        """True when the task carries a completion marker."""

    @abstractmethod
    def attempts(self, task_id: str) -> int:
        """Failed attempts recorded against the task so far."""

    @abstractmethod
    def last_error(self, task_id: str) -> Optional[str]:
        """Message of the most recent failed attempt, if any."""

    @abstractmethod
    def lease_state(self, task_id: str, now: Optional[float] = None) -> Optional[str]:
        """``"running"``, ``"stale"`` or ``None`` when no lease is held.

        A lease is stale when its heartbeat is older than ``lease_seconds``,
        or immediately when it names a dead process on this backend's host
        -- ``status`` therefore reports a crashed worker's task as ``stale``
        (reclaimable), never as ``running``.
        """

    @abstractmethod
    def try_claim(
        self,
        task_id: str,
        worker: str,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> bool:
        """Atomically take the task's lease; False when someone holds it.

        ``host``/``pid`` default to the calling process and exist so remote
        claimants (and the conformance suite) can record the real holder.
        """

    @abstractmethod
    def heartbeat(self, task_id: str, worker: str) -> bool:
        """Refresh the lease's heartbeat; False when the lease is lost."""

    @abstractmethod
    def release(self, task_id: str, worker: Optional[str] = None) -> None:
        """Drop the task's lease (idempotent; owner-checked when given)."""

    @abstractmethod
    def mark_done(self, task_id: str, worker: str, attempts: int) -> None:
        """Write the task's completion marker."""

    @abstractmethod
    def complete(
        self,
        task_id: str,
        point: PointSpec,
        result: Optional[SimulationResult],
        worker: str,
    ) -> None:
        """Store the result (when given), mark the task done, drop the lease."""

    @abstractmethod
    def record_failure(self, task_id: str, worker: str, error: str) -> int:
        """Append one failed attempt (claim holder only) and drop the lease."""

    @abstractmethod
    def load_result(self, point: PointSpec) -> Optional[SimulationResult]:
        """The stored result for ``point``, or ``None``."""

    @property
    @abstractmethod
    def results(self):
        """Result-store adapter (``get``/``put``/``hits``/``misses``/``root``).

        Doubles as the :class:`~repro.runner.distributed.DistributedRunner`'s
        cache, so coordinators inherit hit/miss accounting and pre-seeded
        results regardless of transport.
        """

    # -- shared algorithms ---------------------------------------------------------
    def is_failed(self, task_id: str) -> bool:
        """True when the task is terminal without being done.

        That covers an exhausted retry budget, and task records that cannot
        be loaded (corrupt, deleted, or an incompatible format version) --
        such a task can never run, so treating it as pending would make
        workers and coordinators wait on it forever.
        """
        if self.is_done(task_id):
            return False
        record = self.load_task(task_id)
        if record is None:
            return True
        return self.attempts(task_id) >= record.max_attempts

    def claim_next(
        self,
        worker: str,
        finished: Optional[set] = None,
        host: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> Optional[ClaimedTask]:
        """Claim the first runnable task, or ``None`` when nothing is claimable.

        ``finished`` is an optional caller-owned memo of task ids already
        known to be terminal (done, failed, unreadable); ids discovered to
        be terminal during this scan are added to it, so a worker's repeated
        scans of a large queue skip the finished tasks instead of re-reading
        every record each time.  ``host``/``pid`` identify the claimant when
        the scan runs on its behalf (the HTTP coordinator claiming for a
        remote worker); they default to the calling process.
        """
        for task_id in self.task_ids():
            if finished is not None and task_id in finished:
                continue
            if self.is_done(task_id):
                if finished is not None:
                    finished.add(task_id)
                continue
            record = self.load_task(task_id)
            if record is None:
                # Corrupt/foreign record: never runnable, terminal.
                if finished is not None:
                    finished.add(task_id)
                continue
            if self.attempts(task_id) >= record.max_attempts:
                if finished is not None:
                    finished.add(task_id)
                continue
            if not self.try_claim(task_id, worker, host=host, pid=pid):
                continue
            if self.is_done(task_id):
                # Completed between the scan and our claim of a stale lease.
                self.release(task_id, worker)
                if finished is not None:
                    finished.add(task_id)
                continue
            return ClaimedTask(record=record)
        return None

    def status(self, task_ids: Optional[Iterable[str]] = None) -> QueueStatus:
        """Summarise the queue (or the given subset of task ids)."""
        status = QueueStatus()
        now = time.time()
        for task_id in sorted(task_ids) if task_ids is not None else self.task_ids():
            status.total += 1
            if self.is_done(task_id):
                status.done += 1
                continue
            record = self.load_task(task_id)
            attempts = self.attempts(task_id)
            if record is None:
                # Unreadable record: terminal (matches is_failed), otherwise
                # workers and coordinators would wait on it forever.
                status.failed += 1
                status.failures.append(
                    {
                        "task_id": task_id,
                        "attempts": attempts,
                        "last_error": "unreadable or incompatible task record",
                    }
                )
                continue
            if attempts >= record.max_attempts:
                status.failed += 1
                status.failures.append(
                    {
                        "task_id": task_id,
                        "attempts": attempts,
                        "last_error": self.last_error(task_id) or "<unrecorded>",
                    }
                )
                continue
            lease = self.lease_state(task_id, now)
            if lease == "running":
                status.running += 1
            elif lease == "stale":
                status.stale += 1
            else:
                status.pending += 1
        return status

    def poll_finished(self, task_ids: Iterable[str]) -> Set[str]:
        """The subset of ``task_ids`` that is terminal (done or failed).

        One wait-loop probe; remote backends override it with a single
        round trip instead of two calls per task.
        """
        return {
            task_id
            for task_id in task_ids
            if self.is_done(task_id) or self.is_failed(task_id)
        }

    def wait(
        self,
        task_ids: Sequence[str],
        poll_interval: float = 0.5,
        timeout: Optional[float] = None,
        max_poll_interval: float = DEFAULT_MAX_POLL_INTERVAL,
    ) -> None:
        """Block until every given task is done or failed.

        Polls with capped exponential backoff: idle probes double the sleep
        from ``poll_interval`` up to ``max_poll_interval``, and any probe
        that observes progress (some task finished) snaps back to the floor
        -- so waiting on a long-running sweep is cheap while a draining one
        is still collected promptly.  Raises :class:`TimeoutError` (with a
        status snapshot in the message) when ``timeout`` seconds elapse
        first.
        """
        remaining = set(task_ids)
        deadline = None if timeout is None else time.monotonic() + timeout
        ceiling = max(float(max_poll_interval), float(poll_interval))
        interval = float(poll_interval)
        while remaining:
            finished = self.poll_finished(remaining)
            if finished:
                remaining -= finished
                interval = float(poll_interval)  # progress: probe quickly again
            if not remaining:
                return
            if deadline is not None and time.monotonic() > deadline:
                status = self.status(task_ids)
                raise TimeoutError(
                    f"queue {self.describe()} did not finish within {timeout:g}s "
                    f"({len(remaining)} task(s) unfinished)\n{status.render()}"
                )
            time.sleep(interval)
            interval = min(interval * 2.0, ceiling)
