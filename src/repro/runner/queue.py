"""Backwards-compatible façade for the filesystem work queue.

The concrete ``WorkQueue`` of PR 4 became the filesystem implementation of
the :class:`~repro.runner.backends.base.QueueBackend` protocol; the class
body now lives in :mod:`repro.runner.backends.filesystem` next to its
sibling backends (in-memory, HTTP).  This module keeps the historical
import surface -- ``WorkQueue`` plus the protocol dataclasses and defaults
-- so existing callers and tests are untouched.
"""

from __future__ import annotations

from repro.runner.backends.base import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    ClaimedTask,
    EnqueueSummary,
    QueueStatus,
    TaskRecord,
    pid_alive as _pid_alive,
)
from repro.runner.backends.filesystem import TASK_FORMAT_VERSION, FilesystemBackend

#: The historical name of the filesystem backend.
WorkQueue = FilesystemBackend

__all__ = [
    "WorkQueue",
    "TaskRecord",
    "ClaimedTask",
    "EnqueueSummary",
    "QueueStatus",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "TASK_FORMAT_VERSION",
    "_pid_alive",
]
