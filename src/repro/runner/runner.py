"""Point execution and the multi-process parallel runner.

:func:`execute_point` turns one :class:`~repro.runner.spec.PointSpec` into a
:class:`~repro.simulation.results.SimulationResult` dictionary.  It is a
module-level function taking and returning only picklable primitives, so the
:class:`ParallelRunner` can ship it to ``ProcessPoolExecutor`` workers under
any start method (fork or spawn).

Determinism: a point fully determines its simulation (configuration, seed,
strategy and run limits), so serial and parallel execution produce
bit-identical results -- the serial fallback deliberately round-trips
through the same ``to_dict``/``from_dict`` path as the process pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, replace
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.runner.cache import ResultCache
from repro.runner.spec import DEFAULT_NUM_QUERIES, PointSpec, ScenarioSpec
from repro.simulation.results import SimulationResult

__all__ = [
    "ParallelRunner",
    "PointExecutionError",
    "execute_point",
    "execute_point_checked",
    "build_config",
    "apply_config_overrides",
]


class PointExecutionError(RuntimeError):
    """A point's simulation raised; names the failing :class:`PointSpec`.

    A bare exception escaping a worker process otherwise gives no clue which
    of the (possibly hundreds of) points failed; the original exception is
    preserved as ``__cause__`` and on the ``cause`` attribute.
    """

    def __init__(self, point: PointSpec, cause: BaseException):
        self.point = point
        self.cause = cause
        super().__init__(
            f"point {point.figure}/{point.series!r} (x={point.x:g}, kind={point.kind}, "
            f"scenario={point.scenario}, num_pe={point.num_pe}, "
            f"strategy={point.strategy!r}, degree={point.degree}, seed={point.seed}, "
            f"replicate={point.replicate}) failed: {cause!r}"
        )


def _replace_path(obj, path: str, value):
    """Return ``obj`` with the dotted dataclass-field ``path`` replaced."""
    import dataclasses

    field_names = (
        {f.name for f in dataclasses.fields(obj)} if dataclasses.is_dataclass(obj) else set()
    )
    head, _, rest = path.partition(".")
    if head not in field_names:
        raise AttributeError(f"config has no field {head!r} (override path {path!r})")
    current = getattr(obj, head)
    if rest:
        value = _replace_path(current, rest, value)
    elif dataclasses.is_dataclass(current) and not dataclasses.is_dataclass(value):
        raise AttributeError(
            f"config field {head!r} is a section, not a scalar; "
            f"override one of its fields instead (e.g. {head}.<field>)"
        )
    return replace(obj, **{head: value})


def apply_config_overrides(config, overrides: Sequence[Sequence[object]]):
    """Apply dotted-path overrides, e.g. ``("buffer.buffer_pages", 5)``."""
    for path, value in overrides:
        config = _replace_path(config, str(path), value)
    return config


def build_config(point: PointSpec):
    """Build the :class:`SystemConfig` for one point from its scenario axes."""
    from repro.experiments import scenarios

    if point.scenario == "homogeneous":
        config = scenarios.homogeneous_config(
            point.num_pe,
            scan_selectivity=point.selectivity if point.selectivity is not None else 0.01,
            arrival_rate_per_pe=point.rate if point.rate is not None else 0.25,
            seed=point.seed,
        )
    elif point.scenario == "memory-bound":
        kwargs = {"seed": point.seed}
        if point.rate is not None:
            kwargs["arrival_rate_per_pe"] = point.rate
        config = scenarios.memory_bound_config(point.num_pe, **kwargs)
        if point.selectivity is not None:
            config = _replace_path(config, "join_query.scan_selectivity", point.selectivity)
    elif point.scenario == "join-complexity":
        config = scenarios.join_complexity_config(
            point.selectivity if point.selectivity is not None else 0.01,
            num_pe=point.num_pe,
            arrival_rate_per_pe=point.rate,
            seed=point.seed,
        )
    elif point.scenario == "mixed":
        kwargs = {"seed": point.seed, "oltp_placement": point.oltp_placement or "A"}
        if point.rate is not None:
            kwargs["join_rate_per_pe"] = point.rate
        config = scenarios.mixed_workload_config(point.num_pe, **kwargs)
        if point.selectivity is not None:
            config = _replace_path(config, "join_query.scan_selectivity", point.selectivity)
    else:
        raise ValueError(f"unknown scenario builder {point.scenario!r}")
    config = _apply_hardware_axes(config, point)
    return apply_config_overrides(config, point.config_overrides)


def _apply_hardware_axes(config, point: PointSpec):
    """Materialise the point's encoded node-class / topology axes.

    Uniform points carry ``None`` (the expansion canonicalises explicit
    defaults away), so this is a no-op -- the config object is returned
    untouched -- on every historical scenario.
    """
    from repro.config.parameters import NodeClass, TopologyConfig

    updates = {}
    if point.node_classes is not None:
        updates["node_classes"] = tuple(
            NodeClass(**dict(node_class)) for node_class in point.node_classes
        )
    if point.topology is not None:
        updates["topology"] = TopologyConfig(**dict(point.topology))
    if point.replication is not None:
        updates["replication"] = point.replication
    return config.with_overrides(**updates) if updates else config


def _analytic_result(config, degree: int, estimate_seconds: float) -> SimulationResult:
    """Wrap an analytic cost-model estimate in a SimulationResult record."""
    return SimulationResult(
        strategy=f"analytic p={degree}",
        num_pe=config.num_pe,
        mode="analytic",
        simulated_seconds=0.0,
        joins_completed=0,
        join_response_time=estimate_seconds,
        join_response_time_p95=estimate_seconds,
        join_response_time_ci=0.0,
        average_degree=float(degree),
        average_overflow_pages=0.0,
        average_memory_wait=0.0,
        cpu_utilization=0.0,
        disk_utilization=0.0,
        memory_utilization=0.0,
    )


def build_workload(point: PointSpec, config) -> "WorkloadSpec":
    """Build the point's workload spec, applying its arrival profile.

    ``arrival_kind="trace"`` keeps the underlying (Poisson) sampling here --
    the runner materialises the trace separately and replays it.
    """
    from repro.workload.generator import WorkloadSpec

    spec = WorkloadSpec.for_config(config)
    if point.arrival_kind is not None and point.arrival_kind != "trace":
        spec = spec.with_arrival_profile(point.arrival_kind, point.arrival_params)
    return spec


def run_point_spec(point: PointSpec) -> SimulationResult:
    """Execute one point in-process and return the raw result object."""
    from repro.experiments.base import default_measured_joins, default_time_limit
    from repro.runner.spec import DEFAULT_TIMELINE_WINDOW
    from repro.scheduling.cost_model import CostModel
    from repro.scheduling.degree import FixedDegree
    from repro.scheduling.placement import RandomPlacement
    from repro.scheduling.strategy import IsolatedStrategy
    from repro.simulation.driver import SimulationDriver
    from repro.workload.query import JoinQuery
    from repro.workload.traces import generate_trace, parse_trace

    config = build_config(point)
    # Decode the point's fault plan once; ``None`` (the fault-free case)
    # constructs no injector at all, keeping the historical code paths.
    if point.failures:
        from repro.faults.plan import decode_failures

        faults = decode_failures(point.failures)
    else:
        faults = None
    if point.kind == "multi":
        measured = (
            point.measured_joins if point.measured_joins is not None else default_measured_joins()
        )
        warmup = point.warmup_joins if point.warmup_joins is not None else max(5, measured // 5)
        limit = (
            point.max_simulated_time
            if point.max_simulated_time is not None
            else default_time_limit()
        )
        driver = SimulationDriver(config, strategy=point.strategy, faults=faults)
        return driver.run_multi_user(
            spec=build_workload(point, config) if point.arrival_kind is not None else None,
            warmup_joins=warmup,
            measured_joins=measured,
            max_simulated_time=limit,
        )
    if point.kind == "timeline":
        duration = (
            point.max_simulated_time
            if point.max_simulated_time is not None
            else default_time_limit()
        )
        window = (
            point.timeline_window
            if point.timeline_window is not None
            else DEFAULT_TIMELINE_WINDOW
        )
        driver = SimulationDriver(config, strategy=point.strategy, faults=faults)
        spec = build_workload(point, config)
        # Trace arrivals: replay a captured log (``file`` parameter), or
        # materialise the spec's own arrival streams up front -- with the
        # per-class seeding aligned between generation and live sampling,
        # the latter reproduces exactly the arrivals a live run would have
        # drawn.
        trace = None
        if point.arrival_kind == "trace":
            import hashlib
            from pathlib import Path

            params = dict(point.arrival_params)
            trace_file = params.pop("file", None)
            expected_digest = params.pop("file_sha256", None)
            if params:
                raise ValueError(
                    "unknown parameter(s) for arrival kind 'trace': "
                    f"{sorted(params)} (only 'file' is supported)"
                )
            if trace_file is None:
                if expected_digest is not None:
                    raise ValueError("file_sha256 given without a trace file")
                trace = generate_trace(spec, duration)
            else:
                # The digest pins the file *content* into the point (and
                # therefore into the cache key / distributed task id): an
                # edited trace can neither hit a stale cache entry nor
                # diverge silently across worker hosts.  One read serves
                # both the digest check and the parse.
                path = Path(trace_file)
                raw = path.read_bytes()
                if expected_digest is not None:
                    actual = hashlib.sha256(raw).hexdigest()
                    if actual != str(expected_digest):
                        raise ValueError(
                            f"trace file {trace_file} does not match the "
                            f"content digest it was dispatched with "
                            f"(sha256 {actual[:12]}... != "
                            f"{str(expected_digest)[:12]}...)"
                        )
                trace = parse_trace(
                    raw.decode("utf-8"),
                    source=str(path),
                    fmt="json" if path.suffix.lower() == ".json" else None,
                )
        return driver.run_timed(
            duration, timeline_window=window, spec=spec, trace=trace
        )
    if point.kind == "single":
        driver = SimulationDriver(config, strategy=point.strategy, faults=faults)
        return driver.run_single_user(
            num_queries=(
                point.num_queries
                if point.num_queries is not None
                else DEFAULT_NUM_QUERIES["single"]
            )
        )
    if point.kind == "fixed-degree":
        strategy = IsolatedStrategy(
            FixedDegree(point.degree, name=f"fixed({point.degree})"),
            RandomPlacement(seed=config.seed),
        )
        driver = SimulationDriver(config, strategy=strategy, faults=faults)
        return driver.run_single_user(
            num_queries=(
                point.num_queries
                if point.num_queries is not None
                else DEFAULT_NUM_QUERIES["fixed-degree"]
            )
        )
    if point.kind == "analytic":
        cost_model = CostModel(config)
        query = JoinQuery(scan_selectivity=config.join_query.scan_selectivity)
        estimate = cost_model.estimate_response_time(query, point.degree)
        return _analytic_result(config, point.degree, estimate)
    raise ValueError(f"unknown point kind {point.kind!r}")


def execute_point(payload: Union[PointSpec, Mapping[str, object]]) -> Dict[str, object]:
    """Worker entry point: run one point and return a picklable result dict."""
    point = payload if isinstance(payload, PointSpec) else PointSpec(**dict(payload))
    return run_point_spec(point).to_dict()


def execute_point_checked(point: PointSpec) -> Dict[str, object]:
    """Run one point, wrapping any failure in :class:`PointExecutionError`.

    Shared by the serial path of :meth:`ParallelRunner.run_points` and the
    distributed queue worker (:mod:`repro.runner.worker`), so every driver
    reports a failing point the same way.  The result round-trips through
    ``to_dict`` exactly like the process-pool path, keeping serial, pooled
    and distributed execution bit-identical.
    """
    try:
        return execute_point(asdict(point))
    except Exception as exc:
        raise PointExecutionError(point, exc) from exc


class ParallelRunner:
    """Fans independent scenario points out over a process pool.

    ``workers=1`` runs everything serially in-process (no pool);
    ``workers=None`` or ``0`` uses one worker per CPU core.  An optional
    :class:`ResultCache` short-circuits points that were already simulated
    with an identical (config, strategy, workload, limits) key.
    """

    def __init__(self, workers: Optional[int] = 1, cache: Optional[ResultCache] = None):
        if workers in (None, 0):
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1 (or None/0 for one per core)")
        self.workers = workers
        self.cache = cache

    def run(self, spec: ScenarioSpec) -> "ExperimentResult":
        """Run every point of a scenario and collect an ExperimentResult."""
        from repro.experiments.base import ExperimentPoint, ExperimentResult

        points = spec.points()
        results = self.run_points(points)
        experiment = ExperimentResult(figure=spec.name, title=spec.title, x_label=spec.x_label)
        for point, result in zip(points, results):
            experiment.add(
                ExperimentPoint(
                    figure=point.figure,
                    series=point.series,
                    x=point.x,
                    result=result,
                    replicate=point.replicate,
                )
            )
        return experiment

    def run_aggregated(self, spec: ScenarioSpec) -> "AggregatedExperimentResult":
        """Run a scenario and fold replicates into mean / stddev / 95 % CI.

        Aggregates are bit-identical at any worker count: replicate results
        are folded in expansion order regardless of completion order.
        """
        return self.run(spec).aggregate()

    def run_points(self, points: Sequence[PointSpec]) -> List[SimulationResult]:
        """Run points (cache-aware), preserving input order in the output."""
        results: Dict[int, SimulationResult] = {}
        pending: List[int] = []
        for index, point in enumerate(points):
            cached = self.cache.get(point) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        def complete(index: int, data: Mapping[str, object]) -> None:
            # Cache each point as soon as it finishes so a failing or
            # interrupted sibling cannot discard already-computed work.
            result = SimulationResult.from_dict(data)
            results[index] = result
            if self.cache is not None:
                self.cache.put(points[index], result)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                for index in pending:
                    complete(index, execute_point_checked(points[index]))
            else:
                max_workers = min(self.workers, len(pending))
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = {
                        pool.submit(execute_point, asdict(points[index])): index
                        for index in pending
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        try:
                            data = future.result()
                        except Exception as exc:
                            # Stop queued siblings; running ones cannot be
                            # cancelled and the pool shutdown waits for them
                            # anyway, so harvest their results into the
                            # cache instead of discarding the work.  Then
                            # name the failing point instead of surfacing a
                            # bare worker traceback.
                            for sibling in futures:
                                sibling.cancel()
                            for sibling, sibling_index in futures.items():
                                if (
                                    sibling is future
                                    or sibling_index in results
                                    or sibling.cancelled()
                                ):
                                    continue
                                try:
                                    complete(sibling_index, sibling.result())
                                except Exception:
                                    pass  # another failing sibling: first error wins
                            raise PointExecutionError(points[index], exc) from exc
                        complete(index, data)

        return [results[index] for index in range(len(points))]
