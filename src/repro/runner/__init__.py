"""Declarative scenario engine and parallel experiment runner.

The experiment layer is split into three pieces:

* :mod:`repro.runner.spec` -- :class:`ScenarioSpec`/:class:`Sweep`
  dataclasses that declare a figure (or an ad-hoc sweep) as *data*: axes
  (strategies, system sizes, arrival rates, selectivities, OLTP placement),
  per-point configuration overrides and run limits.
* :mod:`repro.runner.registry` -- a named registry mapping scenario names
  (``figure5``, ``figure9a``, ...) to spec builders, populated by the
  modules under :mod:`repro.experiments`.
* :mod:`repro.runner.runner` -- :class:`ParallelRunner`, which expands a
  spec into independent points and fans them out over a
  ``ProcessPoolExecutor`` (serial fallback for ``workers=1``), with an
  optional on-disk :class:`~repro.runner.cache.ResultCache`.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.registry import (
    available_scenarios,
    build_scenario,
    get_scenario,
    register_scenario,
)
from repro.runner.runner import ParallelRunner, PointExecutionError, execute_point
from repro.runner.spec import PointSpec, ScenarioSpec, Sweep, derive_seed, expand

__all__ = [
    "ParallelRunner",
    "PointExecutionError",
    "PointSpec",
    "ResultCache",
    "ScenarioSpec",
    "Sweep",
    "available_scenarios",
    "build_scenario",
    "default_cache_dir",
    "derive_seed",
    "execute_point",
    "expand",
    "get_scenario",
    "register_scenario",
]
