"""Declarative scenario engine and parallel experiment runner.

The experiment layer is split into three pieces:

* :mod:`repro.runner.spec` -- :class:`ScenarioSpec`/:class:`Sweep`
  dataclasses that declare a figure (or an ad-hoc sweep) as *data*: axes
  (strategies, system sizes, arrival rates, selectivities, OLTP placement),
  per-point configuration overrides and run limits.
* :mod:`repro.runner.registry` -- a named registry mapping scenario names
  (``figure5``, ``figure9a``, ...) to spec builders, populated by the
  modules under :mod:`repro.experiments`.
* :mod:`repro.runner.runner` -- :class:`ParallelRunner`, which expands a
  spec into independent points and fans them out over a
  ``ProcessPoolExecutor`` (serial fallback for ``workers=1``), with an
  optional on-disk :class:`~repro.runner.cache.ResultCache`.
* :mod:`repro.runner.backends` / :mod:`repro.runner.worker` /
  :mod:`repro.runner.distributed` -- the multi-host layer: the
  :class:`~repro.runner.backends.base.QueueBackend` protocol with
  filesystem, in-memory and HTTP-coordinator implementations, the
  :class:`~repro.runner.worker.Worker` daemon that claims and executes
  tasks over any of them, and the
  :class:`~repro.runner.distributed.DistributedRunner` coordinator that
  enqueues a spec and folds the results in expansion order.

:class:`~repro.runner.config.RunnerConfig` is the single construction path
from user-facing options (CLI flags, test fixtures, figure wrappers) to the
serial / process-pool / distributed runner they describe.
"""

from repro.runner.backends import (
    FilesystemBackend,
    HttpBackend,
    MemoryBackend,
    QueueBackend,
    make_backend,
)
from repro.runner.cache import ResultCache, default_cache_dir, point_key
from repro.runner.config import RunnerConfig
from repro.runner.distributed import DistributedRunner
from repro.runner.queue import WorkQueue
from repro.runner.registry import (
    available_scenarios,
    build_scenario,
    get_scenario,
    register_scenario,
)
from repro.runner.runner import (
    ParallelRunner,
    PointExecutionError,
    execute_point,
    execute_point_checked,
)
from repro.runner.spec import (
    PointSpec,
    ScenarioSpec,
    Sweep,
    derive_seed,
    expand,
    point_from_payload,
    shard_timeline_point,
)
from repro.runner.worker import Worker, WorkerStats

__all__ = [
    "DistributedRunner",
    "FilesystemBackend",
    "HttpBackend",
    "MemoryBackend",
    "ParallelRunner",
    "PointExecutionError",
    "PointSpec",
    "QueueBackend",
    "ResultCache",
    "RunnerConfig",
    "ScenarioSpec",
    "Sweep",
    "WorkQueue",
    "Worker",
    "WorkerStats",
    "available_scenarios",
    "build_scenario",
    "default_cache_dir",
    "derive_seed",
    "execute_point",
    "execute_point_checked",
    "expand",
    "get_scenario",
    "make_backend",
    "point_from_payload",
    "point_key",
    "register_scenario",
    "shard_timeline_point",
]
