"""`RunnerConfig`: the single construction path for every runner kind.

The CLI grew its runner options one PR at a time --
``--workers/--no-cache/--cache-dir/--distributed/--queue-dir/
--queue-timeout/--max-retries`` and now ``--url`` -- and each consumer
(CLI subcommands, ``make_runner``, tests, figure wrappers) re-encoded the
same "which runner do these flags mean?" decision tree.  This dataclass
is that decision tree, once: build a config (directly, or from parsed CLI
args via :meth:`from_args`), then :meth:`make_runner` yields the serial /
process-pool / distributed runner it describes, and :meth:`make_backend`
the queue backend for worker/status-style commands.

Precedence: a queue target (``url`` wins over ``queue_dir``) selects a
:class:`~repro.runner.distributed.DistributedRunner` whose backend owns
the result store (the local cache settings are meaningless there --
:meth:`from_args` warns when they are set); otherwise a local
:class:`~repro.runner.runner.ParallelRunner` over ``workers`` processes
with the configured cache.  Either way results fold in expansion order,
so the choice never changes tables, aggregates or exports.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Union

from repro.runner.backends.base import DEFAULT_LEASE_SECONDS

if TYPE_CHECKING:
    import argparse
    import os

    from repro.runner.backends.base import QueueBackend
    from repro.runner.cache import ResultCache
    from repro.runner.runner import ParallelRunner

__all__ = ["RunnerConfig"]


@dataclass(frozen=True)
class RunnerConfig:
    """Everything that selects and parameterises an execution driver."""

    #: Local process-pool width (0 = one per CPU core); ignored for
    #: distributed runs, whose parallelism is however many workers drain
    #: the queue.
    workers: Optional[int] = 1
    #: Disable the on-disk result cache for local runs.
    no_cache: bool = False
    #: Cache directory override (``None`` = ``$REPRO_CACHE_DIR`` default).
    cache_dir: Optional[Union[str, "os.PathLike"]] = None
    #: Pre-built cache object (tests); overrides ``no_cache``/``cache_dir``.
    cache: Optional["ResultCache"] = None
    #: Filesystem queue directory (selects a distributed runner).
    queue_dir: Optional[Union[str, "os.PathLike"]] = None
    #: Coordinator URL (selects a distributed runner over HTTP; wins over
    #: ``queue_dir`` when both are set).
    url: Optional[str] = None
    #: Give up waiting for workers after this long (``None`` = forever).
    queue_timeout: Optional[float] = None
    #: Attempts per newly enqueued task (``None`` = backend default of 3).
    max_retries: Optional[int] = None
    #: Lease/heartbeat timeout for filesystem queues (HTTP backends take
    #: the coordinator's value).
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    #: Floor of the distributed wait loop's backoff.
    poll_interval: float = 0.5

    @property
    def distributed(self) -> bool:
        return self.url is not None or self.queue_dir is not None

    @property
    def queue_target(self) -> Union[str, "os.PathLike", None]:
        """The backend locator (URL wins over directory), if any."""
        return self.url if self.url is not None else self.queue_dir

    @classmethod
    def from_args(cls, args: "argparse.Namespace") -> "RunnerConfig":
        """Build from parsed CLI flags (the ``_add_runner_arguments`` set).

        Validates the flag combinations the old decision tree enforced:
        ``--distributed`` without a queue target is an error, and cache
        flags are warned about (and ignored) on distributed runs, whose
        results live in the backend's own store.
        """
        url = getattr(args, "url", None)
        queue_dir = getattr(args, "queue_dir", None)
        if getattr(args, "distributed", False) and url is None and queue_dir is None:
            raise SystemExit("--distributed requires --queue-dir DIR or --url URL")
        if (url is not None or queue_dir is not None) and (
            getattr(args, "no_cache", False) or getattr(args, "cache_dir", None)
        ):
            print(
                "note: distributed runs keep results in the queue's own store; "
                "--no-cache/--cache-dir are ignored",
                file=sys.stderr,
            )
        return cls(
            workers=getattr(args, "workers", 1),
            no_cache=getattr(args, "no_cache", False),
            cache_dir=getattr(args, "cache_dir", None),
            queue_dir=queue_dir,
            url=url,
            queue_timeout=getattr(args, "queue_timeout", None),
            max_retries=getattr(args, "max_retries", None),
            lease_seconds=getattr(args, "lease", None) or DEFAULT_LEASE_SECONDS,
        )

    def with_updates(self, **updates: object) -> "RunnerConfig":
        return replace(self, **updates)

    def make_backend(self) -> "QueueBackend":
        """The queue backend this config points at (distributed configs only)."""
        from repro.runner.backends import make_backend

        target = self.queue_target
        if target is None:
            raise ValueError("config has no queue target (set url or queue_dir)")
        return make_backend(target, lease_seconds=self.lease_seconds)

    def make_runner(self) -> "ParallelRunner":
        """The execution driver this config describes."""
        if self.distributed:
            from repro.runner.distributed import DistributedRunner

            kwargs = {
                "timeout": self.queue_timeout,
                "poll_interval": self.poll_interval,
                "lease_seconds": self.lease_seconds,
            }
            if self.max_retries is not None:
                kwargs["max_attempts"] = self.max_retries
            return DistributedRunner(self.queue_target, **kwargs)
        from repro.runner.runner import ParallelRunner

        if self.cache is not None:
            cache = self.cache
        elif self.no_cache:
            cache = None
        else:
            from repro.runner.cache import ResultCache

            cache = ResultCache(self.cache_dir)
        return ParallelRunner(workers=self.workers, cache=cache)
