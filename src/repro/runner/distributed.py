"""Distributed sweep coordinator: enqueue, wait, fold.

:class:`DistributedRunner` is a drop-in replacement for
:class:`~repro.runner.runner.ParallelRunner` whose ``run_points`` ships the
work through a :class:`~repro.runner.backends.base.QueueBackend` instead of
a local process pool: it enqueues every not-yet-finished point as a durable
task, waits for independent worker processes (``repro-lb worker``, on this
or any host sharing the queue directory or coordinator URL) to drain the
queue, and folds the stored results back **in expansion order** -- so
tables, aggregates and exports are byte-identical to a local run of the
same spec at any worker count, over any backend.

The coordinator is resumable by construction: enqueueing skips tasks that
are already done, and results live in the backend's result store keyed by
the host-independent cache key, so re-running an interrupted coordinator
(or re-dispatching the same scenario) only waits for the points that are
still missing.  The wait loop polls with capped exponential backoff (see
:meth:`QueueBackend.wait`), so an idle coordinator does not hammer a shared
mount or a remote coordinator while workers grind through long points.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.runner.backends import make_backend
from repro.runner.backends.base import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    EnqueueSummary,
    QueueBackend,
)
from repro.runner.runner import ParallelRunner, PointExecutionError
from repro.runner.spec import PointSpec
from repro.simulation.results import SimulationResult

__all__ = ["DistributedRunner"]


class DistributedRunner(ParallelRunner):
    """Runs scenario points through a shared work queue.

    Inherits ``run``/``run_aggregated`` (spec expansion, result folding,
    aggregation) from :class:`ParallelRunner`; only point execution is
    replaced.  The first argument names the backend: an existing
    :class:`QueueBackend`, an ``http(s)://`` coordinator URL, or a queue
    directory.  ``timeout=None`` waits indefinitely -- pass a bound when no
    worker may be running (e.g. in CI) so a dead queue fails loudly instead
    of hanging.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path, QueueBackend],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_interval: float = 0.5,
        timeout: Optional[float] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
    ):
        # The backend's result store doubles as this runner's cache, so
        # `run` inherits hit/miss accounting and any pre-seeded results.
        queue = make_backend(queue_dir, lease_seconds=lease_seconds)
        super().__init__(workers=1, cache=queue.results)
        self.queue = queue
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.last_enqueue: Optional[EnqueueSummary] = None

    def dispatch(self, points: Sequence[PointSpec]) -> EnqueueSummary:
        """Enqueue the points' unfinished tasks without waiting for them."""
        summary = self.queue.enqueue(points, max_attempts=self.max_attempts)
        self.last_enqueue = summary
        return summary

    def run_points(self, points: Sequence[PointSpec]) -> List[SimulationResult]:
        """Enqueue, wait for workers, and collect results in input order."""
        self.dispatch(points)
        task_ids = [self.queue.task_id(point) for point in points]
        self.queue.wait(
            set(task_ids), poll_interval=self.poll_interval, timeout=self.timeout
        )
        for point, task_id in zip(points, task_ids):
            if not self.queue.is_done(task_id):
                error = self.queue.last_error(task_id) or "failed on a worker"
                raise PointExecutionError(
                    point,
                    RuntimeError(
                        f"task {task_id} exhausted its retry budget "
                        f"({self.queue.attempts(task_id)} attempt(s)): {error}"
                    ),
                )
        results: List[SimulationResult] = []
        for point, task_id in zip(points, task_ids):
            result = self.queue.load_result(point)
            if result is None:
                raise PointExecutionError(
                    point,
                    RuntimeError(
                        f"task {task_id} is marked done but its result is "
                        f"missing from {self.queue.describe()}"
                    ),
                )
            results.append(result)
        return results
