"""Named scenario registry.

Figure modules under :mod:`repro.experiments` register a *spec builder* per
scenario: a callable returning a :class:`~repro.runner.spec.ScenarioSpec`,
optionally parameterised by axis overrides (system sizes, strategies, run
limits, ...).  The CLI and the benchmark harness resolve scenarios by name
through this registry instead of importing figure modules directly.

The registry is populated as a side effect of importing
:mod:`repro.experiments`; :func:`get_scenario` triggers that import lazily
to avoid a circular dependency (figure modules import the runner package).
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List

from repro.runner.spec import ScenarioSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "build_scenario",
    "available_scenarios",
]

SpecBuilder = Callable[..., ScenarioSpec]

_REGISTRY: Dict[str, SpecBuilder] = {}


def register_scenario(name: str, builder: SpecBuilder) -> SpecBuilder:
    """Register a spec builder under ``name`` (last registration wins)."""
    _REGISTRY[name] = builder
    return builder


def _ensure_populated() -> None:
    if not _REGISTRY:
        importlib.import_module("repro.experiments")


def get_scenario(name: str) -> SpecBuilder:
    """Look up a registered spec builder by name."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def build_scenario(name: str, **overrides) -> ScenarioSpec:
    """Build the named scenario's spec with axis/limit overrides applied."""
    return get_scenario(name)(**overrides)


def available_scenarios() -> List[str]:
    _ensure_populated()
    return sorted(_REGISTRY)
