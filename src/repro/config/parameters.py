"""Simulation parameters with the defaults of Fig. 4 of the paper.

Every number that appears in the parameter table of the paper (system
configuration, database and query profile) is encoded here as a dataclass
default, so the experiment modules only override what a specific figure
changes (memory size, number of disks, arrival rates, scan selectivity, ...).

All times inside the simulator are expressed in **seconds**, all sizes in
**pages** or **bytes**, CPU work in **instructions**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = [
    "InstructionCosts",
    "CpuConfig",
    "DiskConfig",
    "BufferConfig",
    "NetworkConfig",
    "NodeClass",
    "TopologyConfig",
    "RelationConfig",
    "JoinQueryConfig",
    "OltpConfig",
    "ControlConfig",
    "SystemConfig",
    "MS",
    "REPLICATION_POLICIES",
]

#: Convenience constant: one millisecond in seconds.
MS = 1e-3

#: Replica placement policies accepted by :attr:`SystemConfig.replication`
#: (``None`` means the paper's single-copy Shared Nothing database).
REPLICATION_POLICIES = ("mirror", "chained")


@dataclass(frozen=True)
class InstructionCosts:
    """Average number of instructions per request type (Fig. 4, left column)."""

    initiate_transaction: int = 25_000
    terminate_transaction: int = 25_000
    io_operation: int = 3_000
    send_message: int = 5_000
    receive_message: int = 10_000
    copy_message_packet: int = 5_000  # copy one 8 KB packet
    read_tuple: int = 500  # read a tuple from a memory page
    hash_tuple: int = 500
    insert_into_hash_table: int = 100
    write_tuple_to_output: int = 100
    probe_hash_table: int = 200


@dataclass(frozen=True)
class CpuConfig:
    """CPU configuration per processing element (PE)."""

    mips: float = 20.0  # 20 MIPS per Fig. 4
    cpus_per_pe: int = 1
    # Scheduling quantum: large CPU demands are served in slices of this many
    # instructions so that concurrent transactions interleave (round-robin
    # style) instead of blocking each other for tens of milliseconds.
    quantum_instructions: int = 100_000

    def seconds_for(self, instructions: float) -> float:
        """Service time in seconds for a CPU request of ``instructions``."""
        return instructions / (self.mips * 1e6)


@dataclass(frozen=True)
class DiskConfig:
    """Disk devices and controller configuration per PE (Fig. 4)."""

    disks_per_pe: int = 10  # varied per experiment (Fig. 7 uses 1, Fig. 9 uses 5)
    controller_service_time: float = 1.0 * MS  # per page
    transmission_time_per_page: float = 0.4 * MS
    avg_access_time: float = 15.0 * MS
    prefetch_delay_per_page: float = 1.0 * MS
    cache_pages: int = 200  # LRU disk cache in the controller
    prefetch_pages: int = 4

    def sequential_io_time(self, pages: int) -> float:
        """Disk busy time for one prefetching I/O reading ``pages`` pages."""
        return self.avg_access_time + pages * self.prefetch_delay_per_page

    def random_io_time(self) -> float:
        """Disk busy time for a single-page random I/O."""
        return self.avg_access_time + self.prefetch_delay_per_page

    def controller_time(self, pages: int) -> float:
        """Controller + transmission time for ``pages`` pages."""
        return pages * (self.controller_service_time + self.transmission_time_per_page)


@dataclass(frozen=True)
class BufferConfig:
    """Main-memory buffer configuration per PE (Fig. 4)."""

    page_size_bytes: int = 8_192  # 8 KB pages
    buffer_pages: int = 50  # 0.4 MB per PE (deliberately small, see §5.1)

    @property
    def buffer_bytes(self) -> int:
        return self.page_size_bytes * self.buffer_pages


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnection network (EDS-prototype-like parameters).

    The paper charges communication mainly as CPU instructions at sender and
    receiver (send/receive/copy in :class:`InstructionCosts`); the wire itself
    is a scalable high-speed interconnect.  We model a small per-packet wire
    latency plus a bandwidth-derived transfer time.
    """

    packet_size_bytes: int = 8_192
    wire_latency: float = 0.05 * MS
    bandwidth_bytes_per_s: float = 100e6

    def packets_for(self, nbytes: int) -> int:
        """Number of fixed-size packets needed for a message of ``nbytes``."""
        if nbytes <= 0:
            return 1
        return max(1, math.ceil(nbytes / self.packet_size_bytes))

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for a message of ``nbytes`` (excludes CPU costs)."""
        packets = self.packets_for(nbytes)
        return packets * self.wire_latency + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class RelationConfig:
    """A base relation with its physical design (Fig. 4, right column)."""

    name: str
    num_tuples: int
    tuple_size_bytes: int = 400
    blocking_factor: int = 20  # tuples per page
    index_type: str = "clustered-btree"
    storage: str = "disk"  # "disk" or "memory"
    declustering_fraction: float = 1.0  # fraction of all PEs holding fragments

    @property
    def pages(self) -> int:
        """Number of data pages of the relation."""
        return math.ceil(self.num_tuples / self.blocking_factor)

    @property
    def size_bytes(self) -> int:
        return self.num_tuples * self.tuple_size_bytes

    def pages_for_tuples(self, tuples: int) -> int:
        """Pages occupied by ``tuples`` tuples (clustered storage)."""
        return max(0, math.ceil(tuples / self.blocking_factor))


def default_relation_a() -> RelationConfig:
    """Relation A (inner join input): 250 000 tuples, 100 MB, on 20 % of PEs."""
    return RelationConfig(
        name="A",
        num_tuples=250_000,
        declustering_fraction=0.2,
    )


def default_relation_b() -> RelationConfig:
    """Relation B (outer join input): 1 000 000 tuples, 400 MB, on 80 % of PEs."""
    return RelationConfig(
        name="B",
        num_tuples=1_000_000,
        declustering_fraction=0.8,
    )


@dataclass(frozen=True)
class JoinQueryConfig:
    """Profile of the two-way join query used in the evaluation (Fig. 4)."""

    scan_selectivity: float = 0.01  # 1 % default; varied in Fig. 8
    result_fraction_of_inner: float = 1.0  # join result = 100 % of inner scan output
    fudge_factor: float = 1.05  # hash table overhead F
    access_method: str = "clustered-index"
    arrival_rate_per_pe: float = 0.25  # queries per second per PE (multi-user)
    result_tuple_size_bytes: int = 400

    def scaled(self, **overrides) -> "JoinQueryConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class OltpConfig:
    """Debit-credit (TPC-B-like) OLTP transaction profile (§5.3).

    Each transaction performs four non-clustered index selects on relations
    other than A and B and updates the corresponding tuples.  Affinity-based
    routing achieves largely local processing.
    """

    tuple_accesses: int = 4
    arrival_rate_per_node: float = 100.0  # transactions per second per OLTP node
    placement: str = "A"  # "A" nodes (Fig. 9a) or "B" nodes (Fig. 9b)
    index_levels: int = 2  # non-clustered B+-tree levels traversed per select
    buffer_hit_ratio: float = 0.92  # fraction of page accesses served from buffer
    log_io_per_commit: int = 1
    # Steady-state LRU footprint of OLTP pages in the global buffer.  The LRU
    # buffer of an OLTP node fills up with account/index pages, which is what
    # makes the memory-aware strategies steer join work away from OLTP nodes
    # (§5.3).  Calibrated together with the hit ratio and per-call overhead so
    # that 100 TPS per node load a node to roughly the paper's figures
    # (~50 % CPU, ~60 % disk).
    working_set_pages: int = 44
    instructions_per_call_overhead: int = 8_000


@dataclass(frozen=True)
class NodeClass:
    """A hardware class covering a contiguous block of PEs.

    Classes scale the uniform Fig. 4 baseline: ``mips_factor`` multiplies the
    CPU speed, ``memory_factor`` the buffer pool size, and ``disk_factor`` the
    disk/controller *speed* (2.0 halves every per-page and access time).  A
    class covers either an absolute ``count`` of PEs or a ``fraction`` of the
    system; classes claim contiguous blocks starting at PE 0 in declaration
    order, and any remaining PEs keep the unscaled default hardware.  A class
    whose factors are all 1.0 is indistinguishable from the default.
    """

    name: str
    count: Optional[int] = None
    fraction: Optional[float] = None
    mips_factor: float = 1.0
    memory_factor: float = 1.0
    disk_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node class needs a non-empty name")
        if (self.count is None) == (self.fraction is None):
            raise ValueError(f"node class {self.name!r}: give exactly one of count/fraction")
        if self.count is not None and self.count < 1:
            raise ValueError(f"node class {self.name!r}: count must be >= 1")
        if self.fraction is not None and not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"node class {self.name!r}: fraction must be in (0, 1]")
        for label in ("mips_factor", "memory_factor", "disk_factor"):
            if getattr(self, label) <= 0.0:
                raise ValueError(f"node class {self.name!r}: {label} must be > 0")

    @property
    def is_default_hardware(self) -> bool:
        """True when the class does not alter any resource."""
        return self.mips_factor == 1.0 and self.memory_factor == 1.0 and self.disk_factor == 1.0

    def resolve_count(self, num_pe: int) -> int:
        """PEs covered by this class in a system of ``num_pe`` nodes."""
        if self.count is not None:
            return min(self.count, num_pe)
        return min(num_pe, max(1, round(num_pe * self.fraction)))


@dataclass(frozen=True)
class TopologyConfig:
    """Tiered interconnect topology: racks grouped into regions.

    PEs map onto racks (and racks onto regions) as contiguous blocks.  A
    message between two PEs is charged per tier: same rack keeps the flat
    Fig. 4 wire parameters, crossing racks multiplies the per-packet latency
    by ``cross_rack_latency_factor`` and divides the bandwidth by
    ``cross_rack_bandwidth_factor`` (factors >= 1 slow the wire down), and
    crossing regions uses the ``cross_region_*`` factors.  The default is a
    single rack, which is bit-identical to the historical flat interconnect.
    """

    racks: int = 1
    regions: int = 1
    cross_rack_latency_factor: float = 1.0
    cross_rack_bandwidth_factor: float = 1.0
    cross_region_latency_factor: float = 1.0
    cross_region_bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.racks < 1:
            raise ValueError("topology needs at least one rack")
        if self.regions < 1:
            raise ValueError("topology needs at least one region")
        if self.regions > self.racks:
            raise ValueError("cannot have more regions than racks")
        for label in (
            "cross_rack_latency_factor",
            "cross_rack_bandwidth_factor",
            "cross_region_latency_factor",
            "cross_region_bandwidth_factor",
        ):
            if getattr(self, label) <= 0.0:
                raise ValueError(f"topology {label} must be > 0")

    @property
    def is_flat(self) -> bool:
        """True when every (src, dst) pair sees the uniform wire."""
        if self.racks <= 1:
            return True
        if self.cross_rack_latency_factor != 1.0 or self.cross_rack_bandwidth_factor != 1.0:
            return False
        if self.regions <= 1:
            return True
        return (
            self.cross_region_latency_factor == 1.0
            and self.cross_region_bandwidth_factor == 1.0
        )

    @property
    def tiers(self) -> int:
        """Number of distinct communication tiers (1, 2, or 3)."""
        if self.racks <= 1:
            return 1
        return 3 if self.regions > 1 else 2

    def rack_of(self, pe_id: int, num_pe: int) -> int:
        """Rack index of ``pe_id`` (contiguous blocks of PEs per rack)."""
        if num_pe <= 0:
            return 0
        return min(self.racks - 1, max(0, pe_id) * self.racks // num_pe)

    def region_of_rack(self, rack: int) -> int:
        """Region index of ``rack`` (contiguous blocks of racks per region)."""
        return min(self.regions - 1, max(0, rack) * self.regions // self.racks)

    def tier_between(self, src: int, dst: int, num_pe: int) -> int:
        """0 = same rack, 1 = cross-rack same region, 2 = cross-region."""
        if src == dst or self.racks <= 1:
            return 0
        src_rack = self.rack_of(src, num_pe)
        dst_rack = self.rack_of(dst, num_pe)
        if src_rack == dst_rack:
            return 0
        if self.region_of_rack(src_rack) == self.region_of_rack(dst_rack):
            return 1
        return 2

    def latency_factor(self, tier: int) -> float:
        """Per-packet wire-latency multiplier for ``tier``."""
        if tier <= 0:
            return 1.0
        if tier == 1:
            return self.cross_rack_latency_factor
        return self.cross_region_latency_factor

    def bandwidth_factor(self, tier: int) -> float:
        """Bandwidth divisor (>= 1 slows the link) for ``tier``."""
        if tier <= 0:
            return 1.0
        if tier == 1:
            return self.cross_rack_bandwidth_factor
        return self.cross_region_bandwidth_factor


@dataclass(frozen=True)
class ControlConfig:
    """Dynamic load-balancing control parameters (§3)."""

    report_interval: float = 0.1  # how often PEs report utilisation (seconds)
    utilization_window: float = 1.0  # CPU utilisation averaging window (seconds)
    cpu_reduction_exponent: float = 3.0  # exponent in formula (3.2)
    adaptive_cpu_increment: float = 0.05  # artificial CPU increase per assigned join (LUC)
    startup_instructions_per_join_processor: int = 30_000
    # Calibration factor applied to the per-processor startup cost when the
    # analytic cost model searches for psu-opt (documented in DESIGN.md).
    cost_model_startup_factor: float = 0.72


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated Shared Nothing system."""

    num_pe: int = 40
    multiprogramming_level: int = 10  # max concurrent transactions per PE
    cpu: CpuConfig = field(default_factory=CpuConfig)
    disk: DiskConfig = field(default_factory=DiskConfig)
    buffer: BufferConfig = field(default_factory=BufferConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    costs: InstructionCosts = field(default_factory=InstructionCosts)
    control: ControlConfig = field(default_factory=ControlConfig)
    relation_a: RelationConfig = field(default_factory=default_relation_a)
    relation_b: RelationConfig = field(default_factory=default_relation_b)
    join_query: JoinQueryConfig = field(default_factory=JoinQueryConfig)
    oltp: Optional[OltpConfig] = None
    # Heterogeneous hardware: contiguous PE blocks per class starting at PE 0
    # (declaration order); PEs beyond the declared classes keep the uniform
    # Fig. 4 hardware.  Empty tuple + single-rack topology = historical system.
    node_classes: Tuple[NodeClass, ...] = ()
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    # Replica placement policy for every relation: ``None`` (single-copy
    # Shared Nothing, the paper's system), ``"mirror"`` (each fragment has a
    # full backup on its partner PE) or ``"chained"`` (chained declustering:
    # the backup lives on the next PE of the relation's decluster ring, so a
    # failed PE's read load spreads across the survivors).
    replication: Optional[str] = None
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_pe < 1:
            raise ValueError("num_pe must be >= 1")
        if self.replication is not None and self.replication not in REPLICATION_POLICIES:
            raise ValueError(
                f"unknown replication policy {self.replication!r}; "
                f"expected one of {REPLICATION_POLICIES} (or None)"
            )
        if self.multiprogramming_level < 1:
            raise ValueError("multiprogramming_level must be >= 1")
        blocks: list[tuple[int, int, NodeClass]] = []
        if self.node_classes:
            names = [node_class.name for node_class in self.node_classes]
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate node class names: {names}")
            start = 0
            for node_class in self.node_classes:
                count = node_class.resolve_count(self.num_pe)
                if start + count > self.num_pe:
                    raise ValueError(
                        f"node classes cover more than num_pe={self.num_pe} PEs"
                    )
                blocks.append((start, start + count, node_class))
                start += count
        object.__setattr__(self, "_class_blocks", tuple(blocks))
        object.__setattr__(self, "_effective_cache", {})

    # -- derived quantities ----------------------------------------------
    @property
    def a_node_count(self) -> int:
        """Number of PEs holding fragments of relation A (at least 1)."""
        return max(1, round(self.num_pe * self.relation_a.declustering_fraction))

    @property
    def b_node_count(self) -> int:
        """Number of PEs holding fragments of relation B (the rest)."""
        return max(1, self.num_pe - self.a_node_count)

    @property
    def a_node_ids(self) -> tuple[int, ...]:
        """PE identifiers owning relation A fragments (0-based, first block)."""
        return tuple(range(self.a_node_count))

    @property
    def b_node_ids(self) -> tuple[int, ...]:
        """PE identifiers owning relation B fragments."""
        return tuple(range(self.a_node_count, self.a_node_count + self.b_node_count))

    # -- heterogeneous hardware ------------------------------------------
    @property
    def heterogeneous(self) -> bool:
        """True when at least one PE runs non-default hardware."""
        return any(
            not node_class.is_default_hardware and end > start
            for start, end, node_class in self._class_blocks
        )

    def node_class_of(self, pe_id: int) -> Optional[NodeClass]:
        """The :class:`NodeClass` covering ``pe_id`` (None = default hardware)."""
        for start, end, node_class in self._class_blocks:
            if start <= pe_id < end:
                return node_class
        return None

    def node_class_name(self, pe_id: int) -> str:
        """Class name for ``pe_id`` (``"default"`` for uncovered PEs)."""
        node_class = self.node_class_of(pe_id)
        return node_class.name if node_class is not None else "default"

    def effective_cpu(self, pe_id: int) -> CpuConfig:
        """CPU configuration of ``pe_id``; the *same object* as ``self.cpu``
        for default-hardware PEs so the uniform path stays bit-identical."""
        node_class = self.node_class_of(pe_id)
        if node_class is None or node_class.mips_factor == 1.0:
            return self.cpu
        key = ("cpu", node_class.name)
        cached = self._effective_cache.get(key)
        if cached is None:
            cached = replace(self.cpu, mips=self.cpu.mips * node_class.mips_factor)
            self._effective_cache[key] = cached
        return cached

    def effective_disk(self, pe_id: int) -> DiskConfig:
        """Disk configuration of ``pe_id``; ``disk_factor`` scales *speed*,
        so every per-page and access time is divided by it."""
        node_class = self.node_class_of(pe_id)
        if node_class is None or node_class.disk_factor == 1.0:
            return self.disk
        key = ("disk", node_class.name)
        cached = self._effective_cache.get(key)
        if cached is None:
            factor = node_class.disk_factor
            cached = replace(
                self.disk,
                controller_service_time=self.disk.controller_service_time / factor,
                transmission_time_per_page=self.disk.transmission_time_per_page / factor,
                avg_access_time=self.disk.avg_access_time / factor,
                prefetch_delay_per_page=self.disk.prefetch_delay_per_page / factor,
            )
            self._effective_cache[key] = cached
        return cached

    def effective_buffer_pages(self, pe_id: int) -> int:
        """Buffer pool size (pages) of ``pe_id``."""
        node_class = self.node_class_of(pe_id)
        if node_class is None or node_class.memory_factor == 1.0:
            return self.buffer.buffer_pages
        return max(1, round(self.buffer.buffer_pages * node_class.memory_factor))

    def cpu_factor(self, pe_id: int) -> float:
        """Relative CPU speed of ``pe_id`` (1.0 = default hardware)."""
        node_class = self.node_class_of(pe_id)
        return node_class.mips_factor if node_class is not None else 1.0

    @property
    def mean_mips_factor(self) -> float:
        """System-wide mean relative CPU speed (1.0 for uniform systems)."""
        if not self.heterogeneous:
            return 1.0
        total = float(self.num_pe)
        for start, end, node_class in self._class_blocks:
            total += (end - start) * (node_class.mips_factor - 1.0)
        return total / self.num_pe

    def with_overrides(self, **overrides) -> "SystemConfig":
        """Return a copy with selected top-level fields replaced."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line human-readable summary used by the CLI and reports."""
        oltp = (
            f", OLTP {self.oltp.arrival_rate_per_node:g} TPS on {self.oltp.placement} nodes"
            if self.oltp
            else ""
        )
        classes = ""
        if self.node_classes:
            parts = ", ".join(
                f"{end - start}x{node_class.name}"
                for start, end, node_class in self._class_blocks
            )
            classes = f", classes [{parts}]"
        topo = "" if self.topology.is_flat else f", {self.topology.racks} racks"
        repl = "" if self.replication is None else f", {self.replication} replication"
        return (
            f"{self.num_pe} PE x {self.cpu.mips:g} MIPS, "
            f"{self.buffer.buffer_pages} buffer pages, "
            f"{self.disk.disks_per_pe} disks/PE, "
            f"join selectivity {self.join_query.scan_selectivity:.2%}"
            f"{oltp}{classes}{topo}{repl}"
        )
