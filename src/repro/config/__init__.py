"""Configuration dataclasses with the paper's Fig. 4 defaults."""

from repro.config.parameters import (
    MS,
    BufferConfig,
    ControlConfig,
    CpuConfig,
    DiskConfig,
    InstructionCosts,
    JoinQueryConfig,
    NetworkConfig,
    OltpConfig,
    RelationConfig,
    SystemConfig,
    default_relation_a,
    default_relation_b,
)

__all__ = [
    "MS",
    "BufferConfig",
    "ControlConfig",
    "CpuConfig",
    "DiskConfig",
    "InstructionCosts",
    "JoinQueryConfig",
    "NetworkConfig",
    "OltpConfig",
    "RelationConfig",
    "SystemConfig",
    "default_relation_a",
    "default_relation_b",
]
