"""Command-line interface.

Examples::

    repro-lb list-strategies
    repro-lb parameters
    repro-lb simulate --pe 40 --strategy OPT-IO-CPU --joins 50
    repro-lb experiment figure6 --joins 30 --sizes 20 40 80 --workers 4
    repro-lb experiment figure6 --replicates 5 --workers 4 --export csv --output out.csv
    repro-lb experiment dynamic --sizes 20 --export csv
    repro-lb sweep --strategies MIN-IO OPT-IO-CPU --sizes 20 40 --rates 0.2 0.3
    repro-lb sweep --arrival mmpp --arrival-param burst_factor=4 --sizes 20 \
        --strategies OPT-IO-CPU psu_opt+RANDOM --timeline-window 2
    repro-lb sweep --rates 0.25 --replicates 5 --perturb arrival_rate=0.1

Experiments and sweeps run through the declarative scenario engine
(:mod:`repro.runner`): points fan out over ``--workers`` processes and
completed points are cached on disk (``--no-cache`` disables the cache,
``REPRO_CACHE_DIR`` relocates it).  ``--replicates N`` repeats every point
with distinct derived seeds and reports mean ± 95 % CI; ``--perturb``
additionally jitters a workload axis per replicate, so the intervals cover
workload noise.  ``--export csv|json`` writes the per-replicate and
aggregate rows to a file (plus one row per timeline window for dynamic
sweeps).  ``--arrival {poisson,deterministic,mmpp,sine,step,trace}`` drives
the sweep with a (possibly non-stationary) arrival process and records a
windowed time series per run.

Distributed sweeps shard a scenario's points across worker processes, either
through a shared queue directory or through a long-lived HTTP coordinator::

    repro-lb dispatch figure5 --queue-dir /mnt/queue --replicates 5
    repro-lb worker --queue-dir /mnt/queue          # on each host
    repro-lb status --queue-dir /mnt/queue
    repro-lb experiment figure5 --replicates 5 \
        --distributed --queue-dir /mnt/queue --export csv

    repro-lb serve --port 8723                      # coordinator host
    repro-lb worker --backend http --url http://coord:8723   # any host
    repro-lb experiment figure5 --url http://coord:8723 --export csv
    curl http://coord:8723/metrics                  # Prometheus scrape

``experiment``/``sweep`` with a queue target (``--queue-dir`` or ``--url``)
enqueue any missing points, wait for workers to drain the queue and fold the
results in expansion order -- output is byte-identical to a local
``--workers N`` run over either backend.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.parameters import OltpConfig, SystemConfig
from repro.experiments import render_parameter_table
from repro.runner import (
    ParallelRunner,
    RunnerConfig,
    ScenarioSpec,
    Sweep,
    available_scenarios,
    build_scenario,
    make_backend,
)
from repro.runner.queue import DEFAULT_LEASE_SECONDS
from repro.runner.spec import DEFAULT_TIMELINE_WINDOW
from repro.scheduling.strategy import strategy_names
from repro.simulation.driver import SimulationDriver
from repro.workload.arrivals import ARRIVAL_KINDS

__all__ = ["main", "build_parser"]


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 1, or 0 for one per CPU core")
    return value


def _replicate_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="worker processes for independent points (0 = one per CPU core)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate; do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-lb)",
    )
    parser.add_argument(
        "--replicates",
        type=_replicate_count,
        default=1,
        help=(
            "independent runs per point with distinct derived seeds; tables "
            "then report mean ± 95%% CI across replicates"
        ),
    )
    parser.add_argument(
        "--export",
        choices=("csv", "json"),
        default=None,
        help="also write the result rows (per replicate + aggregates) to a file",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="export destination (default: <figure>.<format> in the working directory)",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "run through a shared work queue instead of a local process pool "
            "(requires --queue-dir or --url; points are executed by "
            "`repro-lb worker` processes draining that queue)"
        ),
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="work-queue directory for --distributed (implies --distributed)",
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help=(
            "`repro-lb serve` coordinator URL (implies --distributed; wins "
            "over --queue-dir when both are given)"
        ),
    )
    parser.add_argument(
        "--queue-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting for workers after this long (default: wait forever)",
    )
    parser.add_argument(
        "--max-retries",
        type=_replicate_count,
        default=None,
        metavar="N",
        help=(
            "distributed only: attempts per newly enqueued task before it is "
            "marked failed (default 3; match the value used at dispatch time)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description=(
            "Dynamic multi-resource load balancing in parallel database systems "
            "(reproduction of Rahm & Marek, VLDB 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-strategies", help="list the registered load balancing strategies")
    sub.add_parser("parameters", help="print the Fig. 4 parameter table")

    simulate = sub.add_parser("simulate", help="run one multi-user simulation point")
    simulate.add_argument("--pe", type=int, default=40, help="number of processing elements")
    simulate.add_argument("--strategy", default="OPT-IO-CPU", help="load balancing strategy")
    simulate.add_argument("--joins", type=int, default=50, help="measured join completions")
    simulate.add_argument("--selectivity", type=float, default=0.01, help="scan selectivity")
    simulate.add_argument("--rate", type=float, default=0.25, help="join arrival rate per PE (QPS)")
    simulate.add_argument("--oltp", choices=["none", "A", "B"], default="none",
                          help="add a debit-credit OLTP load on the A or B nodes")
    simulate.add_argument("--oltp-tps", type=float, default=100.0, help="OLTP TPS per OLTP node")
    simulate.add_argument("--single-user", action="store_true", help="single-user mode instead")
    simulate.add_argument("--time-limit", type=float, default=120.0, help="simulated seconds cap")

    experiment = sub.add_parser("experiment", help="reproduce one of the paper's figures")
    experiment.add_argument("figure", choices=available_scenarios(),
                            help="registered scenario to reproduce")
    experiment.add_argument("--joins", type=int, default=None, help="measured joins per point")
    experiment.add_argument("--sizes", type=int, nargs="*", default=None, help="system sizes")
    experiment.add_argument("--time-limit", type=float, default=None, help="simulated seconds cap")
    _add_runner_arguments(experiment)

    sweep = sub.add_parser(
        "sweep",
        help="run an ad-hoc scenario straight from CLI axes (no figure module needed)",
    )
    sweep.add_argument("--strategies", nargs="+", default=["OPT-IO-CPU"],
                       help="load balancing strategies to compare")
    sweep.add_argument("--sizes", type=int, nargs="+", default=[40], help="system sizes (#PE)")
    sweep.add_argument("--rates", type=float, nargs="*", default=None,
                       help="join arrival rates per PE (QPS)")
    sweep.add_argument("--selectivities", type=float, nargs="*", default=None,
                       help="scan selectivities (fractions, e.g. 0.01)")
    sweep.add_argument("--scenario", choices=["homogeneous", "memory-bound", "mixed"],
                       default="homogeneous", help="base scenario configuration")
    sweep.add_argument("--oltp", choices=["A", "B"], default=None,
                       help="OLTP placement (implies --scenario mixed)")
    sweep.add_argument("--joins", type=int, default=None, help="measured joins per point")
    sweep.add_argument("--time-limit", type=float, default=None,
                       help="simulated seconds cap (timeline sweeps: the run duration)")
    sweep.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="PATH=VALUE",
                       help="dotted config override, e.g. --set buffer.buffer_pages=25")
    sweep.add_argument(
        "--arrival",
        choices=ARRIVAL_KINDS,
        default=None,
        help=(
            "arrival process (switches the sweep to windowed timeline points; "
            "'trace' pre-materialises and replays the Poisson streams)"
        ),
    )
    sweep.add_argument(
        "--arrival-param", dest="arrival_params", action="append", default=[],
        metavar="NAME=VALUE",
        help=(
            "arrival-process shape parameter, e.g. --arrival-param surge_factor=3 "
            "(repeatable; see repro.workload.arrivals.make_arrival_process)"
        ),
    )
    sweep.add_argument(
        "--timeline-window", type=float, default=None, metavar="SECONDS",
        help=(
            "window length for the per-run time series (implies timeline points; "
            f"default {DEFAULT_TIMELINE_WINDOW:g} s when --arrival is given)"
        ),
    )
    sweep.add_argument(
        "--perturb", dest="perturb", action="append", default=[],
        metavar="AXIS=FRACTION",
        help=(
            "jitter a workload axis per replicate, e.g. --perturb arrival_rate=0.1 "
            "(axes: arrival_rate, selectivity; needs --replicates >= 2 and "
            "explicit values on the perturbed axis)"
        ),
    )
    sweep.add_argument(
        "--node-class", dest="node_classes", action="append", default=[],
        metavar="NAME=SIZE[:ATTR=FACTOR...]",
        help=(
            "declare a hardware class covering SIZE PEs (a count, or a fraction "
            "< 1) with scaled resources, e.g. --node-class fast=0.5:mips=2.0"
            ":memory=2.0 (attrs: mips, memory, disk; repeatable -- classes fill "
            "contiguous PE blocks from PE 0, remaining PEs keep the baseline)"
        ),
    )
    sweep.add_argument(
        "--topology", default=None,
        metavar="KEY=VALUE[:KEY=VALUE...]",
        help=(
            "tiered interconnect, e.g. --topology racks=4:inter_latency=8.0"
            ":inter_bandwidth=2.0 (keys: racks, regions, inter_latency, "
            "inter_bandwidth, region_latency, region_bandwidth)"
        ),
    )
    sweep.add_argument(
        "--fault", dest="faults", action="append", default=[],
        metavar="KIND@TIME[:KEY=VALUE...]",
        help=(
            "inject a fault, e.g. --fault crash@15:pe=1:duration=15, "
            "--fault crash@15:rack=1:duration=15 (correlated rack crash), "
            "--fault crash@15:pe=1:surge=3 (arrival surge while down) or "
            "--fault remove@20:pe=5:drain=true (planned zero-abort drain; "
            "kinds: crash, recover, degrade, restore, disk_fail, add, "
            "remove; keys: pe, factor, duration, restart_delay, pages, "
            "rack, surge, drain; repeatable -- all faults form one plan "
            "applied to every point)"
        ),
    )
    sweep.add_argument(
        "--replication", choices=["none", "mirror", "chained"], default=None,
        help=(
            "replica placement for every relation: mirror (partner PE) or "
            "chained (chained declustering -- backups on the next decluster-"
            "ring PE, spreading a failed PE's read load across survivors)"
        ),
    )
    _add_runner_arguments(sweep)

    dispatch = sub.add_parser(
        "dispatch",
        help="shard a scenario into durable work-queue tasks (no execution)",
    )
    dispatch.add_argument("figure", choices=available_scenarios(),
                          help="registered scenario to shard")
    dispatch.add_argument("--queue-dir", default=None, metavar="DIR",
                          help="work-queue directory (shared across worker hosts)")
    dispatch.add_argument("--url", default=None, metavar="URL",
                          help="`repro-lb serve` coordinator URL (instead of --queue-dir)")
    dispatch.add_argument("--joins", type=int, default=None, help="measured joins per point")
    dispatch.add_argument("--sizes", type=int, nargs="*", default=None, help="system sizes")
    dispatch.add_argument("--time-limit", type=float, default=None,
                          help="simulated seconds cap")
    dispatch.add_argument("--replicates", type=_replicate_count, default=1,
                          help="independent runs per point (distinct derived seeds)")
    dispatch.add_argument("--max-retries", type=_replicate_count, default=3,
                          metavar="N", help="attempts per task before it is marked failed")

    worker = sub.add_parser(
        "worker",
        help="claim and execute work-queue tasks until the queue drains",
    )
    worker.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="work-queue directory to drain")
    worker.add_argument("--backend", choices=("fs", "http"), default=None,
                        help=(
                            "queue backend kind (inferred from --queue-dir/--url "
                            "when omitted)"
                        ))
    worker.add_argument("--url", default=None, metavar="URL",
                        help="`repro-lb serve` coordinator URL (for --backend http)")
    worker.add_argument("--max-tasks", type=_replicate_count, default=None, metavar="N",
                        help="exit after claiming at most N tasks (default: drain)")
    worker.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                        help="sleep between claim attempts when nothing is claimable")
    worker.add_argument("--lease", type=float, default=DEFAULT_LEASE_SECONDS,
                        metavar="SECONDS",
                        help="lease/heartbeat timeout (default %(default)g; must "
                             "match the other participants of this queue)")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker name for leases/logs (default: host-pid)")

    profile = sub.add_parser(
        "profile",
        help="run one scenario point under cProfile and print the hottest entries",
    )
    profile.add_argument("figure", choices=available_scenarios(),
                         help="registered scenario to profile")
    profile.add_argument("--point", type=int, default=0, metavar="N",
                         help="index into the expanded point list (default 0; "
                              "see --list-points)")
    profile.add_argument("--top", type=int, default=25, metavar="K",
                         help="number of profile entries to print (default %(default)s)")
    profile.add_argument("--sort", choices=["cumulative", "tottime", "ncalls"],
                         default="cumulative",
                         help="profile sort order (default %(default)s)")
    profile.add_argument("--list-points", action="store_true",
                         help="list the scenario's expanded points and exit")
    profile.add_argument("--joins", type=int, default=None, help="measured joins per point")
    profile.add_argument("--sizes", type=int, nargs="*", default=None, help="system sizes")
    profile.add_argument("--time-limit", type=float, default=None,
                         help="simulated seconds cap")
    profile.add_argument("--output", default=None, metavar="PATH",
                         help="also dump the raw pstats data to PATH "
                              "(inspect with python -m pstats)")

    status = sub.add_parser("status", help="summarise a work queue's task states")
    status.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="work-queue directory to inspect")
    status.add_argument("--url", default=None, metavar="URL",
                        help="`repro-lb serve` coordinator URL (instead of --queue-dir)")
    status.add_argument("--lease", type=float, default=DEFAULT_LEASE_SECONDS,
                        metavar="SECONDS",
                        help="lease timeout used to classify running vs stale leases")
    status.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of the text summary")

    serve = sub.add_parser(
        "serve",
        help=(
            "run the HTTP coordinator: an in-memory work queue + result store "
            "with /sweeps submission and a Prometheus /metrics endpoint"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default %(default)s)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port (default 8723; 0 picks a free port)")
    serve.add_argument("--lease", type=float, default=DEFAULT_LEASE_SECONDS,
                       metavar="SECONDS",
                       help="lease/heartbeat timeout handed to connecting workers")
    serve.add_argument("--max-retries", type=_replicate_count, default=3, metavar="N",
                       help="attempts per task before it is marked failed")
    serve.add_argument(
        "--shard-windows", type=int, default=0, metavar="W",
        help=(
            "shard long timeline points into W-window prefix subtasks so "
            "/metrics streams per-window gauges while the sweep runs "
            "(0 disables sharding)"
        ),
    )
    return parser


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    return RunnerConfig.from_args(args).make_runner()


def _run_simulate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    oltp = None if args.oltp == "none" else OltpConfig(placement=args.oltp,
                                                       arrival_rate_per_node=args.oltp_tps)
    config = SystemConfig(num_pe=args.pe, oltp=oltp)
    config = config.with_overrides(
        join_query=replace(
            config.join_query,
            scan_selectivity=args.selectivity,
            arrival_rate_per_pe=args.rate,
        )
    )
    driver = SimulationDriver(config, strategy=args.strategy)
    if args.single_user:
        result = driver.run_single_user(num_queries=max(1, args.joins // 10))
    else:
        result = driver.run_multi_user(
            measured_joins=args.joins, max_simulated_time=args.time_limit
        )
    print(config.describe())
    print(result.row())
    for key, value in result.report_dict().items():
        print(f"  {key}: {value}")
    return 0


def _print_spec_result(spec: ScenarioSpec, runner: ParallelRunner,
                       args: argparse.Namespace) -> None:
    if args.output and not args.export:
        raise SystemExit("--output requires --export csv|json")
    # Expand eagerly: axis/limit validation errors (e.g. a non-positive
    # timeline duration) should fail here, not as a worker traceback.
    try:
        spec.points()
    except ValueError as exc:
        raise SystemExit(f"invalid scenario: {exc}") from None
    if not spec.sweeps and spec.static_table is not None:
        print(spec.static_table())
        if args.replicates > 1:
            print("note: static tables have no points to replicate", file=sys.stderr)
        if args.export:
            print("note: static tables have no result rows to export", file=sys.stderr)
        return
    if args.replicates > 1:
        spec = spec.with_replicates(args.replicates)
    try:
        experiment = runner.run(spec)
    except TimeoutError as exc:
        raise SystemExit(f"distributed run timed out: {exc}") from None
    aggregated = experiment.aggregate() if experiment.has_replicates else None
    rendered = aggregated if aggregated is not None else experiment
    print(rendered.table())
    for extra in spec.extra_tables:
        print()
        print(extra(rendered))
    if args.export:
        from repro.experiments.export import collect_rows, export_rows

        rows = collect_rows(experiment, aggregated)
        path = export_rows(rows, args.output or f"{spec.name}.{args.export}", args.export)
        print(f"[export] wrote {len(rows)} row(s) to {path}", file=sys.stderr)
    if runner.cache is not None:
        print(
            f"[cache] {runner.cache.hits} hit(s), {runner.cache.misses} miss(es) "
            f"in {runner.cache.root}",
            file=sys.stderr,
        )


def _experiment_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Build a registered scenario's spec from experiment/dispatch axes.

    ``dispatch`` and ``experiment --distributed`` must expand identical
    point sets for the same axes, so both go through this one builder.
    """
    kwargs = {}
    if args.figure == "figure1":
        # Fig. 1 is a single-user sweep over the degree of parallelism.
        if args.joins is not None:
            kwargs["queries_per_point"] = max(1, args.joins // 10)
        if args.sizes:
            kwargs["degrees"] = args.sizes
    elif args.figure == "parameters":
        pass  # static table, no axes
    else:
        if args.joins is not None:
            kwargs["measured_joins"] = args.joins
        if args.time_limit is not None:
            kwargs["max_simulated_time"] = args.time_limit
        if args.sizes:
            if args.figure == "figure8":
                print("note: --sizes is ignored for figure8 (fixed 60 PE)", file=sys.stderr)
            else:
                kwargs["system_sizes"] = args.sizes
    return build_scenario(args.figure, **kwargs)


def _run_experiment(args: argparse.Namespace) -> int:
    spec = _experiment_spec(args)
    _print_spec_result(spec, _make_runner(args), args)
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """Developer tooling for perf work: cProfile one point of a scenario."""
    import cProfile
    import pstats
    import time

    from repro.runner.runner import run_point_spec

    spec = _experiment_spec(args)
    try:
        points = spec.points()
    except ValueError as exc:
        raise SystemExit(f"invalid scenario: {exc}") from None
    if not points:
        raise SystemExit(f"scenario {args.figure!r} expands to no points")
    if args.list_points:
        for index, point in enumerate(points):
            print(f"{index:3d}  {point.kind:>8}  {point.series} @ x={point.x:g} "
                  f"({point.num_pe} PE, seed {point.seed})")
        return 0
    if not 0 <= args.point < len(points):
        raise SystemExit(
            f"--point must be in [0, {len(points) - 1}] for {args.figure!r} "
            "(see --list-points)"
        )
    point = points[args.point]
    print(f"[profile] {point.figure}: {point.series} @ x={point.x:g} "
          f"({point.num_pe} PE, kind {point.kind})", file=sys.stderr)
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = run_point_spec(point)
    profiler.disable()
    elapsed = time.perf_counter() - start
    print(f"[profile] wall {elapsed:.3f} s, joins_completed {result.joins_completed}",
          file=sys.stderr)
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(max(1, args.top))
    if args.output:
        stats.dump_stats(args.output)
        print(f"[profile] raw pstats written to {args.output}", file=sys.stderr)
    return 0


def _queue_target(args: argparse.Namespace, *, flag_hint: str) -> str:
    """Resolve a subcommand's queue target (URL wins over directory)."""
    backend = getattr(args, "backend", None)
    url = getattr(args, "url", None)
    queue_dir = getattr(args, "queue_dir", None)
    if backend == "http" and url is None:
        raise SystemExit("--backend http requires --url URL")
    if backend == "fs" and queue_dir is None:
        raise SystemExit("--backend fs requires --queue-dir DIR")
    if backend == "fs":
        return queue_dir
    if url is not None:
        return url
    if queue_dir is not None:
        return queue_dir
    raise SystemExit(f"{flag_hint} requires --queue-dir DIR or --url URL")


def _run_dispatch(args: argparse.Namespace) -> int:
    from repro.runner import DistributedRunner

    target = _queue_target(args, flag_hint="dispatch")
    spec = _experiment_spec(args)
    if args.replicates > 1:
        spec = spec.with_replicates(args.replicates)
    try:
        points = spec.points()
    except ValueError as exc:
        raise SystemExit(f"invalid scenario: {exc}") from None
    if not points:
        print(f"scenario {spec.name!r} has no simulation points to dispatch")
        return 0
    runner = DistributedRunner(target, max_attempts=args.max_retries)
    summary = runner.dispatch(points)
    print(
        f"queue {runner.queue.describe()}: {summary.enqueued} task(s) enqueued, "
        f"{summary.already_queued} already queued, {summary.already_done} already done "
        f"({len(points)} point(s), {summary.total} unique task(s))"
    )
    drain_flag = "--url" if str(target).startswith(("http://", "https://")) else "--queue-dir"
    print(f"drain with: repro-lb worker {drain_flag} {target}", file=sys.stderr)
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.runner import Worker

    def terminate(signum, frame):
        # Raise through the worker loop so the current lease is released
        # (without consuming a retry) before the process exits.
        raise SystemExit(128 + signum)

    signal.signal(signal.SIGTERM, terminate)
    target = _queue_target(args, flag_hint="worker")
    queue = make_backend(target, lease_seconds=args.lease)
    worker = Worker(queue, worker_id=args.worker_id, poll_interval=args.poll)
    print(f"worker {worker.worker_id}: draining {queue.describe()}", file=sys.stderr)
    stats = worker.run(max_tasks=args.max_tasks)
    print(
        f"worker {worker.worker_id}: {stats.executed} executed, "
        f"{stats.satisfied} satisfied from the result store, {stats.failed} failed"
    )
    return 0


def _run_status(args: argparse.Namespace) -> int:
    import json as json_module

    target = _queue_target(args, flag_hint="status")
    queue = make_backend(target, lease_seconds=args.lease)
    status = queue.status()
    if args.json:
        print(json_module.dumps(status.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"queue {queue.describe()}")
        print(status.render())
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import Coordinator
    from repro.service.coordinator import DEFAULT_PORT

    coordinator = Coordinator(
        lease_seconds=args.lease,
        max_attempts=args.max_retries,
        shard_windows=args.shard_windows,
    )
    port = DEFAULT_PORT if args.port is None else args.port
    try:
        coordinator.serve_forever(host=args.host, port=port)
    except KeyboardInterrupt:
        print("coordinator: interrupted, shutting down", file=sys.stderr)
        coordinator.stop()
    return 0


def _parse_override(text: str) -> tuple:
    path, sep, raw = text.partition("=")
    if not sep or not path:
        raise SystemExit(f"invalid --set override {text!r} (expected PATH=VALUE)")
    for convert in (int, float):
        try:
            return (path, convert(raw))
        except ValueError:
            continue
    return (path, raw)


def _parse_float_pair(text: str, flag: str) -> tuple:
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise SystemExit(f"invalid {flag} {text!r} (expected NAME=VALUE)")
    try:
        return (name, float(raw))
    except ValueError:
        raise SystemExit(f"invalid {flag} value {raw!r} (expected a number)") from None


def _parse_arrival_param(text: str) -> tuple:
    """An arrival-process shape parameter; ``file=PATH`` keeps its string."""
    name, _, raw = text.partition("=")
    if name == "file" and raw:
        return (name, raw)
    return _parse_float_pair(text, "--arrival-param")


def _with_trace_digest(params: tuple) -> tuple:
    """Pin a trace file's *content* digest into the arrival parameters.

    The digest becomes part of the point -- and therefore of the cache key
    and the distributed task id -- so editing the captured log can neither
    hit a stale cache entry nor diverge silently between worker hosts (the
    executing side re-hashes the file and refuses a mismatch).
    """
    import hashlib
    from pathlib import Path

    mapping = dict(params)
    path = mapping.get("file")
    if path is None or "file_sha256" in mapping:
        return params
    try:
        digest = hashlib.sha256(Path(path).read_bytes()).hexdigest()
    except OSError as exc:
        raise SystemExit(f"invalid --arrival-param file: {exc}") from None
    return params + (("file_sha256", digest),)


#: Short ``--node-class`` attribute names -> :class:`NodeClass` fields.
_NODE_CLASS_ATTRS = {
    "mips": "mips_factor",
    "memory": "memory_factor",
    "disk": "disk_factor",
}

#: Short ``--topology`` keys -> :class:`TopologyConfig` fields (integer
#: tier counts keep int values, factors become floats).
_TOPOLOGY_KEYS = {
    "racks": ("racks", int),
    "regions": ("regions", int),
    "inter_latency": ("cross_rack_latency_factor", float),
    "inter_bandwidth": ("cross_rack_bandwidth_factor", float),
    "region_latency": ("cross_region_latency_factor", float),
    "region_bandwidth": ("cross_region_bandwidth_factor", float),
}


def _parse_node_class(text: str) -> tuple:
    """``NAME=SIZE[:ATTR=FACTOR...]`` -> one encoded node-class tuple.

    SIZE below 1 is a PE fraction, otherwise a PE count; attributes are the
    short names of :data:`_NODE_CLASS_ATTRS`.
    """
    head, *attrs = text.split(":")
    name, sep, raw_size = head.partition("=")
    if not sep or not name:
        raise SystemExit(
            f"invalid --node-class {text!r} (expected NAME=SIZE[:ATTR=FACTOR...])"
        )
    try:
        size = float(raw_size)
    except ValueError:
        raise SystemExit(f"invalid --node-class size {raw_size!r}") from None
    fields = [("name", name)]
    if size < 1.0:
        fields.append(("fraction", size))
    else:
        fields.append(("count", int(size)))
    for attr in attrs:
        key, sep, raw = attr.partition("=")
        if not sep or key not in _NODE_CLASS_ATTRS:
            raise SystemExit(
                f"invalid --node-class attribute {attr!r} "
                f"(expected one of {sorted(_NODE_CLASS_ATTRS)})"
            )
        try:
            fields.append((_NODE_CLASS_ATTRS[key], float(raw)))
        except ValueError:
            raise SystemExit(f"invalid --node-class factor {raw!r}") from None
    return tuple(fields)


def _parse_topology(text: str) -> tuple:
    """``KEY=VALUE[:KEY=VALUE...]`` -> one encoded topology tuple."""
    fields = []
    for part in text.split(":"):
        key, sep, raw = part.partition("=")
        if not sep or key not in _TOPOLOGY_KEYS:
            raise SystemExit(
                f"invalid --topology key {part!r} "
                f"(expected one of {sorted(_TOPOLOGY_KEYS)})"
            )
        field, convert = _TOPOLOGY_KEYS[key]
        try:
            fields.append((field, convert(raw)))
        except ValueError:
            raise SystemExit(f"invalid --topology value {raw!r}") from None
    return tuple(fields)


def _parse_fault(text: str) -> tuple:
    """``KIND@TIME[:KEY=VALUE...]`` -> one encoded fault event."""
    from repro.faults.plan import parse_fault

    try:
        return parse_fault(text)
    except ValueError as exc:
        raise SystemExit(f"invalid --fault {text!r}: {exc}") from None


def _build_adhoc_spec(args: argparse.Namespace) -> ScenarioSpec:
    scenario = "mixed" if args.oltp else args.scenario
    rates = tuple(args.rates) if args.rates else (None,)
    selectivities = tuple(args.selectivities) if args.selectivities else (None,)
    sizes = tuple(args.sizes)
    # --arrival / --timeline-window switch the sweep to windowed timeline
    # points (a fixed-duration run carrying a per-window time series).
    timeline = args.arrival is not None or args.timeline_window is not None
    arrival = args.arrival

    # Label series by every non-size axis that actually varies.
    series = "{strategy}"
    if len(selectivities) > 1:
        series += " sel={selectivity:g}"
    if len(rates) > 1:
        series += " @{rate:g} QPS/PE"
    x_axis = "num_pe"
    if len(sizes) == 1 and len(selectivities) > 1:
        x_axis, series = "selectivity_pct", series.replace(" sel={selectivity:g}", "")
    elif len(sizes) == 1 and len(rates) > 1:
        x_axis, series = "rate", series.replace(" @{rate:g} QPS/PE", "")
    if arrival is not None:
        series += " [{arrival}]"
    node_classes_entry = (
        tuple(_parse_node_class(text) for text in args.node_classes)
        if args.node_classes
        else None
    )
    topology_entry = _parse_topology(args.topology) if args.topology else None
    failures_entry = (
        tuple(_parse_fault(text) for text in args.faults) if args.faults else None
    )
    if node_classes_entry is not None:
        series += " [{nodes}]"
    if topology_entry is not None:
        series += " {topology}"
    if failures_entry is not None:
        series += " [{failures}]"
    if args.replication is not None:
        series += " {replication}"

    arrival_params = tuple(_parse_arrival_param(text) for text in args.arrival_params)
    if arrival == "trace":
        arrival_params = _with_trace_digest(arrival_params)
    try:
        sweep = Sweep(
            kind="timeline" if timeline else "multi",
            scenario=scenario,
            strategies=tuple(args.strategies),
            system_sizes=sizes,
            rates=rates,
            selectivities=selectivities,
            oltp_placements=(args.oltp,) if args.oltp else (None,),
            x_axis=x_axis,
            series=series,
            config_overrides=tuple(_parse_override(text) for text in args.overrides),
            arrivals=(arrival,),
            arrival_params=arrival_params,
            timeline_window=args.timeline_window if timeline else None,
            perturb=tuple(_parse_float_pair(text, "--perturb") for text in args.perturb),
            node_classes=(node_classes_entry,),
            topologies=(topology_entry,),
            failures=(failures_entry,),
            replication=(args.replication,),
        )
    except ValueError as exc:
        raise SystemExit(f"invalid sweep: {exc}") from None
    if sweep.perturb and args.replicates < 2:
        print(
            "note: --perturb only affects replicates >= 1; "
            "pass --replicates N to see workload noise",
            file=sys.stderr,
        )
    axes = [f"strategies={list(args.strategies)}", f"sizes={list(sizes)}"]
    if args.rates:
        axes.append(f"rates={list(rates)}")
    if args.selectivities:
        axes.append(f"selectivities={list(selectivities)}")
    if args.oltp:
        axes.append(f"oltp={args.oltp}")
    if arrival is not None:
        axes.append(f"arrival={arrival}")
    if node_classes_entry is not None:
        axes.append(
            "classes=" + "+".join(dict(cls)["name"] for cls in node_classes_entry)
        )
    if topology_entry is not None:
        axes.append(f"topology={dict(topology_entry).get('racks', 1)} racks")
    if failures_entry is not None:
        from repro.faults.plan import failures_label

        axes.append(f"faults={failures_label(failures_entry)}")
    if args.replication is not None:
        axes.append(f"replication={args.replication}")
    from repro.experiments.dynamic import render_timeline_table

    return ScenarioSpec(
        name="sweep",
        title=f"Ad-hoc sweep [{scenario}]: " + ", ".join(axes),
        x_label={"num_pe": "# PE", "selectivity_pct": "selectivity %", "rate": "QPS/PE"}[x_axis],
        sweeps=(sweep,),
        measured_joins=args.joins,
        max_simulated_time=args.time_limit,
        extra_tables=(render_timeline_table,) if timeline else (),
    )


def _run_sweep(args: argparse.Namespace) -> int:
    known = set(strategy_names())
    unknown = [name for name in args.strategies if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown strategy {', '.join(map(repr, unknown))}; "
            "see `repro-lb list-strategies`"
        )
    spec = _build_adhoc_spec(args)
    # Validate dotted overrides and arrival parameters eagerly (a worker
    # process would otherwise surface the failure as an opaque pool
    # traceback mid-run).
    from repro.runner.runner import apply_config_overrides

    try:
        apply_config_overrides(SystemConfig(), spec.sweeps[0].config_overrides)
    except (AttributeError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid --set override: {exc}") from None
    if args.arrival is not None and args.arrival != "trace":
        from repro.workload.arrivals import make_arrival_process

        try:
            make_arrival_process(args.arrival, 1.0, spec.sweeps[0].arrival_params)
        except ValueError as exc:
            raise SystemExit(f"invalid --arrival-param: {exc}") from None
    elif args.arrival == "trace":
        params = dict(spec.sweeps[0].arrival_params)
        trace_file = params.pop("file", None)
        params.pop("file_sha256", None)
        if params:
            raise SystemExit(
                "--arrival trace supports only the file=PATH parameter, "
                f"got {sorted(params)} (without a file, the trace replays "
                "the spec's own Poisson streams)"
            )
        if trace_file is not None:
            from repro.workload.traces import load_trace

            try:
                load_trace(trace_file)
            except (OSError, ValueError) as exc:
                raise SystemExit(f"invalid --arrival-param file: {exc}") from None
    _print_spec_result(spec, _make_runner(args), args)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-strategies":
        for name in strategy_names():
            print(name)
        return 0
    if args.command == "parameters":
        print(render_parameter_table())
        return 0
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "dispatch":
        return _run_dispatch(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "status":
        return _run_status(args)
    if args.command == "serve":
        return _run_serve(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
