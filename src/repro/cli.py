"""Command-line interface.

Examples::

    repro-lb list-strategies
    repro-lb parameters
    repro-lb simulate --pe 40 --strategy OPT-IO-CPU --joins 50
    repro-lb experiment figure6 --joins 30 --sizes 20 40 80
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.parameters import OltpConfig, SystemConfig
from repro.experiments import EXPERIMENTS, render_parameter_table
from repro.experiments.figure7 import degree_table
from repro.experiments.figure8 import improvement_table
from repro.scheduling.strategy import strategy_names
from repro.simulation.driver import SimulationDriver

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description=(
            "Dynamic multi-resource load balancing in parallel database systems "
            "(reproduction of Rahm & Marek, VLDB 1995)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-strategies", help="list the registered load balancing strategies")
    sub.add_parser("parameters", help="print the Fig. 4 parameter table")

    simulate = sub.add_parser("simulate", help="run one multi-user simulation point")
    simulate.add_argument("--pe", type=int, default=40, help="number of processing elements")
    simulate.add_argument("--strategy", default="OPT-IO-CPU", help="load balancing strategy")
    simulate.add_argument("--joins", type=int, default=50, help="measured join completions")
    simulate.add_argument("--selectivity", type=float, default=0.01, help="scan selectivity")
    simulate.add_argument("--rate", type=float, default=0.25, help="join arrival rate per PE (QPS)")
    simulate.add_argument("--oltp", choices=["none", "A", "B"], default="none",
                          help="add a debit-credit OLTP load on the A or B nodes")
    simulate.add_argument("--oltp-tps", type=float, default=100.0, help="OLTP TPS per OLTP node")
    simulate.add_argument("--single-user", action="store_true", help="single-user mode instead")
    simulate.add_argument("--time-limit", type=float, default=120.0, help="simulated seconds cap")

    experiment = sub.add_parser("experiment", help="reproduce one of the paper's figures")
    experiment.add_argument("figure", choices=sorted(EXPERIMENTS), help="figure to reproduce")
    experiment.add_argument("--joins", type=int, default=None, help="measured joins per point")
    experiment.add_argument("--sizes", type=int, nargs="*", default=None, help="system sizes")
    experiment.add_argument("--time-limit", type=float, default=None, help="simulated seconds cap")
    return parser


def _run_simulate(args: argparse.Namespace) -> int:
    from dataclasses import replace

    oltp = None if args.oltp == "none" else OltpConfig(placement=args.oltp,
                                                       arrival_rate_per_node=args.oltp_tps)
    config = SystemConfig(num_pe=args.pe, oltp=oltp)
    config = config.with_overrides(
        join_query=replace(
            config.join_query,
            scan_selectivity=args.selectivity,
            arrival_rate_per_pe=args.rate,
        )
    )
    driver = SimulationDriver(config, strategy=args.strategy)
    if args.single_user:
        result = driver.run_single_user(num_queries=max(1, args.joins // 10))
    else:
        result = driver.run_multi_user(
            measured_joins=args.joins, max_simulated_time=args.time_limit
        )
    print(config.describe())
    print(result.row())
    for key, value in result.to_dict().items():
        print(f"  {key}: {value}")
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.figure == "figure1":
        # Fig. 1 is a single-user sweep over the degree of parallelism.
        if args.joins is not None:
            kwargs["queries_per_point"] = max(1, args.joins // 10)
        if args.sizes:
            kwargs["degrees"] = args.sizes
    else:
        if args.joins is not None:
            kwargs["measured_joins"] = args.joins
        if args.time_limit is not None:
            kwargs["max_simulated_time"] = args.time_limit
        if args.sizes:
            if args.figure == "figure8":
                print("note: --sizes is ignored for figure8 (fixed 60 PE)", file=sys.stderr)
            else:
                kwargs["system_sizes"] = args.sizes
    experiment = EXPERIMENTS[args.figure](**kwargs)
    print(experiment.table())
    if args.figure == "figure7":
        print()
        print(degree_table(experiment))
    if args.figure == "figure8":
        print()
        print(improvement_table(experiment))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-strategies":
        for name in strategy_names():
            print(name)
        return 0
    if args.command == "parameters":
        print(render_parameter_table())
        return 0
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "experiment":
        return _run_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
