"""Reproduction of "Dynamic Multi-Resource Load Balancing in Parallel Database
Systems" (Rahm & Marek, VLDB 1995).

The package simulates a Shared Nothing parallel database system executing
parallel hash joins and OLTP transactions, and implements the paper's family
of static, dynamic, isolated and integrated load balancing strategies.

Typical usage::

    from repro import SystemConfig, SimulationDriver

    config = SystemConfig(num_pe=40)
    driver = SimulationDriver(config, strategy="OPT-IO-CPU")
    result = driver.run_multi_user(measured_joins=100)
    print(result.row())
"""

from repro.config import (
    BufferConfig,
    ControlConfig,
    CpuConfig,
    DiskConfig,
    InstructionCosts,
    JoinQueryConfig,
    NetworkConfig,
    OltpConfig,
    RelationConfig,
    SystemConfig,
)
from repro.scheduling import (
    STRATEGIES,
    ControlNode,
    CostModel,
    JoinPlan,
    LoadBalancingStrategy,
    SchedulingContext,
    make_strategy,
    strategy_names,
)
from repro.simulation import ParallelSystem, SimulationDriver, SimulationResult
from repro.workload import JoinQuery, OltpTransaction, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "BufferConfig",
    "ControlConfig",
    "CpuConfig",
    "DiskConfig",
    "InstructionCosts",
    "JoinQueryConfig",
    "NetworkConfig",
    "OltpConfig",
    "RelationConfig",
    "SystemConfig",
    "STRATEGIES",
    "ControlNode",
    "CostModel",
    "JoinPlan",
    "LoadBalancingStrategy",
    "SchedulingContext",
    "make_strategy",
    "strategy_names",
    "ParallelSystem",
    "SimulationDriver",
    "SimulationResult",
    "JoinQuery",
    "OltpTransaction",
    "WorkloadSpec",
    "__version__",
]
