"""Windowed timeline metrics: time-resolved view of one simulation run.

End-of-run aggregates cannot show *when* a strategy saturates or how fast a
dynamic policy re-balances after a load surge.  The
:class:`TimelineCollector` bins the measurement phase into fixed windows and
records, per window:

* join/OLTP completions, join throughput and response-time statistics
  (mean / p95 / max of the joins *completing* in the window);
* per-PE CPU utilisation folded into mean, max and imbalance (max - mean);
* disk utilisation and buffer (memory) occupancy with the same imbalance
  fold.

The collector is a pure observer: it samples busy-time/occupancy integrals
at window boundaries and never mutates simulation state, so enabling it
cannot change a run's outcome.  The result is a :class:`Timeline` -- a
serialisable time series that rides on
:class:`~repro.simulation.results.SimulationResult` across process
boundaries and through the on-disk result cache.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.sim import Environment
from repro.sim.monitor import percentile_sorted

__all__ = ["TimelineWindow", "Timeline", "TimelineCollector", "aggregate_timelines"]


@dataclass(frozen=True)
class TimelineWindow:
    """Metrics of one ``[start, end)`` slice of a run."""

    start: float
    end: float
    joins_completed: int = 0
    join_throughput: float = 0.0  # completions per second in this window
    join_rt_mean: float = 0.0  # seconds; 0 when no join completed
    join_rt_p95: float = 0.0
    join_rt_max: float = 0.0
    oltp_completed: int = 0
    oltp_rt_mean: float = 0.0
    cpu_util: float = 0.0  # mean over PEs
    cpu_util_max: float = 0.0  # most loaded PE
    cpu_imbalance: float = 0.0  # max - mean
    disk_util: float = 0.0
    disk_util_max: float = 0.0
    disk_imbalance: float = 0.0
    mem_util: float = 0.0  # time-weighted buffer occupancy, mean over PEs
    mem_util_max: float = 0.0
    mem_imbalance: float = 0.0
    #: Per-node-class utilisation on heterogeneous systems: one
    #: ``(class_name, cpu_util, disk_util, mem_util)`` tuple per class, in PE
    #: order.  Empty on uniform systems (single class), keeping their
    #: serialised timelines unchanged.
    class_util: tuple = ()
    #: Fault-injection observability (PR 8): fraction of the expected
    #: processor pool that was alive over the window (time-integral of
    #: alive-and-joined PEs over joined PEs; 1.0 in fault-free runs), and a
    #: stable ``kind:peN`` label join of the injected anomaly windows
    #: overlapping this window (empty when clean).
    availability: float = 1.0
    anomaly: str = ""
    #: Replication observability (PR 10): fraction of the *database* (tuple
    #: weighted) with at least one alive copy over the window.  Under
    #: replication a crash costs no effective availability while the backup
    #: copies survive; in the single-copy system this tracks the crashed
    #: PEs' data share.  1.0 in fault-free runs.
    effective_availability: float = 1.0

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """The windowed time series of one run (lossless JSON round-trip)."""

    window: float  # nominal window length in simulated seconds
    windows: List[TimelineWindow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    def series(self, metric: str) -> List[float]:
        """The values of one window field, in time order."""
        return [getattr(window, metric) for window in self.windows]

    def peak(self, metric: str) -> float:
        """Largest value of one window field (0.0 for an empty timeline)."""
        values = self.series(metric)
        return max(values) if values else 0.0

    def window_at(self, t: float) -> Optional[TimelineWindow]:
        """The window covering simulated time ``t`` (None if out of range)."""
        for window in self.windows:
            if window.start <= t < window.end:
                return window
        return None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timeline":
        known = {f.name for f in fields(TimelineWindow)}
        windows = []
        for entry in data.get("windows", ()):
            kwargs = {k: v for k, v in entry.items() if k in known}
            # JSON turns the per-class tuples into nested lists; re-tuple so
            # round-tripped timelines compare equal to the originals.
            kwargs["class_util"] = tuple(
                (str(name), float(cpu), float(disk), float(mem))
                for name, cpu, disk, mem in kwargs.get("class_util") or ()
            )
            windows.append(TimelineWindow(**kwargs))
        return cls(window=float(data["window"]), windows=windows)


def _fold(per_pe: Sequence[float]) -> tuple[float, float, float]:
    """(mean, max, max - mean) of a per-PE utilisation vector."""
    if not per_pe:
        return 0.0, 0.0, 0.0
    mean = math.fsum(per_pe) / len(per_pe)
    peak = max(per_pe)
    return mean, peak, peak - mean


class _ResourceSnapshot:
    """Busy-time / occupancy integrals of every PE at one instant."""

    def __init__(self, env: Environment, pes) -> None:
        self.time = env.now
        self.cpu_busy = [pe.cpu.resource.busy_time() for pe in pes]
        self.disk = [pe.disks.snapshot() for pe in pes]  # (time, busy) pairs
        self.mem_area = [pe.buffer.occupancy.integral() for pe in pes]


class TimelineCollector:
    """Accumulates windowed metrics during a run.

    The driver forwards join/OLTP completions via :meth:`observe_join` /
    :meth:`observe_oltp` (through the run's
    :class:`~repro.metrics.collector.MetricsCollector`); a background
    process closes a window every ``window`` simulated seconds.  Call
    :meth:`finalize` when the run ends to close the last (possibly partial)
    window, then :meth:`to_timeline` for the serialisable record.
    """

    def __init__(self, env: Environment, pes, window: float, faults=None):
        if window <= 0:
            raise ValueError(f"timeline window must be positive, got {window}")
        self.env = env
        self.pes = list(pes)
        self.window = float(window)
        # Optional fault-injection runtime; when attached, closed windows
        # carry per-window availability and anomaly labels.
        self._faults = faults
        # Per-PE capacities are invariant across windows; compute them once
        # instead of per window close (windows can be short and PEs many).
        self._cpu_capacities = [pe.cpu.resource.capacity for pe in self.pes]
        self._buffer_pages = [pe.buffer.total_pages for pe in self.pes]
        # Node-class groups (heterogeneous systems only): class name -> PE
        # indices, in PE order.  With a single class the per-class series is
        # redundant and stays off, keeping uniform timelines unchanged.
        groups: Dict[str, List[int]] = {}
        for index, pe in enumerate(self.pes):
            groups.setdefault(getattr(pe, "node_class", "default"), []).append(index)
        self._class_groups = list(groups.items()) if len(groups) > 1 else []
        self.windows: List[TimelineWindow] = []
        self._join_rts: List[float] = []
        self._oltp_rts: List[float] = []
        self._window_start = env.now
        self._baseline = _ResourceSnapshot(env, self.pes)
        self._finalized = False
        self._process = None

    def start(self) -> None:
        """Start the window-boundary sampling process."""
        if self._process is None:
            self._window_start = self.env.now
            self._baseline = _ResourceSnapshot(self.env, self.pes)
            self._process = self.env.process(self._tick())

    def _tick(self):
        while True:
            yield self.env.timeout(self.window)
            self._close_window()

    # -- workload observations ------------------------------------------------
    def observe_join(self, response_time: float) -> None:
        self._join_rts.append(response_time)

    def observe_oltp(self, response_time: float) -> None:
        self._oltp_rts.append(response_time)

    # -- window bookkeeping ---------------------------------------------------
    def _close_window(self) -> None:
        start = self._window_start
        end = self.env.now
        elapsed = end - start
        if elapsed <= 0:
            return
        current = _ResourceSnapshot(self.env, self.pes)
        baseline = self._baseline
        cpu = [
            min(1.0, (c - b) / (elapsed * capacity))
            for c, b, capacity in zip(
                current.cpu_busy, baseline.cpu_busy, self._cpu_capacities
            )
        ]
        disk = [
            pe.disks.utilization_since(snap) for pe, snap in zip(self.pes, baseline.disk)
        ]
        mem = [
            min(1.0, (c - b) / (elapsed * pages))
            for c, b, pages in zip(
                current.mem_area, baseline.mem_area, self._buffer_pages
            )
        ]
        cpu_mean, cpu_max, cpu_imb = _fold(cpu)
        disk_mean, disk_max, disk_imb = _fold(disk)
        mem_mean, mem_max, mem_imb = _fold(mem)
        class_util = tuple(
            (
                name,
                math.fsum(cpu[i] for i in indices) / len(indices),
                math.fsum(disk[i] for i in indices) / len(indices),
                math.fsum(mem[i] for i in indices) / len(indices),
            )
            for name, indices in self._class_groups
        )
        if self._faults is not None:
            availability, anomaly = self._faults.window_stats(start, end)
            effective_availability = self._faults.data_availability(start, end)
        else:
            availability, anomaly = 1.0, ""
            effective_availability = 1.0
        rts = sorted(self._join_rts)
        self.windows.append(
            TimelineWindow(
                start=start,
                end=end,
                joins_completed=len(rts),
                join_throughput=len(rts) / elapsed,
                join_rt_mean=math.fsum(rts) / len(rts) if rts else 0.0,
                join_rt_p95=percentile_sorted(rts, 95.0),
                join_rt_max=rts[-1] if rts else 0.0,
                oltp_completed=len(self._oltp_rts),
                oltp_rt_mean=(
                    math.fsum(self._oltp_rts) / len(self._oltp_rts) if self._oltp_rts else 0.0
                ),
                cpu_util=cpu_mean,
                cpu_util_max=cpu_max,
                cpu_imbalance=cpu_imb,
                disk_util=disk_mean,
                disk_util_max=disk_max,
                disk_imbalance=disk_imb,
                mem_util=mem_mean,
                mem_util_max=mem_max,
                mem_imbalance=mem_imb,
                class_util=class_util,
                availability=availability,
                anomaly=anomaly,
                effective_availability=effective_availability,
            )
        )
        self._join_rts = []
        self._oltp_rts = []
        self._window_start = end
        self._baseline = current

    def finalize(self) -> None:
        """Close the in-progress window (no-op when it is empty)."""
        if self._finalized:
            return
        self._finalized = True
        self._close_window()

    def to_timeline(self) -> Timeline:
        return Timeline(window=self.window, windows=list(self.windows))


def aggregate_timelines(timelines: Sequence[Optional[Timeline]]) -> Optional[Timeline]:
    """Window-wise mean of replicate timelines.

    Returns ``None`` unless every replicate carries a timeline with identical
    window boundaries (perturbed or trace replicates may legitimately
    differ); count fields become fractional means, mirroring
    :func:`repro.simulation.results.aggregate_results`.
    """
    materialised = list(timelines)
    if not materialised or any(t is None for t in materialised):
        return None
    first = materialised[0]
    for other in materialised[1:]:
        if other.window != first.window or len(other) != len(first):
            return None
        for a, b in zip(first.windows, other.windows):
            if a.start != b.start or a.end != b.end:
                return None
    metric_names = [
        f.name
        for f in fields(TimelineWindow)
        if f.name not in ("start", "end", "class_util", "anomaly")
    ]
    windows = []
    for index, window in enumerate(first.windows):
        means = {
            name: math.fsum(getattr(t.windows[index], name) for t in materialised)
            / len(materialised)
            for name in metric_names
        }
        # The anomaly label is categorical: carried when every replicate saw
        # the same injected windows (the common case -- the plan is part of
        # the point spec), dropped otherwise.
        anomalies = {t.windows[index].anomaly for t in materialised}
        windows.append(
            TimelineWindow(
                start=window.start,
                end=window.end,
                class_util=_aggregate_class_util(
                    [t.windows[index].class_util for t in materialised]
                ),
                anomaly=anomalies.pop() if len(anomalies) == 1 else "",
                **means,
            )
        )
    return Timeline(window=first.window, windows=windows)


def _aggregate_class_util(per_replicate: Sequence[tuple]) -> tuple:
    """Class-wise mean of the per-class utilisation tuples of one window.

    Replicates of one point share the hardware layout, so the class name
    sequences match; if they ever do not (hand-mixed timelines), the
    per-class series is dropped rather than averaged across unlike classes.
    """
    first = per_replicate[0]
    names = [entry[0] for entry in first]
    for other in per_replicate[1:]:
        if [entry[0] for entry in other] != names:
            return ()
    count = len(per_replicate)
    return tuple(
        (
            name,
            math.fsum(t[index][1] for t in per_replicate) / count,
            math.fsum(t[index][2] for t in per_replicate) / count,
            math.fsum(t[index][3] for t in per_replicate) / count,
        )
        for index, name in enumerate(names)
    )
