"""Metrics collection and summary statistics."""

from repro.metrics.collector import MetricsCollector, UtilizationSnapshot

__all__ = ["MetricsCollector", "UtilizationSnapshot"]
