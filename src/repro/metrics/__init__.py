"""Metrics collection and summary statistics."""

from repro.metrics.collector import MetricsCollector, UtilizationSnapshot
from repro.metrics.prometheus import MetricFamily, render_families, validate_exposition
from repro.metrics.timeline import (
    Timeline,
    TimelineCollector,
    TimelineWindow,
    aggregate_timelines,
)

__all__ = [
    "MetricsCollector",
    "UtilizationSnapshot",
    "Timeline",
    "TimelineCollector",
    "TimelineWindow",
    "aggregate_timelines",
    "MetricFamily",
    "render_families",
    "validate_exposition",
]
