"""Metrics collection for simulation runs.

The collector accumulates per-class response times and join-specific
statistics (chosen degree of parallelism, temporary I/O, memory queueing) and
turns resource accounting snapshots into utilisation figures measured over
the post-warm-up interval only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.timeline import TimelineCollector
from repro.sim import Environment, ValueMonitor

__all__ = ["UtilizationSnapshot", "MetricsCollector"]


@dataclass
class UtilizationSnapshot:
    """Resource accounting state of the whole system at one instant."""

    time: float
    cpu_busy: List[float]
    disk_busy: List[float]
    disk_count: int


class MetricsCollector:
    """Accumulates workload and resource metrics for one simulation run."""

    def __init__(self, env: Environment):
        self.env = env
        self.join_response_times = ValueMonitor("join_rt")
        self.oltp_response_times = ValueMonitor("oltp_rt")
        self.join_degrees = ValueMonitor("join_degree")
        self.join_overflow_pages = ValueMonitor("join_overflow")
        self.join_memory_waits = ValueMonitor("join_memory_wait")
        self.joins_completed = 0
        self.oltp_completed = 0
        self.measurement_start = 0.0
        self._baseline: Optional[UtilizationSnapshot] = None
        #: Optional windowed observer (see :mod:`repro.metrics.timeline`);
        #: when attached, completions are forwarded to the current window.
        self.timeline: Optional[TimelineCollector] = None

    # -- workload observations -------------------------------------------------
    def record_join(self, response_time: float, degree: int, overflow_pages: int,
                    memory_wait: float) -> None:
        self.joins_completed += 1
        self.join_response_times.record(response_time)
        self.join_degrees.record(float(degree))
        self.join_overflow_pages.record(float(overflow_pages))
        self.join_memory_waits.record(memory_wait)
        if self.timeline is not None:
            self.timeline.observe_join(response_time)

    def record_oltp(self, response_time: float) -> None:
        self.oltp_completed += 1
        self.oltp_response_times.record(response_time)
        if self.timeline is not None:
            self.timeline.observe_oltp(response_time)

    # -- warm-up handling ----------------------------------------------------------
    def snapshot(self, pes) -> UtilizationSnapshot:
        """Capture the current busy-time accounting of all PEs."""
        return UtilizationSnapshot(
            time=self.env.now,
            cpu_busy=[pe.cpu.resource.busy_time() for pe in pes],
            disk_busy=[pe.disks.snapshot()[1] for pe in pes],
            disk_count=len(pes[0].disks.disks) if pes else 1,
        )

    def start_measurement(self, pes) -> None:
        """Reset the workload monitors and re-baseline utilisation accounting."""
        self.join_response_times.reset()
        self.oltp_response_times.reset()
        self.join_degrees.reset()
        self.join_overflow_pages.reset()
        self.join_memory_waits.reset()
        self.joins_completed = 0
        self.oltp_completed = 0
        self.measurement_start = self.env.now
        self._baseline = self.snapshot(pes)
        for pe in pes:
            pe.buffer.reset_statistics()

    # -- utilisation summaries --------------------------------------------------------
    def average_cpu_utilization(self, pes) -> float:
        """Average CPU utilisation over the measurement interval."""
        current = self.snapshot(pes)
        baseline = self._baseline or UtilizationSnapshot(0.0, [0.0] * len(pes), [0.0] * len(pes), 1)
        elapsed = current.time - baseline.time
        if elapsed <= 0 or not pes:
            return 0.0
        busy = sum(c - b for c, b in zip(current.cpu_busy, baseline.cpu_busy))
        return min(1.0, busy / (elapsed * len(pes)))

    def average_disk_utilization(self, pes) -> float:
        """Average disk utilisation over the measurement interval."""
        current = self.snapshot(pes)
        baseline = self._baseline or UtilizationSnapshot(0.0, [0.0] * len(pes), [0.0] * len(pes), 1)
        elapsed = current.time - baseline.time
        if elapsed <= 0 or not pes:
            return 0.0
        busy = sum(c - b for c, b in zip(current.disk_busy, baseline.disk_busy))
        return min(1.0, busy / (elapsed * len(pes) * max(1, current.disk_count)))

    def average_memory_utilization(self, pes) -> float:
        """Average buffer occupancy over the measurement interval."""
        if not pes:
            return 0.0
        return sum(pe.buffer.average_utilization() for pe in pes) / len(pes)

    def max_cpu_utilization(self, pes) -> float:
        """Highest per-PE CPU utilisation over the measurement interval."""
        current = self.snapshot(pes)
        baseline = self._baseline or UtilizationSnapshot(0.0, [0.0] * len(pes), [0.0] * len(pes), 1)
        elapsed = current.time - baseline.time
        if elapsed <= 0 or not pes:
            return 0.0
        per_pe = [
            (c - b) / elapsed for c, b in zip(current.cpu_busy, baseline.cpu_busy)
        ]
        return min(1.0, max(per_pe))

    @property
    def measurement_duration(self) -> float:
        return self.env.now - self.measurement_start
