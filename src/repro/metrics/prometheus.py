"""Minimal Prometheus text exposition format (version 0.0.4), stdlib-only.

The ``repro-lb serve`` coordinator scrapes as a normal Prometheus target:
``GET /metrics`` renders gauge/counter families produced by this module.
Only the slice of the format the coordinator needs is implemented --
``# HELP``/``# TYPE`` headers, labelled samples, the three mandated label
escapes (backslash, double quote, newline) and Go-style float formatting
for the special values -- plus a strict line-grammar validator the tests
and the CI schema check run over every scrape.

https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "MetricFamily",
    "escape_help",
    "escape_label_value",
    "format_value",
    "render_families",
    "validate_exposition",
]

#: Metric and label names must match the Prometheus data model.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: ``name{label="value",...} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\[\\\"n])*\",?)*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$"
)
_VALUE_RE = re.compile(r"^(?:[+-]?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN)$")


def escape_label_value(value: object) -> str:
    """Escape a label value: backslash, double quote and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a HELP string: backslash and newline (quotes stay verbatim)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: Union[int, float, bool]) -> str:
    """Render a sample value (Go strconv-style for the special floats)."""
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


@dataclass
class MetricFamily:
    """One metric family: a name, a type, help text and labelled samples."""

    name: str
    type: str  # "gauge" | "counter" | "untyped"
    help: str
    samples: List[Tuple[Mapping[str, object], float]] = field(default_factory=list)

    def add(self, labels: Mapping[str, object], value: Union[int, float]) -> None:
        self.samples.append((dict(labels), float(value)))

    def render(self) -> str:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"invalid metric name {self.name!r}")
        if self.type not in ("gauge", "counter", "untyped"):
            raise ValueError(f"invalid metric type {self.type!r}")
        lines = [
            f"# HELP {self.name} {escape_help(self.help)}",
            f"# TYPE {self.name} {self.type}",
        ]
        for labels, value in self.samples:
            if labels:
                for label in labels:
                    if not _LABEL_RE.match(label):
                        raise ValueError(f"invalid label name {label!r}")
                rendered = ",".join(
                    f'{label}="{escape_label_value(labels[label])}"' for label in labels
                )
                lines.append(f"{self.name}{{{rendered}}} {format_value(value)}")
            else:
                lines.append(f"{self.name} {format_value(value)}")
        return "\n".join(lines)


def render_families(families: Sequence[MetricFamily]) -> str:
    """Render a full exposition: families in order, trailing newline."""
    return "\n".join(family.render() for family in families) + "\n"


def validate_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Validate Prometheus text exposition; raise ``ValueError`` on errors.

    Checks the line grammar (HELP/TYPE comments, sample syntax, value
    syntax), that every sample belongs to a family announced by a ``# TYPE``
    line above it, and that no family is announced twice.  Returns
    ``{family name: {"type": ..., "help": ..., "samples": count}}`` so
    callers can assert on the scraped schema.
    """
    families: Dict[str, Dict[str, object]] = {}
    current: Optional[str] = None
    if text and not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            name, metric_type = parts[2], parts[3]
            if metric_type not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {metric_type!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            families[name] = {"type": metric_type, "samples": 0}
            current = name
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        if not _VALUE_RE.match(match.group("value")):
            raise ValueError(f"line {lineno}: malformed value in: {line!r}")
        name = match.group("name")
        # A sample belongs to the family whose name prefixes it (counters
        # may expose name_total etc.; we require exact match or announced).
        if name not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE header")
        if current != name:
            # Samples of one family must be grouped together.
            if families[name]["samples"]:
                raise ValueError(f"line {lineno}: interleaved samples for {name!r}")
            current = name
        families[name]["samples"] = int(families[name]["samples"]) + 1
    return families
