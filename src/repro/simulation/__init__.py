"""System composition and simulation driving."""

from repro.simulation.driver import SimulationDriver
from repro.simulation.results import SimulationResult
from repro.simulation.system import ParallelSystem

__all__ = ["SimulationDriver", "SimulationResult", "ParallelSystem"]
