"""Result records produced by simulation runs.

:class:`SimulationResult` is the unit of data that crosses process
boundaries (the parallel runner ships results back from worker processes)
and lands in the on-disk result cache, so it round-trips losslessly through
:meth:`~SimulationResult.to_dict` / :meth:`~SimulationResult.from_dict` /
:meth:`~SimulationResult.to_json`.  The human-facing rounded view used by
reports and CSV export lives in :meth:`~SimulationResult.report_dict`.

Replicated sweeps produce several results per (series, x) point;
:func:`aggregate_results` folds them into an :class:`AggregatedResult`
carrying the field-wise mean plus sample standard deviation and 95 %
confidence half-width per metric (Student t critical values, so small
replicate counts get honest intervals).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.metrics.timeline import Timeline, aggregate_timelines

__all__ = [
    "SimulationResult",
    "AggregatedResult",
    "aggregate_results",
    "mean_std_ci95",
    "t_critical_95",
]


@dataclass
class SimulationResult:
    """Summary of one simulation run (one point of one experiment curve)."""

    strategy: str
    num_pe: int
    mode: str  # "single-user" or "multi-user"
    simulated_seconds: float
    joins_completed: int
    join_response_time: float  # mean, seconds
    join_response_time_p95: float
    join_response_time_ci: float  # 95 % confidence half-width
    average_degree: float
    average_overflow_pages: float
    average_memory_wait: float
    cpu_utilization: float
    disk_utilization: float
    memory_utilization: float
    oltp_completed: int = 0
    oltp_response_time: float = 0.0
    join_throughput: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)
    #: Windowed time series of the run (timeline-kind points only).  Rides
    #: through to_dict/from_dict/the cache losslessly; ``None`` for runs
    #: without a timeline collector.
    timeline: Optional[Timeline] = None

    @property
    def join_response_time_ms(self) -> float:
        """Mean join response time in milliseconds (the paper's unit)."""
        return self.join_response_time * 1e3

    def to_dict(self) -> Dict[str, Any]:
        """Lossless, JSON-compatible dictionary of all fields (incl. extras)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys are ignored so that cache entries written by newer
        versions (with additional fields) still load.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        timeline = kwargs.get("timeline")
        if timeline is not None and not isinstance(timeline, Timeline):
            kwargs["timeline"] = Timeline.from_dict(timeline)
        result = cls(**kwargs)
        result.extras = dict(result.extras)
        return result

    def to_json(self) -> str:
        """JSON serialisation (exact float round-trip via ``repr`` grammar)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        return cls.from_dict(json.loads(text))

    def report_dict(self) -> Dict[str, object]:
        """Flat rounded dictionary representation (for reports and CSV export)."""
        data = {
            "strategy": self.strategy,
            "num_pe": self.num_pe,
            "mode": self.mode,
            "simulated_seconds": round(self.simulated_seconds, 3),
            "joins_completed": self.joins_completed,
            "join_rt_ms": round(self.join_response_time_ms, 1),
            "join_rt_p95_ms": round(self.join_response_time_p95 * 1e3, 1),
            "join_rt_ci_ms": round(self.join_response_time_ci * 1e3, 1),
            "avg_degree": round(self.average_degree, 1),
            "avg_overflow_pages": round(self.average_overflow_pages, 1),
            "avg_memory_wait_ms": round(self.average_memory_wait * 1e3, 1),
            "cpu_util": round(self.cpu_utilization, 3),
            "disk_util": round(self.disk_utilization, 3),
            "mem_util": round(self.memory_utilization, 3),
            "join_throughput_qps": round(self.join_throughput, 3),
            "oltp_completed": self.oltp_completed,
            "oltp_rt_ms": round(self.oltp_response_time * 1e3, 1),
        }
        data.update({key: round(value, 4) for key, value in self.extras.items()})
        return data

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.strategy:<18} n={self.num_pe:<3d} {self.mode:<11} "
            f"rt={self.join_response_time_ms:8.1f} ms  "
            f"p={self.average_degree:5.1f}  ovfl={self.average_overflow_pages:7.1f}  "
            f"cpu={self.cpu_utilization:5.2f} disk={self.disk_utilization:5.2f} "
            f"mem={self.memory_utilization:5.2f}"
        )


#: Two-sided 95 % Student t critical values by degrees of freedom.
_T95_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

#: Result fields whose values identify a point rather than measure it; they
#: must agree across replicates and are copied verbatim into the mean.
_IDENTITY_FIELDS = ("strategy", "num_pe", "mode")


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student t critical value for ``df`` degrees of freedom.

    Exact table values for df <= 30; beyond that, the value for the largest
    tabulated df not exceeding ``df``.  Flooring is conservative: the
    returned critical value is always >= the true one, so intervals never
    understate the 95 % level.
    """
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df in _T95_TABLE:
        return _T95_TABLE[df]
    return _T95_TABLE[max(key for key in _T95_TABLE if key <= df)]


def mean_std_ci95(values: Sequence[float]) -> Tuple[float, float, float]:
    """Mean, sample standard deviation and 95 % CI half-width of ``values``.

    A single value has zero spread by definition (std = ci = 0).  Summation
    uses :func:`math.fsum`, so the result depends only on the order of
    ``values`` -- replicate results arrive in expansion order regardless of
    worker count, which keeps aggregates bit-identical across ``--workers``
    settings.
    """
    values = [float(v) for v in values]
    n = len(values)
    if n == 0:
        raise ValueError("cannot aggregate an empty sequence of values")
    mean = math.fsum(values) / n
    if n == 1:
        return mean, 0.0, 0.0
    variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    return mean, std, t_critical_95(n - 1) * std / math.sqrt(n)


@dataclass
class AggregatedResult:
    """Mean / spread of ``n`` replicate :class:`SimulationResult` records.

    ``mean`` is a field-wise mean result (count fields may therefore be
    fractional); ``stddev`` and ``ci95`` map metric field names (and
    ``extras.<key>`` entries) to the sample standard deviation and the 95 %
    confidence half-width across replicates.
    """

    n: int
    mean: SimulationResult
    stddev: Dict[str, float] = field(default_factory=dict)
    ci95: Dict[str, float] = field(default_factory=dict)


def aggregate_results(results: Iterable[SimulationResult]) -> AggregatedResult:
    """Fold replicate results for one point into an :class:`AggregatedResult`."""
    results = list(results)
    if not results:
        raise ValueError("cannot aggregate zero results")
    first = results[0]
    for name in _IDENTITY_FIELDS:
        distinct = {getattr(result, name) for result in results}
        if len(distinct) > 1:
            raise ValueError(
                f"cannot aggregate results with differing {name}: "
                f"{sorted(map(str, distinct))}"
            )
    stddev: Dict[str, float] = {}
    ci95: Dict[str, float] = {}
    mean_kwargs: Dict[str, float] = {}
    for spec in fields(SimulationResult):
        if spec.name in _IDENTITY_FIELDS or spec.name in ("extras", "timeline"):
            continue
        mean, std, ci = mean_std_ci95([getattr(result, spec.name) for result in results])
        mean_kwargs[spec.name] = mean
        stddev[spec.name] = std
        ci95[spec.name] = ci
    # Aggregate only extras present in *every* replicate, so every reported
    # statistic (and the consumer-visible ``n``) covers the same sample; a
    # key missing from some replicates (e.g. a cache entry written by an
    # older version) is dropped rather than silently presenting a
    # partial-sample mean as if it covered all n replicates.
    extra_keys = [
        key
        for key in results[0].extras
        if all(key in result.extras for result in results)
    ]
    mean_extras: Dict[str, float] = {}
    for key in extra_keys:
        mean, std, ci = mean_std_ci95([result.extras[key] for result in results])
        mean_extras[key] = mean
        stddev[f"extras.{key}"] = std
        ci95[f"extras.{key}"] = ci
    mean_result = SimulationResult(
        strategy=first.strategy,
        num_pe=first.num_pe,
        mode=first.mode,
        extras=mean_extras,
        # Window-wise mean when every replicate shares the same window grid;
        # None otherwise (the spread dictionaries stay scalar either way).
        timeline=aggregate_timelines([result.timeline for result in results]),
        **mean_kwargs,
    )
    return AggregatedResult(n=len(results), mean=mean_result, stddev=stddev, ci95=ci95)
