"""Result records produced by simulation runs.

:class:`SimulationResult` is the unit of data that crosses process
boundaries (the parallel runner ships results back from worker processes)
and lands in the on-disk result cache, so it round-trips losslessly through
:meth:`~SimulationResult.to_dict` / :meth:`~SimulationResult.from_dict` /
:meth:`~SimulationResult.to_json`.  The human-facing rounded view used by
reports and CSV export lives in :meth:`~SimulationResult.report_dict`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Mapping, Optional

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Summary of one simulation run (one point of one experiment curve)."""

    strategy: str
    num_pe: int
    mode: str  # "single-user" or "multi-user"
    simulated_seconds: float
    joins_completed: int
    join_response_time: float  # mean, seconds
    join_response_time_p95: float
    join_response_time_ci: float  # 95 % confidence half-width
    average_degree: float
    average_overflow_pages: float
    average_memory_wait: float
    cpu_utilization: float
    disk_utilization: float
    memory_utilization: float
    oltp_completed: int = 0
    oltp_response_time: float = 0.0
    join_throughput: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def join_response_time_ms(self) -> float:
        """Mean join response time in milliseconds (the paper's unit)."""
        return self.join_response_time * 1e3

    def to_dict(self) -> Dict[str, Any]:
        """Lossless, JSON-compatible dictionary of all fields (incl. extras)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output.

        Unknown keys are ignored so that cache entries written by newer
        versions (with additional fields) still load.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        result = cls(**kwargs)
        result.extras = dict(result.extras)
        return result

    def to_json(self) -> str:
        """JSON serialisation (exact float round-trip via ``repr`` grammar)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationResult":
        return cls.from_dict(json.loads(text))

    def report_dict(self) -> Dict[str, object]:
        """Flat rounded dictionary representation (for reports and CSV export)."""
        data = {
            "strategy": self.strategy,
            "num_pe": self.num_pe,
            "mode": self.mode,
            "simulated_seconds": round(self.simulated_seconds, 3),
            "joins_completed": self.joins_completed,
            "join_rt_ms": round(self.join_response_time_ms, 1),
            "join_rt_p95_ms": round(self.join_response_time_p95 * 1e3, 1),
            "join_rt_ci_ms": round(self.join_response_time_ci * 1e3, 1),
            "avg_degree": round(self.average_degree, 1),
            "avg_overflow_pages": round(self.average_overflow_pages, 1),
            "avg_memory_wait_ms": round(self.average_memory_wait * 1e3, 1),
            "cpu_util": round(self.cpu_utilization, 3),
            "disk_util": round(self.disk_utilization, 3),
            "mem_util": round(self.memory_utilization, 3),
            "join_throughput_qps": round(self.join_throughput, 3),
            "oltp_completed": self.oltp_completed,
            "oltp_rt_ms": round(self.oltp_response_time * 1e3, 1),
        }
        data.update({key: round(value, 4) for key, value in self.extras.items()})
        return data

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.strategy:<18} n={self.num_pe:<3d} {self.mode:<11} "
            f"rt={self.join_response_time_ms:8.1f} ms  "
            f"p={self.average_degree:5.1f}  ovfl={self.average_overflow_pages:7.1f}  "
            f"cpu={self.cpu_utilization:5.2f} disk={self.disk_utilization:5.2f} "
            f"mem={self.memory_utilization:5.2f}"
        )
