"""Simulation driver: runs workloads against a :class:`ParallelSystem`.

Two modes of operation mirror the paper's experiments:

* **multi-user mode** -- an open arrival stream per workload class
  (inter-query/inter-transaction parallelism); the driver discards a warm-up
  prefix and measures until a target number of join queries has completed or
  a simulated-time limit is reached.
* **single-user mode** -- exactly one join query in the system at a time
  (closed loop), which is the baseline the paper plots alongside the
  multi-user curves.
* **timed mode** -- an open arrival stream (optionally non-stationary or
  replayed from a trace) run for a fixed simulated duration with a windowed
  :class:`~repro.metrics.timeline.TimelineCollector`, so the result carries
  a time-resolved view of throughput, response times and per-PE load
  imbalance (the measurement mode the dynamic-workload scenarios use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.config.parameters import SystemConfig
from repro.metrics.timeline import TimelineCollector
from repro.scheduling.strategy import LoadBalancingStrategy
from repro.simulation.results import SimulationResult
from repro.simulation.system import ParallelSystem
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import JoinQuery
from repro.workload.traces import Trace, TraceReplayer

__all__ = ["SimulationDriver"]


@dataclass
class _RunLimits:
    warmup_joins: int
    measured_joins: int
    max_simulated_time: float
    step: float = 0.5


class SimulationDriver:
    """Builds a system for a configuration/strategy pair and runs workloads."""

    def __init__(
        self,
        config: SystemConfig,
        strategy: Union[str, LoadBalancingStrategy] = "OPT-IO-CPU",
        faults=None,
    ):
        self.config = config
        self.system = ParallelSystem(config, strategy, faults=faults)
        self.env = self.system.env

    # -- multi-user ----------------------------------------------------------------
    def run_multi_user(
        self,
        spec: Optional[WorkloadSpec] = None,
        warmup_joins: int = 20,
        measured_joins: int = 100,
        max_simulated_time: float = 600.0,
    ) -> SimulationResult:
        """Run an open multi-user workload and summarise the measurement phase."""
        if spec is None:
            spec = WorkloadSpec.for_config(self.config)
        generator = WorkloadGenerator(self.env, spec, self.system.submit)
        self.system.workload_generator = generator
        self.system.start()
        generator.start()

        limits = _RunLimits(
            warmup_joins=warmup_joins,
            measured_joins=measured_joins,
            max_simulated_time=max_simulated_time,
        )
        self._advance_until(lambda: self.system.metrics.joins_completed >= limits.warmup_joins, limits)
        self.system.metrics.start_measurement(self.system.pes)
        self._advance_until(
            lambda: self.system.metrics.joins_completed >= limits.measured_joins, limits
        )
        return self._summarise(mode="multi-user")

    def _advance_until(self, predicate, limits: _RunLimits) -> None:
        while not predicate() and self.env.now < limits.max_simulated_time:
            self.env.run(until=min(self.env.now + limits.step, limits.max_simulated_time))

    # -- timed (timeline) ----------------------------------------------------------
    def run_timed(
        self,
        duration: float,
        timeline_window: float = 1.0,
        spec: Optional[WorkloadSpec] = None,
        trace: Optional[Trace] = None,
    ) -> SimulationResult:
        """Run an open workload for exactly ``duration`` simulated seconds.

        Unlike :meth:`run_multi_user` there is no warm-up and no completion
        target: measurement starts at time zero and every ``timeline_window``
        seconds a :class:`~repro.metrics.timeline.TimelineCollector` closes a
        window, so the returned result carries the full time series of the
        run (``result.timeline``).  With ``trace`` set, arrivals are replayed
        from the trace instead of being sampled live (the spec still
        provides the transaction factories).
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if spec is None:
            spec = WorkloadSpec.for_config(self.config)
        self.system.start()
        if trace is not None:
            TraceReplayer(self.env, spec, trace, self.system.submit).start()
        else:
            generator = WorkloadGenerator(self.env, spec, self.system.submit)
            self.system.workload_generator = generator
            generator.start()
        self.system.metrics.start_measurement(self.system.pes)
        collector = TimelineCollector(
            self.env, self.system.pes, timeline_window, faults=self.system.faults
        )
        self.system.metrics.timeline = collector
        collector.start()
        self.env.run(until=duration)
        collector.finalize()
        result = self._summarise(mode="timed")
        result.timeline = collector.to_timeline()
        return result

    # -- single-user ----------------------------------------------------------------------
    def run_single_user(self, num_queries: int = 10) -> SimulationResult:
        """Run ``num_queries`` join queries back to back (one at a time)."""
        self.system.start()
        self.system.metrics.start_measurement(self.system.pes)
        join_cfg = self.config.join_query

        def closed_loop():
            for _ in range(num_queries):
                query = JoinQuery(
                    inner_relation=self.config.relation_a.name,
                    outer_relation=self.config.relation_b.name,
                    scan_selectivity=join_cfg.scan_selectivity,
                    result_fraction_of_inner=join_cfg.result_fraction_of_inner,
                    fudge_factor=join_cfg.fudge_factor,
                    arrival_time=self.env.now,
                )
                self.system._join_router.route(query)
                yield self.env.process(self.system._run_join(query))

        process = self.env.process(closed_loop())
        # The control node and deadlock detector generate events forever, so
        # advance time in slices until the closed loop has finished.
        while process.is_alive:
            self.env.run(until=self.env.now + 1.0)
        return self._summarise(mode="single-user")

    # -- summary -------------------------------------------------------------------------------
    def _summarise(self, mode: str) -> SimulationResult:
        metrics = self.system.metrics
        pes = self.system.pes
        duration = max(metrics.measurement_duration, 1e-9)
        return SimulationResult(
            strategy=self.system.strategy.name,
            num_pe=self.config.num_pe,
            mode=mode,
            simulated_seconds=metrics.measurement_duration,
            joins_completed=metrics.joins_completed,
            join_response_time=metrics.join_response_times.mean,
            join_response_time_p95=metrics.join_response_times.percentile(95),
            join_response_time_ci=metrics.join_response_times.confidence_interval(),
            average_degree=metrics.join_degrees.mean,
            average_overflow_pages=metrics.join_overflow_pages.mean,
            average_memory_wait=metrics.join_memory_waits.mean,
            cpu_utilization=metrics.average_cpu_utilization(pes),
            disk_utilization=metrics.average_disk_utilization(pes),
            memory_utilization=metrics.average_memory_utilization(pes),
            oltp_completed=metrics.oltp_completed,
            oltp_response_time=metrics.oltp_response_times.mean,
            join_throughput=metrics.joins_completed / duration,
        )
