"""The complete simulated Shared Nothing database machine.

:class:`ParallelSystem` wires together everything the paper's simulation
system contains (Fig. 3): the processing elements with their local
components, the communication network, the database allocation, the control
node for dynamic load balancing, central deadlock detection, and the
transaction processing paths for join queries and OLTP transactions.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.config.parameters import SystemConfig
from repro.database.catalog import Catalog
from repro.engine.deadlock import DeadlockDetector
from repro.engine.pe import ProcessingElement
from repro.engine.twopc import CommitStatistics
from repro.execution.oltp import execute_oltp_transaction
from repro.execution.parallel_join import execute_join_query
from repro.hardware.network import Network
from repro.metrics.collector import MetricsCollector
from repro.scheduling.control_node import ControlNode
from repro.scheduling.cost_model import CostModel
from repro.scheduling.strategy import (
    LoadBalancingStrategy,
    SchedulingContext,
    make_strategy,
)
from repro.sim import Environment
from repro.workload.query import JoinQuery, OltpTransaction, Transaction
from repro.workload.router import AffinityRouter, RandomRouter
from repro.workload.tpcb import build_cost_profile

__all__ = ["ParallelSystem"]


class ParallelSystem:
    """A runnable Shared Nothing system with a selected load balancing strategy."""

    def __init__(
        self,
        config: SystemConfig,
        strategy: Union[str, LoadBalancingStrategy] = "OPT-IO-CPU",
        env: Optional[Environment] = None,
        faults=None,
    ):
        self.config = config
        self.env = env if env is not None else Environment()
        self.strategy: LoadBalancingStrategy = (
            make_strategy(strategy, seed=config.seed) if isinstance(strategy, str) else strategy
        )

        # Hardware and node components.
        self.deadlock_detector = DeadlockDetector(
            self.env, detection_interval=1.0, abort_callback=self._abort_waiter
        )
        self.pes: List[ProcessingElement] = [
            ProcessingElement(self.env, pe_id, config, self.deadlock_detector)
            for pe_id in range(config.num_pe)
        ]
        self.network = Network(
            self.env,
            config.network,
            config.costs,
            topology=config.topology,
            num_pe=config.num_pe,
        )
        self.catalog = Catalog.from_config(config)
        self.cost_model = CostModel(config)
        self.control_node = ControlNode(self.env, self.pes, config.control)
        self.commit_stats = CommitStatistics()
        self.metrics = MetricsCollector(self.env)

        # Workload routing.
        self._join_router = RandomRouter(list(range(config.num_pe)), seed=config.seed + 1)
        oltp_nodes = (
            config.a_node_ids
            if config.oltp is not None and config.oltp.placement.upper() == "A"
            else config.b_node_ids
        )
        self._oltp_router = AffinityRouter(
            oltp_pe_ids=list(oltp_nodes) or [0],
            all_pe_ids=list(range(config.num_pe)),
            seed=config.seed + 2,
        )
        self._oltp_profile = (
            build_cost_profile(config.oltp, config.costs) if config.oltp is not None else None
        )
        self._oltp_rng = random.Random(config.seed + 3)

        # The driver's open-workload generator registers itself here so the
        # fault injector can couple arrival surges to crashes.
        self.workload_generator = None

        # Fault injection (PR 8).  ``faults`` is a sequence of FaultEvent
        # records; an empty/None plan constructs nothing at all so that
        # fault-free runs stay byte-identical to the historical goldens.
        if faults:
            from repro.faults.injector import FaultRuntime

            self.faults: Optional[FaultRuntime] = FaultRuntime(self, faults)
            self.control_node.attach_faults(self.faults)
        else:
            self.faults = None
        self._started = False
        self.submitted = 0
        self.rejected = 0

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background control processes (reporting, deadlock sweep)."""
        if self._started:
            return
        self._started = True
        self.control_node.start()
        self.deadlock_detector.start()
        if self.faults is not None:
            self.faults.start()

    def _abort_waiter(self, txn_id: int) -> bool:
        aborted = False
        for pe in self.pes:
            aborted = pe.locks.abort_waiter(txn_id) or aborted
        return aborted

    # -- submission ---------------------------------------------------------------------
    def submit(self, transaction: Transaction) -> None:
        """Accept a new transaction or query (called by the workload generator)."""
        self.start()
        self.submitted += 1
        if isinstance(transaction, JoinQuery):
            self._join_router.route(transaction)
            if self.faults is not None:
                if not self.faults.on_submit(transaction):
                    return  # held until the PEs it needs are back
                process = self.env.process(self._run_join(transaction))
                self.faults.track(transaction, process)
            else:
                self.env.process(self._run_join(transaction))
        elif isinstance(transaction, OltpTransaction):
            self._oltp_router.route(transaction)
            if self.faults is not None:
                if not self.faults.on_submit(transaction):
                    return
                process = self.env.process(self._run_oltp(transaction))
                self.faults.track(transaction, process)
            else:
                self.env.process(self._run_oltp(transaction))
        else:
            self.rejected += 1
            raise TypeError(f"unsupported transaction type: {type(transaction).__name__}")

    # -- execution paths --------------------------------------------------------------------
    def scheduling_context(self) -> SchedulingContext:
        if self.faults is not None:
            return SchedulingContext(
                cost_model=self.cost_model,
                control=self.control_node,
                eligible_processors=self.faults.eligible_processors(),
            )
        return SchedulingContext(cost_model=self.cost_model, control=self.control_node)

    def _run_join(self, query: JoinQuery):
        coordinator = self.pes[query.coordinator_pe]
        slot = yield from coordinator.transactions.admit(query)
        try:
            plan = self.strategy.plan_join(query, self.scheduling_context())
            if self.faults is not None:
                self.faults.note_plan(query, plan.processors)
            result = yield from execute_join_query(self, query, plan)
            self.metrics.record_join(
                response_time=self.env.now - query.arrival_time,
                degree=plan.degree,
                overflow_pages=result.overflow_pages,
                memory_wait=result.memory_wait_time,
            )
        finally:
            coordinator.transactions.finish(query, slot)

    def _run_oltp(self, transaction: OltpTransaction):
        home = self.pes[transaction.home_pe]
        slot = yield from home.transactions.admit(transaction)
        try:
            yield from execute_oltp_transaction(
                self, transaction, profile=self._oltp_profile, rng=self._oltp_rng
            )
            self.metrics.record_oltp(self.env.now - transaction.arrival_time)
        finally:
            home.transactions.finish(transaction, slot)

    # -- convenience ---------------------------------------------------------------------------
    def average_cpu_utilization(self) -> float:
        return self.metrics.average_cpu_utilization(self.pes)

    def average_disk_utilization(self) -> float:
        return self.metrics.average_disk_utilization(self.pes)

    def average_memory_utilization(self) -> float:
        return self.metrics.average_memory_utilization(self.pes)

    def describe(self) -> str:
        return f"{self.config.describe()} | strategy {self.strategy.name}"
