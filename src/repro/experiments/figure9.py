"""Fig. 9: static vs. dynamic load balancing for mixed query/OLTP workloads.

Heterogeneous workload of §5.3: debit-credit OLTP transactions (100 TPS per
OLTP node, affinity-routed) run either on the A nodes (Fig. 9a, 20 % of the
PEs) or on the B nodes (Fig. 9b, 80 % of the PEs) concurrently with join
queries arriving at 0.075 QPS per PE; every PE has 5 disks.  The join
response time is reported for two static schemes, one semi-static scheme and
the two best dynamic schemes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    PAPER_SYSTEM_SIZES,
    ExperimentResult,
    make_runner,
    run_scenario,
)
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = ["run", "build_spec", "STRATEGIES"]

STRATEGIES = (
    "psu_opt+RANDOM",
    "psu_noIO+RANDOM",
    "psu_noIO+LUM",
    "pmu_cpu+LUM",
    "OPT-IO-CPU",
)


def build_spec(
    oltp_placement: str = "A",
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
) -> ScenarioSpec:
    """Declare Fig. 9a (``oltp_placement="A"``) or Fig. 9b (``"B"``) as a spec."""
    placement = oltp_placement.upper()
    panel = "a" if placement == "A" else "b"
    return ScenarioSpec(
        name=f"figure9{panel}",
        title=(
            f"Fig. 9{panel}: mixed workload, OLTP on {placement} nodes "
            "(100 TPS/node, joins 0.075 QPS/PE, 5 disks/PE)"
        ),
        x_label="# PE",
        sweeps=(
            Sweep(
                kind="multi",
                scenario="mixed",
                strategies=tuple(strategies),
                system_sizes=tuple(system_sizes),
                oltp_placements=(placement,),
            ),
        ),
        measured_joins=measured_joins,
        max_simulated_time=max_simulated_time,
    )


register_scenario("figure9a", lambda **kwargs: build_spec(oltp_placement="A", **kwargs))
register_scenario("figure9b", lambda **kwargs: build_spec(oltp_placement="B", **kwargs))


def run(
    oltp_placement: str = "A",
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("figure9a"/"figure9b", ...)``."""
    return run_scenario(
        f"figure9{oltp_placement.lower()}", make_runner(workers=workers, cache=cache), **kwargs
    )
