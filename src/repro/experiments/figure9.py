"""Fig. 9: static vs. dynamic load balancing for mixed query/OLTP workloads.

Heterogeneous workload of §5.3: debit-credit OLTP transactions (100 TPS per
OLTP node, affinity-routed) run either on the A nodes (Fig. 9a, 20 % of the
PEs) or on the B nodes (Fig. 9b, 80 % of the PEs) concurrently with join
queries arriving at 0.075 QPS per PE; every PE has 5 disks.  The join
response time is reported for two static schemes, one semi-static scheme and
the two best dynamic schemes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    PAPER_SYSTEM_SIZES,
    ExperimentPoint,
    ExperimentResult,
    run_point,
)
from repro.experiments.scenarios import mixed_workload_config

__all__ = ["run", "STRATEGIES"]

STRATEGIES = (
    "psu_opt+RANDOM",
    "psu_noIO+RANDOM",
    "psu_noIO+LUM",
    "pmu_cpu+LUM",
    "OPT-IO-CPU",
)


def run(
    oltp_placement: str = "A",
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Fig. 9a (``oltp_placement="A"``) or Fig. 9b (``"B"``)."""
    placement = oltp_placement.upper()
    panel = "a" if placement == "A" else "b"
    experiment = ExperimentResult(
        figure=f"figure9{panel}",
        title=(
            f"Fig. 9{panel}: mixed workload, OLTP on {placement} nodes "
            "(100 TPS/node, joins 0.075 QPS/PE, 5 disks/PE)"
        ),
        x_label="# PE",
    )
    for num_pe in system_sizes:
        config = mixed_workload_config(num_pe, oltp_placement=placement)
        for strategy in strategies:
            result = run_point(
                config,
                strategy,
                measured_joins=measured_joins,
                max_simulated_time=max_simulated_time,
            )
            experiment.add(
                ExperimentPoint(
                    figure=experiment.figure, series=strategy, x=num_pe, result=result
                )
            )
    return experiment
