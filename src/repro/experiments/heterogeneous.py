"""Heterogeneous clusters: figure 9's strategy comparison on mixed hardware.

The paper's experiments assume identical PEs on a uniform interconnect.
This scenario generalises the Fig. 9 mixed-workload comparison to clusters
where that assumption breaks, along two axes:

* **node-class mixes** -- a fraction of the PEs is *fast* (higher MIPS and
  a larger buffer pool) while the rest keep the baseline hardware;
* **interconnect topology** -- the flat network is replaced by 2-tier
  (racks) and 3-tier (racks within regions) interconnects whose cross-tier
  hops cost extra wire latency and share lower bandwidth.

Each point runs the mixed join + OLTP workload (OLTP affinity-routed to the
B nodes, as in Fig. 9b) for a fixed horizon and records the PR 3 windowed
timeline, which on heterogeneous hardware also carries *per-node-class*
utilisation -- making visible how a load-aware strategy shifts join work
onto the fast nodes while a static one leaves them idle.

Default cast: ``OPT-IO-CPU`` (dynamic: degree and placement follow current
CPU/memory load, so joins gravitate to the fast, memory-rich PEs) against
``psu_opt+RANDOM`` (the best *static* scheme of Fig. 9 -- its tuned degree
is blind to hardware classes, and random placement keeps landing join work
on slow PEs) and ``psu_noIO+LUM``.  On the fast/slow mixes the dynamic
strategy's response times beat the tuned static baseline by a clear margin;
on the uniform points the two sit close together, as in the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = [
    "run",
    "build_spec",
    "render_class_util_table",
    "STRATEGIES",
    "NODE_MIXES",
    "TOPOLOGIES",
]

#: The best dynamic strategy of the paper against the best static one and a
#: memory-aware static placement (see the module docstring).
STRATEGIES = ("OPT-IO-CPU", "psu_opt+RANDOM", "psu_noIO+LUM")

#: Named node-class mixes (encoded for :class:`~repro.runner.Sweep`
#: ``node_classes`` axis entries).  ``None`` keeps the uniform hardware.
NODE_MIXES: Tuple[Tuple[str, Optional[tuple]], ...] = (
    ("uniform", None),
    (
        "fast-half",
        (
            (
                ("name", "fast"),
                ("fraction", 0.5),
                ("mips_factor", 2.0),
                ("memory_factor", 2.0),
            ),
        ),
    ),
    (
        "fast-quarter",
        (
            (
                ("name", "fast"),
                ("fraction", 0.25),
                ("mips_factor", 2.0),
                ("memory_factor", 2.0),
            ),
        ),
    ),
)

#: Named interconnect topologies (encoded ``topologies`` axis entries):
#: 1 tier (flat), 2 tiers (4 racks) and 3 tiers (4 racks in 2 regions).
TOPOLOGIES: Tuple[Tuple[str, Optional[tuple]], ...] = (
    ("flat", None),
    (
        "racks",
        (
            ("racks", 4),
            ("cross_rack_latency_factor", 8.0),
            ("cross_rack_bandwidth_factor", 2.0),
        ),
    ),
    (
        "regions",
        (
            ("racks", 4),
            ("regions", 2),
            ("cross_rack_latency_factor", 8.0),
            ("cross_rack_bandwidth_factor", 2.0),
            ("cross_region_latency_factor", 25.0),
            ("cross_region_bandwidth_factor", 4.0),
        ),
    ),
)


def render_class_util_table(result: ExperimentResult) -> str:
    """Render per-node-class CPU utilisation, averaged over the run.

    One row per curve carrying per-class timeline data (uniform points have
    none and are skipped); one column per node class seen anywhere in the
    result.  Cells are the run-mean CPU utilisation of that class's PEs --
    the at-a-glance view of whether a strategy actually *uses* the fast
    nodes.
    """
    rows: Dict[str, Dict[str, float]] = {}
    class_names: list = []
    multiple_x = len(result.x_values()) > 1
    for series in result.series_names():
        for point in result.series(series):
            timeline = point.result.timeline
            if timeline is None:
                continue
            sums: Dict[str, float] = {}
            counts: Dict[str, int] = {}
            for window in timeline:
                for name, cpu, _disk, _mem in getattr(window, "class_util", ()):
                    sums[name] = sums.get(name, 0.0) + cpu
                    counts[name] = counts.get(name, 0) + 1
            if not sums:
                continue
            label = f"{series} (x={point.x:g})" if multiple_x else series
            if label in rows:
                continue  # first replicate wins (aggregated results have one)
            rows[label] = {name: sums[name] / counts[name] for name in sums}
            for name in sums:
                if name not in class_names:
                    class_names.append(name)
    if not rows:
        return "(no per-class utilisation data: all points uniform)"
    label_width = max(len(label) for label in rows)
    width = max([10] + [len(name) + 2 for name in class_names])
    header = f"{'':<{label_width}} | " + " | ".join(
        f"{name:>{width}}" for name in class_names
    )
    lines = [f"{result.title} -- mean CPU utilisation per node class", header,
             "-" * len(header)]
    for label, cells in rows.items():
        rendered = " | ".join(
            f"{cells[name]:>{width}.3f}" if name in cells else " " * width
            for name in class_names
        )
        lines.append(f"{label:<{label_width}} | {rendered}")
    return "\n".join(lines)


def _entries(table: Tuple[Tuple[str, Optional[tuple]], ...], names: Sequence[str]):
    lookup = dict(table)
    unknown = [name for name in names if name not in lookup]
    if unknown:
        raise ValueError(
            f"unknown name(s) {unknown}; expected a subset of {[n for n, _ in table]}"
        )
    return tuple(lookup[name] for name in names)


def build_spec(
    system_sizes: Sequence[int] = (20,),
    strategies: Sequence[str] = STRATEGIES,
    node_mixes: Sequence[str] = ("uniform", "fast-half", "fast-quarter"),
    topology_tiers: Sequence[str] = ("flat", "racks", "regions"),
    oltp_placement: str = "B",
    rate_per_pe: Optional[float] = None,
    timeline_window: float = 10.0,
    max_simulated_time: Optional[float] = None,
    measured_joins: Optional[int] = None,  # accepted for CLI symmetry; unused
) -> ScenarioSpec:
    """Declare the heterogeneous scenario as a spec.

    Two sweeps share the strategy cast: the first varies the node-class mix
    on a flat network, the second fixes the ``fast-half`` mix and varies the
    interconnect topology (skipped when ``topology_tiers`` is ``("flat",)``).
    Timeline points run for ``max_simulated_time`` simulated seconds
    (default 60 s), binning metrics every ``timeline_window`` seconds.
    """
    del measured_joins  # timeline runs have a duration, not a join target
    duration = 60.0 if max_simulated_time is None else max_simulated_time
    placement = oltp_placement.upper()
    common = dict(
        kind="timeline",
        scenario="mixed",
        strategies=tuple(strategies),
        system_sizes=tuple(system_sizes),
        rates=(rate_per_pe,),
        oltp_placements=(placement,),
        timeline_window=timeline_window,
    )
    sweeps = [
        Sweep(
            node_classes=_entries(NODE_MIXES, node_mixes),
            series="{strategy} [{nodes}]",
            **common,
        )
    ]
    tiered = [name for name in topology_tiers if name != "flat"]
    if tiered:
        sweeps.append(
            Sweep(
                node_classes=_entries(NODE_MIXES, ("fast-half",)),
                topologies=_entries(TOPOLOGIES, tiered),
                series="{strategy} [{nodes},{topology}]",
                **common,
            )
        )
    return ScenarioSpec(
        name="heterogeneous",
        title=(
            f"Heterogeneous cluster: mixed workload (OLTP on {placement} nodes), "
            f"fast/slow PE mixes and tiered interconnects ({duration:g} s)"
        ),
        x_label="# PE",
        sweeps=tuple(sweeps),
        max_simulated_time=duration,
        extra_tables=(render_class_util_table,),
    )


register_scenario("heterogeneous", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("heterogeneous", ...)``."""
    return run_scenario("heterogeneous", make_runner(workers=workers, cache=cache), **kwargs)
