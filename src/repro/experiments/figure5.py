"""Fig. 5: static degree of join parallelism, homogeneous workload.

Multi-user join response times (0.25 QPS per PE, 1 % scan selectivity) for a
static degree of join parallelism -- psu-noIO (= 3) or psu-opt (= 30) -- in
combination with RANDOM, LUC and LUM selection of the join processors, over
system sizes of 10 to 80 PE, plus the single-user baseline with psu-opt join
processors.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    PAPER_SYSTEM_SIZES,
    ExperimentPoint,
    ExperimentResult,
    run_point,
    run_single_user_point,
)
from repro.experiments.scenarios import homogeneous_config

__all__ = ["run", "STRATEGIES"]

STRATEGIES = (
    "psu_noIO+RANDOM",
    "psu_noIO+LUC",
    "psu_noIO+LUM",
    "psu_opt+RANDOM",
    "psu_opt+LUC",
    "psu_opt+LUM",
)


def run(
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    include_single_user: bool = True,
) -> ExperimentResult:
    """Reproduce Fig. 5 (response times in ms per strategy and system size)."""
    experiment = ExperimentResult(
        figure="figure5",
        title="Fig. 5: static degree of parallelism (multi-user join 0.25 QPS/PE, 1% selectivity)",
        x_label="# PE",
    )
    for num_pe in system_sizes:
        config = homogeneous_config(num_pe)
        for strategy in strategies:
            result = run_point(
                config,
                strategy,
                measured_joins=measured_joins,
                max_simulated_time=max_simulated_time,
            )
            experiment.add(
                ExperimentPoint(figure="figure5", series=strategy, x=num_pe, result=result)
            )
        if include_single_user:
            baseline = run_single_user_point(config, strategy="psu_opt+RANDOM")
            experiment.add(
                ExperimentPoint(
                    figure="figure5", series="single-user (psu_opt)", x=num_pe, result=baseline
                )
            )
    return experiment
