"""Fig. 5: static degree of join parallelism, homogeneous workload.

Multi-user join response times (0.25 QPS per PE, 1 % scan selectivity) for a
static degree of join parallelism -- psu-noIO (= 3) or psu-opt (= 30) -- in
combination with RANDOM, LUC and LUM selection of the join processors, over
system sizes of 10 to 80 PE, plus the single-user baseline with psu-opt join
processors.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, PAPER_SYSTEM_SIZES, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = ["run", "build_spec", "STRATEGIES"]

STRATEGIES = (
    "psu_noIO+RANDOM",
    "psu_noIO+LUC",
    "psu_noIO+LUM",
    "psu_opt+RANDOM",
    "psu_opt+LUC",
    "psu_opt+LUM",
)


def build_spec(
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    include_single_user: bool = True,
) -> ScenarioSpec:
    """Declare Fig. 5 as a scenario spec."""
    sweeps = [
        Sweep(
            kind="multi",
            scenario="homogeneous",
            strategies=tuple(strategies),
            system_sizes=tuple(system_sizes),
        )
    ]
    if include_single_user:
        sweeps.append(
            Sweep(
                kind="single",
                scenario="homogeneous",
                strategies=("psu_opt+RANDOM",),
                system_sizes=tuple(system_sizes),
                series="single-user (psu_opt)",
                num_queries=5,
            )
        )
    return ScenarioSpec(
        name="figure5",
        title="Fig. 5: static degree of parallelism (multi-user join 0.25 QPS/PE, 1% selectivity)",
        x_label="# PE",
        sweeps=tuple(sweeps),
        measured_joins=measured_joins,
        max_simulated_time=max_simulated_time,
    )


register_scenario("figure5", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("figure5", ...)``."""
    return run_scenario("figure5", make_runner(workers=workers, cache=cache), **kwargs)
