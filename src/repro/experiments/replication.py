"""Replication & failover scenario: availability versus throughput.

PR 8 showed that in the paper's single-copy Shared Nothing system a PE
crash is a *total-loss* event: every declustered join is held until the
crashed PE recovers.  This scenario exercises the PR 10 replication
subsystem (:mod:`repro.database.allocation`): the same homogeneous join
workload runs across the replica-placement axis (``none`` / ``mirror`` /
``chained``) and a set of failure plans on a racked topology, for a
dynamic load-balancing strategy (OPT-IO-CPU) against a tuned static
baseline.

Named fault plans (injected at t=15 of the default 60 s run):

* ``clean`` -- no fault plan at all; the replication policies differ only
  by their replica-maintenance overhead (none here: the join workload is
  read-only).
* ``crash`` -- PE 1 crashes at 15 s and recovers at 30 s.  Under ``none``
  every join is held for the outage (PE 1 holds a fragment of relation A);
  under ``chained`` reads fail over and spread across the decluster ring,
  so joins keep completing and ``effective_availability`` stays at 1.0;
  ``mirror`` also survives but doubles the partner's load.
* ``rack`` -- every PE of topology rack 1 crashes at 15 s (correlated
  failure).  Chained declustering places each backup on the *next* ring
  PE, which usually shares the rack -- so a whole-rack loss takes adjacent
  primary+backup pairs down together and even ``chained`` loses data
  reachability: the availability-vs-correlation finding.
* ``crash+surge`` -- the single-PE crash coupled with a 3x arrival surge
  while the PE is down (cascading overload): survivors absorb both the
  failed-over reads and the extra arrivals.

The headline table reports end-of-run means; the recovery-curve extra
table renders the per-window join response time, and the effective-
availability table shows the fraction of *data* reachable per window --
the field that separates graceful degradation (``chained``: 1.00 through
a single crash) from outage (``none``: < 1 with zero completions).
``--export csv|json`` writes ``effective_availability`` on every
``row_type="window"`` row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.experiments.faults import _columns, render_recovery_table
from repro.faults.plan import FailuresEntry, FaultEvent, encode_failures
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = [
    "run",
    "build_spec",
    "render_effective_availability_table",
    "STRATEGIES",
    "FAULT_PLANS",
    "REPLICATION_AXIS",
    "TOPOLOGY",
]

#: A dynamic (load-aware) strategy against a tuned static baseline.
STRATEGIES = ("OPT-IO-CPU", "psu_opt+RANDOM")

#: Replica-placement axis: the single-copy baseline against both policies.
REPLICATION_AXIS = ("none", "mirror", "chained")

#: Racked topology shared by every point: 4 racks with a 2x cross-rack
#: latency factor, so rack-scoped crashes are meaningful and failover
#: traffic pays for leaving the rack.
TOPOLOGY = (("racks", 4), ("cross_rack_latency_factor", 2.0))

#: Named fault plans (all at t=15 of the default 60 s horizon).
FAULT_PLANS: Tuple[Tuple[str, Optional[FailuresEntry]], ...] = (
    ("clean", None),
    ("crash", encode_failures([FaultEvent(time=15.0, kind="pe_crash", pe=1, duration=15.0)])),
    ("rack", encode_failures([FaultEvent(time=15.0, kind="pe_crash", rack=1, duration=15.0)])),
    (
        "crash+surge",
        encode_failures(
            [FaultEvent(time=15.0, kind="pe_crash", pe=1, duration=15.0, surge=3.0)]
        ),
    ),
)


def render_effective_availability_table(result: ExperimentResult) -> str:
    """Per-window effective (data) availability, with anomalies listed.

    Cells are the tuple-weighted fraction of the database with at least one
    alive copy over the window: 1.00 on clean runs *and* on replicated runs
    that keep every fragment reachable through a failure; below 1.0 when
    data became unreachable (every copy dead).
    """
    columns = _columns(result)
    if not columns:
        return "(no timeline data)"
    rows: Dict[Tuple[float, float], Dict[str, str]] = {}
    anomalies: Dict[str, List[str]] = {}
    for label, timeline in columns.items():
        for window in timeline:
            rows.setdefault((window.start, window.end), {})[
                label
            ] = f"{window.effective_availability:.2f}"
            if window.anomaly:
                anomalies.setdefault(label, []).append(
                    f"[{window.start:g},{window.end:g}) {window.anomaly}"
                )
    labels = list(columns)
    width = max([12] + [len(label) + 2 for label in labels])
    header = f"{'window':>16} | " + " | ".join(f"{label:>{width}}" for label in labels)
    lines = [
        f"{result.title} -- effective (data) availability per window",
        header,
        "-" * len(header),
    ]
    for (start, end) in sorted(rows):
        cells = rows[(start, end)]
        rendered = " | ".join(
            f"{cells[label]:>{width}}" if label in cells else " " * width for label in labels
        )
        lines.append(f"[{start:6.1f},{end:6.1f}) | {rendered}")
    if anomalies:
        lines.append("anomaly windows:")
        for label in labels:
            if label in anomalies:
                lines.append(f"  {label}: " + "; ".join(anomalies[label]))
    return "\n".join(lines)


def _entries(names: Sequence[str]) -> Tuple[Optional[FailuresEntry], ...]:
    table = dict(FAULT_PLANS)
    unknown = [name for name in names if name not in table]
    if unknown:
        raise ValueError(
            f"unknown fault plan(s) {unknown}; expected {[n for n, _ in FAULT_PLANS]}"
        )
    return tuple(table[name] for name in names)


def build_spec(
    system_sizes: Sequence[int] = (8, 16),
    strategies: Sequence[str] = STRATEGIES,
    fault_names: Sequence[str] = ("clean", "crash", "rack", "crash+surge"),
    replication: Sequence[str] = REPLICATION_AXIS,
    rate_per_pe: float = 0.25,
    timeline_window: float = 5.0,
    max_simulated_time: Optional[float] = None,
    measured_joins: Optional[int] = None,  # accepted for CLI symmetry; unused
) -> ScenarioSpec:
    """Declare the replication & failover scenario as a spec.

    One timeline sweep: every strategy crossed with the replica-placement
    axis and every named fault plan, on a racked homogeneous pool.
    Timeline points run for ``max_simulated_time`` simulated seconds
    (default 60 s -- the plan times above are tuned to that horizon),
    binning metrics every ``timeline_window`` seconds.
    """
    del measured_joins  # timeline runs have a duration, not a join target
    duration = 60.0 if max_simulated_time is None else max_simulated_time
    sweep = Sweep(
        kind="timeline",
        scenario="homogeneous",
        strategies=tuple(strategies),
        system_sizes=tuple(system_sizes),
        rates=(rate_per_pe,),
        timeline_window=timeline_window,
        topologies=(TOPOLOGY,),
        failures=_entries(fault_names),
        replication=tuple(replication),
        series="{strategy} {replication} [{failures}]",
    )
    return ScenarioSpec(
        name="replication",
        title=(
            f"Replication & failover: none/mirror/chained under crash, rack crash "
            f"and crash+surge ({rate_per_pe:g} QPS/PE, {duration:g} s, "
            f"{timeline_window:g} s windows)"
        ),
        x_label="# PE",
        sweeps=(sweep,),
        max_simulated_time=duration,
        extra_tables=(render_recovery_table, render_effective_availability_table),
    )


register_scenario("replication", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Convenience wrapper for ``run_scenario("replication", ...)``."""
    return run_scenario("replication", make_runner(workers=workers, cache=cache), **kwargs)
