"""Configuration builders for the paper's experiment scenarios (§5.1-§5.3)."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config.parameters import OltpConfig, SystemConfig

__all__ = [
    "homogeneous_config",
    "memory_bound_config",
    "join_complexity_config",
    "mixed_workload_config",
]


def homogeneous_config(
    num_pe: int,
    scan_selectivity: float = 0.01,
    arrival_rate_per_pe: float = 0.25,
    seed: int = 42,
) -> SystemConfig:
    """Homogeneous join-only workload of §5.2 (Figs. 5 and 6)."""
    config = SystemConfig(num_pe=num_pe, seed=seed)
    return config.with_overrides(
        join_query=replace(
            config.join_query,
            scan_selectivity=scan_selectivity,
            arrival_rate_per_pe=arrival_rate_per_pe,
        )
    )


def memory_bound_config(
    num_pe: int,
    arrival_rate_per_pe: float = 0.05,
    seed: int = 42,
) -> SystemConfig:
    """Memory/disk-bound environment of Fig. 7.

    The buffer is reduced by a factor of 10 (50 -> 5 pages) and only one disk
    per PE is available for temporary file I/O; the query arrival rate is
    reduced so that the CPU stays lightly loaded (< 20 %).
    """
    config = homogeneous_config(num_pe, arrival_rate_per_pe=arrival_rate_per_pe, seed=seed)
    return config.with_overrides(
        buffer=replace(config.buffer, buffer_pages=5),
        disk=replace(config.disk, disks_per_pe=1),
    )


#: Arrival rates (QPS per PE) per scan selectivity for the join-complexity
#: experiment: chosen so that at least one resource is highly utilised at the
#: fixed system size of 60 PE (paper §5.2, "Influence of join complexity").
JOIN_COMPLEXITY_RATES = {
    0.001: 0.60,
    0.01: 0.25,
    0.02: 0.14,
    0.05: 0.055,
}


def join_complexity_config(
    selectivity: float,
    num_pe: int = 60,
    arrival_rate_per_pe: Optional[float] = None,
    seed: int = 42,
) -> SystemConfig:
    """Configuration for the join complexity experiment (Fig. 8)."""
    if arrival_rate_per_pe is None:
        arrival_rate_per_pe = JOIN_COMPLEXITY_RATES.get(selectivity, 0.25 * 0.01 / selectivity)
    return homogeneous_config(
        num_pe,
        scan_selectivity=selectivity,
        arrival_rate_per_pe=arrival_rate_per_pe,
        seed=seed,
    )


def mixed_workload_config(
    num_pe: int,
    oltp_placement: str = "A",
    oltp_tps_per_node: float = 100.0,
    join_rate_per_pe: float = 0.075,
    seed: int = 42,
) -> SystemConfig:
    """Heterogeneous query/OLTP workload of Fig. 9 (5 disks per PE)."""
    config = SystemConfig(
        num_pe=num_pe,
        seed=seed,
        oltp=OltpConfig(placement=oltp_placement, arrival_rate_per_node=oltp_tps_per_node),
    )
    return config.with_overrides(
        disk=replace(config.disk, disks_per_pe=5),
        join_query=replace(config.join_query, arrival_rate_per_pe=join_rate_per_pe),
    )
