"""Reproduction of the paper's evaluation section, one module per figure.

Each figure module declares its sweep as a :class:`repro.runner.ScenarioSpec`
(registered by name in :mod:`repro.runner.registry`) and keeps a thin
``run(...)`` wrapper that executes the spec through
:class:`repro.runner.ParallelRunner`.  Importing this package populates the
scenario registry.
"""

from repro.experiments import (
    dynamic,
    faults,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    heterogeneous,
    replication,
    table_parameters,
)
from repro.experiments.base import (
    PAPER_SYSTEM_SIZES,
    AggregatedExperimentResult,
    AggregatedPoint,
    ExperimentPoint,
    ExperimentResult,
    default_measured_joins,
    default_time_limit,
    run_point,
    run_single_user_point,
)
from repro.experiments.export import collect_rows, export_rows
from repro.experiments.scenarios import (
    homogeneous_config,
    join_complexity_config,
    memory_bound_config,
    mixed_workload_config,
)
from repro.experiments.table_parameters import render as render_parameter_table

__all__ = [
    "dynamic",
    "faults",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "heterogeneous",
    "replication",
    "table_parameters",
    "PAPER_SYSTEM_SIZES",
    "AggregatedExperimentResult",
    "AggregatedPoint",
    "ExperimentPoint",
    "ExperimentResult",
    "collect_rows",
    "default_measured_joins",
    "default_time_limit",
    "export_rows",
    "run_point",
    "run_single_user_point",
    "homogeneous_config",
    "join_complexity_config",
    "memory_bound_config",
    "mixed_workload_config",
    "render_parameter_table",
]

def _registry_run(name):
    """Back-compat run callable executing a registered scenario spec."""

    def _run(workers=1, cache=None, **kwargs):
        from repro.runner import ParallelRunner, build_scenario

        return ParallelRunner(workers=workers, cache=cache).run(build_scenario(name, **kwargs))

    _run.__name__ = f"run_{name}"
    return _run


#: Back-compat mapping derived from the scenario registry: figure name ->
#: callable returning an ExperimentResult ("parameters" is a static table,
#: not a simulated figure, hence excluded).
from repro.runner import available_scenarios as _available_scenarios

EXPERIMENTS = {
    name: _registry_run(name) for name in _available_scenarios() if name != "parameters"
}
