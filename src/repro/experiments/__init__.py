"""Reproduction of the paper's evaluation section, one module per figure."""

from repro.experiments import figure1, figure5, figure6, figure7, figure8, figure9
from repro.experiments.base import (
    PAPER_SYSTEM_SIZES,
    ExperimentPoint,
    ExperimentResult,
    default_measured_joins,
    default_time_limit,
    run_point,
    run_single_user_point,
)
from repro.experiments.scenarios import (
    homogeneous_config,
    join_complexity_config,
    memory_bound_config,
    mixed_workload_config,
)
from repro.experiments.table_parameters import render as render_parameter_table

__all__ = [
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "PAPER_SYSTEM_SIZES",
    "ExperimentPoint",
    "ExperimentResult",
    "default_measured_joins",
    "default_time_limit",
    "run_point",
    "run_single_user_point",
    "homogeneous_config",
    "join_complexity_config",
    "memory_bound_config",
    "mixed_workload_config",
    "render_parameter_table",
]

#: Mapping used by the CLI: figure name -> callable returning ExperimentResult.
EXPERIMENTS = {
    "figure1": figure1.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9a": lambda **kwargs: figure9.run(oltp_placement="A", **kwargs),
    "figure9b": lambda **kwargs: figure9.run(oltp_placement="B", **kwargs),
}
