"""CSV/JSON export of experiment results.

Rows come from :meth:`ExperimentResult.to_rows` (one row per (series, x,
replicate), ``row_type="replicate"``) optionally followed by the rows of the
matching :meth:`AggregatedExperimentResult.to_rows` (one per (series, x),
``row_type="aggregate"`` with ``n`` and spread columns).  Results that carry
a windowed timeline additionally contribute one row per window
(``row_type="window"``, or ``"window_mean"`` for the window-wise replicate
mean of an aggregated point).  On heterogeneous systems each window also
yields one row per node class (``row_type="window_class"`` /
``"window_class_mean"``) carrying that class's cpu/disk/mem utilisation.
Window rows also carry the fault-injection observability fields
(``availability``, ``anomaly`` -- 1.0 and empty on fault-free runs).
The CSV header is the union of all row keys in first-appearance order, so
every row kind shares one parseable table.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.base import AggregatedExperimentResult, ExperimentResult

__all__ = ["EXPORT_FORMATS", "collect_rows", "export_rows", "timeline_rows"]

EXPORT_FORMATS = ("csv", "json")


def _window_row(window, scope: Dict[str, object], row_type: str) -> Dict[str, object]:
    row: Dict[str, object] = dict(scope)
    row.update(
        {
            "row_type": row_type,
            "t_start": round(window.start, 6),
            "t_end": round(window.end, 6),
            "joins_completed": round(window.joins_completed, 3),
            "join_throughput_qps": round(window.join_throughput, 3),
            "join_rt_ms": round(window.join_rt_mean * 1e3, 1),
            "join_rt_p95_ms": round(window.join_rt_p95 * 1e3, 1),
            "join_rt_max_ms": round(window.join_rt_max * 1e3, 1),
            "oltp_completed": round(window.oltp_completed, 3),
            "oltp_rt_ms": round(window.oltp_rt_mean * 1e3, 1),
            "cpu_util": round(window.cpu_util, 3),
            "cpu_util_max": round(window.cpu_util_max, 3),
            "cpu_imbalance": round(window.cpu_imbalance, 3),
            "disk_util": round(window.disk_util, 3),
            "disk_util_max": round(window.disk_util_max, 3),
            "disk_imbalance": round(window.disk_imbalance, 3),
            "mem_util": round(window.mem_util, 3),
            "mem_util_max": round(window.mem_util_max, 3),
            "mem_imbalance": round(window.mem_imbalance, 3),
            "availability": round(window.availability, 4),
            "anomaly": window.anomaly,
            "effective_availability": round(window.effective_availability, 4),
        }
    )
    return row


def timeline_rows(
    result: ExperimentResult, row_type: str = "window"
) -> List[Dict[str, object]]:
    """One row per timeline window of every point carrying a timeline."""
    rows: List[Dict[str, object]] = []
    for point in result.points:
        timeline = point.result.timeline
        if timeline is None:
            continue
        scope = {
            "figure": result.figure,
            "series": point.series,
            "x": point.x,
            "replicate": getattr(point, "replicate", 0),
        }
        for index, window in enumerate(timeline):
            row = _window_row(window, scope, row_type)
            row["window_index"] = index
            rows.append(row)
            for name, cpu, disk, mem in getattr(window, "class_util", ()):
                class_row: Dict[str, object] = dict(scope)
                class_row.update(
                    {
                        "row_type": f"{row_type}_class",
                        "t_start": round(window.start, 6),
                        "t_end": round(window.end, 6),
                        "window_index": index,
                        "node_class": name,
                        "cpu_util": round(cpu, 3),
                        "disk_util": round(disk, 3),
                        "mem_util": round(mem, 3),
                    }
                )
                rows.append(class_row)
    return rows


def collect_rows(
    experiment: ExperimentResult,
    aggregated: Optional[AggregatedExperimentResult] = None,
) -> List[Dict[str, object]]:
    """Per-replicate rows (plus their timeline windows), then aggregates."""
    rows = [dict(row) for row in experiment.to_rows()]
    rows.extend(timeline_rows(experiment, row_type="window"))
    if aggregated is not None:
        rows.extend(dict(row) for row in aggregated.to_rows())
        rows.extend(timeline_rows(aggregated, row_type="window_mean"))
    return rows


def export_rows(
    rows: Sequence[Dict[str, object]],
    path: Union[str, Path],
    fmt: str,
) -> Path:
    """Write ``rows`` to ``path`` as CSV or JSON; returns the path written."""
    if fmt not in EXPORT_FORMATS:
        raise ValueError(f"unknown export format {fmt!r}; expected one of {EXPORT_FORMATS}")
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "csv":
        fieldnames: List[str] = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
            writer.writeheader()
            writer.writerows(rows)
    else:
        path.write_text(json.dumps(list(rows), indent=2) + "\n", encoding="utf-8")
    return path
