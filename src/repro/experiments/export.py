"""CSV/JSON export of experiment results.

Rows come from :meth:`ExperimentResult.to_rows` (one row per (series, x,
replicate), ``row_type="replicate"``) optionally followed by the rows of the
matching :meth:`AggregatedExperimentResult.to_rows` (one per (series, x),
``row_type="aggregate"`` with ``n`` and spread columns).  The CSV header is
the union of all row keys in first-appearance order, so replicate and
aggregate rows share one parseable table.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.base import AggregatedExperimentResult, ExperimentResult

__all__ = ["EXPORT_FORMATS", "collect_rows", "export_rows"]

EXPORT_FORMATS = ("csv", "json")


def collect_rows(
    experiment: ExperimentResult,
    aggregated: Optional[AggregatedExperimentResult] = None,
) -> List[Dict[str, object]]:
    """Per-replicate rows, followed by aggregate rows when provided."""
    rows = [dict(row) for row in experiment.to_rows()]
    if aggregated is not None:
        rows.extend(dict(row) for row in aggregated.to_rows())
    return rows


def export_rows(
    rows: Sequence[Dict[str, object]],
    path: Union[str, Path],
    fmt: str,
) -> Path:
    """Write ``rows`` to ``path`` as CSV or JSON; returns the path written."""
    if fmt not in EXPORT_FORMATS:
        raise ValueError(f"unknown export format {fmt!r}; expected one of {EXPORT_FORMATS}")
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "csv":
        fieldnames: List[str] = []
        for row in rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
            writer.writeheader()
            writer.writerows(rows)
    else:
        path.write_text(json.dumps(list(rows), indent=2) + "\n", encoding="utf-8")
    return path
