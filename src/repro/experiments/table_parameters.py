"""Fig. 4: the parameter table of the simulation system.

Not a performance experiment -- this module renders the configuration
defaults so the reproduction of the parameter table can be checked at a
glance (and regression-tested).
"""

from __future__ import annotations

from repro.config.parameters import SystemConfig
from repro.runner import ScenarioSpec, register_scenario

__all__ = ["render", "rows", "build_spec"]


def rows(config: SystemConfig | None = None) -> list[tuple[str, str]]:
    """(parameter, value) pairs mirroring Fig. 4 of the paper."""
    config = config or SystemConfig()
    costs = config.costs
    disk = config.disk
    return [
        ("number of PE (#PE, n)", "10, 20, 40, 60, 80"),
        ("CPU speed per PE", f"{config.cpu.mips:g} MIPS"),
        ("instructions: initiate a query/transaction", f"{costs.initiate_transaction}"),
        ("instructions: terminate a query/transaction", f"{costs.terminate_transaction}"),
        ("instructions: I/O", f"{costs.io_operation}"),
        ("instructions: send message", f"{costs.send_message}"),
        ("instructions: receive message", f"{costs.receive_message}"),
        ("instructions: copy 8 KB message", f"{costs.copy_message_packet}"),
        ("instructions: read a tuple from memory page", f"{costs.read_tuple}"),
        ("instructions: hash a tuple", f"{costs.hash_tuple}"),
        ("instructions: insert a tuple into hash table", f"{costs.insert_into_hash_table}"),
        ("instructions: write a tuple into output buffer", f"{costs.write_tuple_to_output}"),
        ("instructions: probe hash table", f"{costs.probe_hash_table}"),
        ("page size", f"{config.buffer.page_size_bytes // 1024} KB"),
        ("buffer size", f"{config.buffer.buffer_pages} pages"),
        ("disks per PE", f"{disk.disks_per_pe}"),
        ("controller service time", f"{disk.controller_service_time * 1e3:g} ms per page"),
        ("transmission time per page", f"{disk.transmission_time_per_page * 1e3:g} ms"),
        ("avg. disk access time", f"{disk.avg_access_time * 1e3:g} ms"),
        ("prefetching delay per page", f"{disk.prefetch_delay_per_page * 1e3:g} ms"),
        ("disk cache", f"{disk.cache_pages} pages"),
        ("prefetching size", f"{disk.prefetch_pages} pages"),
        ("relation A: #tuples", f"{config.relation_a.num_tuples}"),
        ("relation A: tuple size", f"{config.relation_a.tuple_size_bytes} B"),
        ("relation A: allocation", "partial declustering (20% of #PE)"),
        ("relation B: #tuples", f"{config.relation_b.num_tuples}"),
        ("relation B: tuple size", f"{config.relation_b.tuple_size_bytes} B"),
        ("relation B: allocation", "partial declustering (80% of #PE)"),
        ("join: access method", "via clustered index"),
        ("join: fudge factor hash table", f"{config.join_query.fudge_factor:g}"),
        ("join: no. of result tuples", "100% of the inner relation"),
        ("join: query placement", "random (uniformly over all PE)"),
    ]


def render(config: SystemConfig | None = None) -> str:
    """Aligned text rendering of the parameter table."""
    pairs = rows(config)
    width = max(len(name) for name, _ in pairs)
    lines = ["Fig. 4: system configuration, database and query profile"]
    lines += [f"  {name:<{width}}  {value}" for name, value in pairs]
    return "\n".join(lines)


def build_spec() -> ScenarioSpec:
    """The parameter table as a (non-simulated) registry scenario."""
    return ScenarioSpec(
        name="parameters",
        title="Fig. 4: system configuration, database and query profile",
        x_label="parameter",
        sweeps=(),
        static_table=render,
    )


register_scenario("parameters", build_spec)
