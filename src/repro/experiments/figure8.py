"""Fig. 8: influence of join complexity.

At a constant system size of 60 PE the scan selectivity is varied between
0.1 % and 5 % (and the per-selectivity arrival rate adjusted so that at least
one resource is highly utilised).  The figure reports the *relative response
time improvement* of the dynamic strategies over the static baseline
psu-opt + RANDOM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = ["run", "build_spec", "STRATEGIES", "SELECTIVITIES", "improvement_table"]

STRATEGIES = (
    "psu_noIO+LUM",
    "MIN-IO-SUOPT",
    "MIN-IO",
    "pmu_cpu+LUM",
    "OPT-IO-CPU",
)
BASELINE = "psu_opt+RANDOM"
SELECTIVITIES = (0.001, 0.01, 0.02, 0.05)


def improvement_table(experiment: ExperimentResult) -> str:
    """Relative response-time improvement (%) versus psu-opt + RANDOM."""
    strategies = [name for name in experiment.series_names() if name != BASELINE]
    lines = [
        "Fig. 8: relative response time improvement vs psu_opt+RANDOM [%]",
        f"{'selectivity %':>14} | " + " | ".join(f"{name:>14}" for name in strategies),
    ]
    lines.append("-" * len(lines[-1]))
    for x in experiment.x_values():
        baseline = experiment.value(BASELINE, x)
        if baseline is None or baseline.result.join_response_time <= 0:
            continue
        cells = []
        for name in strategies:
            point = experiment.value(name, x)
            if point is None:
                cells.append(" " * 14)
                continue
            improvement = 100.0 * (
                1.0 - point.result.join_response_time / baseline.result.join_response_time
            )
            cells.append(f"{improvement:>14.1f}")
        lines.append(f"{x:>14g} | " + " | ".join(cells))
    return "\n".join(lines)


def build_spec(
    selectivities: Sequence[float] = SELECTIVITIES,
    strategies: Sequence[str] = STRATEGIES,
    num_pe: int = 60,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
) -> ScenarioSpec:
    """Declare Fig. 8 as a scenario spec (baseline first, then strategies)."""
    common = dict(
        kind="multi",
        scenario="join-complexity",
        system_sizes=(num_pe,),
        selectivities=tuple(selectivities),
        x_axis="selectivity_pct",
    )
    sweeps = (
        Sweep(strategies=(BASELINE,), **common),
        Sweep(strategies=tuple(strategies), **common),
    )
    return ScenarioSpec(
        name="figure8",
        title=f"Fig. 8: influence of join complexity ({num_pe} PE, selectivity sweep)",
        x_label="selectivity %",
        sweeps=sweeps,
        measured_joins=measured_joins,
        max_simulated_time=max_simulated_time,
        extra_tables=(improvement_table,),
    )


register_scenario("figure8", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("figure8", ...)``."""
    return run_scenario("figure8", make_runner(workers=workers, cache=cache), **kwargs)
