"""Fig. 8: influence of join complexity.

At a constant system size of 60 PE the scan selectivity is varied between
0.1 % and 5 % (and the per-selectivity arrival rate adjusted so that at least
one resource is highly utilised).  The figure reports the *relative response
time improvement* of the dynamic strategies over the static baseline
psu-opt + RANDOM.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.base import ExperimentPoint, ExperimentResult, run_point
from repro.experiments.scenarios import JOIN_COMPLEXITY_RATES, join_complexity_config

__all__ = ["run", "STRATEGIES", "SELECTIVITIES", "improvement_table"]

STRATEGIES = (
    "psu_noIO+LUM",
    "MIN-IO-SUOPT",
    "MIN-IO",
    "pmu_cpu+LUM",
    "OPT-IO-CPU",
)
BASELINE = "psu_opt+RANDOM"
SELECTIVITIES = (0.001, 0.01, 0.02, 0.05)


def run(
    selectivities: Sequence[float] = SELECTIVITIES,
    strategies: Sequence[str] = STRATEGIES,
    num_pe: int = 60,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce Fig. 8.

    The experiment stores the absolute response times; use
    :func:`improvement_table` to obtain the paper's relative-improvement view
    (the baseline psu-opt + RANDOM is included as its own series).
    """
    experiment = ExperimentResult(
        figure="figure8",
        title=f"Fig. 8: influence of join complexity ({num_pe} PE, selectivity sweep)",
        x_label="selectivity %",
    )
    for selectivity in selectivities:
        config = join_complexity_config(selectivity, num_pe=num_pe)
        baseline_result = run_point(
            config, BASELINE, measured_joins=measured_joins, max_simulated_time=max_simulated_time
        )
        experiment.add(
            ExperimentPoint(
                figure="figure8", series=BASELINE, x=selectivity * 100, result=baseline_result
            )
        )
        for strategy in strategies:
            result = run_point(
                config,
                strategy,
                measured_joins=measured_joins,
                max_simulated_time=max_simulated_time,
            )
            experiment.add(
                ExperimentPoint(
                    figure="figure8", series=strategy, x=selectivity * 100, result=result
                )
            )
    return experiment


def improvement_table(experiment: ExperimentResult) -> str:
    """Relative response-time improvement (%) versus psu-opt + RANDOM."""
    lines = [
        "Fig. 8: relative response time improvement vs psu_opt+RANDOM [%]",
        f"{'selectivity %':>14} | " + " | ".join(f"{name:>14}" for name in STRATEGIES),
    ]
    lines.append("-" * len(lines[-1]))
    for x in experiment.x_values():
        baseline = experiment.value(BASELINE, x)
        if baseline is None or baseline.result.join_response_time <= 0:
            continue
        cells = []
        for name in STRATEGIES:
            point = experiment.value(name, x)
            if point is None:
                cells.append(" " * 14)
                continue
            improvement = 100.0 * (
                1.0 - point.result.join_response_time / baseline.result.join_response_time
            )
            cells.append(f"{improvement:>14.1f}")
        lines.append(f"{x:>14g} | " + " | ".join(cells))
    return "\n".join(lines)
