"""Fig. 1 / cost-model validation: response time vs. degree of join parallelism.

Fig. 1a of the paper sketches the single-user response-time curve: it falls
with additional join processors until the startup/termination and
communication overhead outweighs the shrinking per-processor work, then rises
again.  This experiment reproduces the curve twice -- once from the analytic
cost model (used by the strategies to derive psu-opt) and once by simulating
single-user executions with a fixed degree of parallelism.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = ["run", "build_spec", "DEGREES"]

DEGREES = (1, 2, 4, 8, 16, 24, 30, 40, 60, 80)


def build_spec(
    num_pe: int = 80,
    scan_selectivity: float = 0.01,
    degrees: Sequence[int] = DEGREES,
    simulate: bool = True,
    queries_per_point: int = 2,
) -> ScenarioSpec:
    """Declare Fig. 1a as a scenario spec (analytic curve plus simulation)."""
    common = dict(
        scenario="homogeneous",
        system_sizes=(num_pe,),
        selectivities=(scan_selectivity,),
        degrees=tuple(degrees),
        x_axis="degree",
    )
    sweeps = [Sweep(kind="analytic", series="analytic model", **common)]
    if simulate:
        sweeps.append(
            Sweep(
                kind="fixed-degree",
                series="simulation",
                num_queries=queries_per_point,
                **common,
            )
        )
    return ScenarioSpec(
        name="figure1",
        title="Fig. 1a: single-user response time vs. degree of join parallelism",
        x_label="join procs",
        sweeps=tuple(sweeps),
    )


register_scenario("figure1", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("figure1", ...)``."""
    return run_scenario("figure1", make_runner(workers=workers, cache=cache), **kwargs)
