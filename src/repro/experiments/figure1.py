"""Fig. 1 / cost-model validation: response time vs. degree of join parallelism.

Fig. 1a of the paper sketches the single-user response-time curve: it falls
with additional join processors until the startup/termination and
communication overhead outweighs the shrinking per-processor work, then rises
again.  This experiment reproduces the curve twice -- once from the analytic
cost model (used by the strategies to derive psu-opt) and once by simulating
single-user executions with a fixed degree of parallelism.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.experiments.base import ExperimentPoint, ExperimentResult
from repro.scheduling.cost_model import CostModel
from repro.scheduling.degree import FixedDegree
from repro.scheduling.placement import RandomPlacement
from repro.scheduling.strategy import IsolatedStrategy
from repro.simulation.driver import SimulationDriver
from repro.workload.query import JoinQuery
from repro.experiments.scenarios import homogeneous_config

__all__ = ["run", "DEGREES"]

DEGREES = (1, 2, 4, 8, 16, 24, 30, 40, 60, 80)


def run(
    num_pe: int = 80,
    scan_selectivity: float = 0.01,
    degrees: Sequence[int] = DEGREES,
    simulate: bool = True,
    queries_per_point: int = 2,
) -> ExperimentResult:
    """Reproduce the single-user response-time curve of Fig. 1a."""
    config = homogeneous_config(num_pe, scan_selectivity=scan_selectivity)
    cost_model = CostModel(config)
    query = JoinQuery(scan_selectivity=scan_selectivity)
    experiment = ExperimentResult(
        figure="figure1",
        title="Fig. 1a: single-user response time vs. degree of join parallelism",
        x_label="join procs",
    )

    for degree in degrees:
        if degree > num_pe:
            continue
        estimate = cost_model.estimate_response_time(query, degree)
        analytic = ExperimentPoint(
            figure="figure1",
            series="analytic model",
            x=degree,
            result=_pseudo_result(config, degree, estimate),
        )
        experiment.add(analytic)
        if simulate:
            strategy = IsolatedStrategy(
                FixedDegree(degree, name=f"fixed({degree})"), RandomPlacement(seed=config.seed)
            )
            driver = SimulationDriver(config, strategy=strategy)
            result = driver.run_single_user(num_queries=queries_per_point)
            experiment.add(
                ExperimentPoint(figure="figure1", series="simulation", x=degree, result=result)
            )
    return experiment


def _pseudo_result(config, degree, estimate_seconds):
    """Wrap an analytic estimate in a SimulationResult-shaped record."""
    from repro.simulation.results import SimulationResult

    return SimulationResult(
        strategy=f"analytic p={degree}",
        num_pe=config.num_pe,
        mode="analytic",
        simulated_seconds=0.0,
        joins_completed=0,
        join_response_time=estimate_seconds,
        join_response_time_p95=estimate_seconds,
        join_response_time_ci=0.0,
        average_degree=float(degree),
        average_overflow_pages=0.0,
        average_memory_wait=0.0,
        cpu_utilization=0.0,
        disk_utilization=0.0,
        memory_utilization=0.0,
    )
