"""Dynamic-workload scenarios: strategies under time-varying load.

The paper's figures drive every configuration with *stationary* Poisson
arrivals, so the adaptivity of the dynamic strategies is never actually
exercised.  These scenarios do what the paper's motivation calls for: they
run a load surge (``dynamic``) or a bursty on/off stream (``dynamic-mmpp``)
against a dynamic, load-aware strategy (OPT-IO-CPU) and two static
baselines, and record a *windowed timeline* per run -- the time-resolved
response times and per-PE load imbalance that show the dynamic strategy
re-balancing where a static one saturates.

Default strategy cast (20 PE, 0.25 QPS/PE mean, 2x surge for the middle
third of a 60 s run):

* ``OPT-IO-CPU`` -- dynamic: degree and placement react to current CPU/
  memory load.  Absorbs the surge (window response times stay a factor of
  several below the naive static baseline) and drains its backlog after it.
* ``psu_opt+RANDOM`` -- static but *well-tuned*: the single-user-optimal
  degree happens to sit close to the multi-user optimum for this workload,
  so it rides out the surge too (an honest reproduction finding worth
  keeping in the picture).
* ``psu_noIO+RANDOM`` -- static and naive (ignores I/O in its degree
  choice): already loaded before the surge, it saturates outright during
  the surge window and never recovers within the run.

The headline table still reports the end-of-run mean response time per
strategy; the registered extra table renders the per-window time series, and
``--export csv|json`` writes one row per window (``row_type="window"``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = [
    "run",
    "build_spec",
    "render_timeline_table",
    "STRATEGIES",
    "SURGE_PARAMS",
    "BURST_PARAMS",
]

#: A dynamic (load-aware) strategy against a tuned and a naive static
#: baseline (see the module docstring).
STRATEGIES = ("OPT-IO-CPU", "psu_opt+RANDOM", "psu_noIO+RANDOM")

#: Default load surge: rate doubles during the middle third of a 60 s run
#: (2x keeps the surge inside what the dynamic strategy can absorb at the
#: default 0.25 QPS/PE; larger factors over-saturate every strategy).
SURGE_PARAMS = (("surge_factor", 2.0), ("surge_start", 20.0), ("surge_end", 40.0))

#: Default bursty stream: 4x bursts, 25 % duty cycle, 20 s mean cycle.
BURST_PARAMS = (("burst_factor", 4.0), ("on_fraction", 0.25), ("cycle", 20.0))


def render_timeline_table(
    result: ExperimentResult,
    metric: str = "join_rt_mean",
    scale: float = 1e3,
    unit: str = "ms",
) -> str:
    """Render the per-window time series of every (series, x) as a table.

    One row per window (labelled by its ``[start, end)`` interval), one
    column per curve; cells are ``metric`` scaled by ``scale``.  Works on
    plain and aggregated results (aggregated cells are window-wise replicate
    means).
    """
    columns: Dict[str, object] = {}
    multiple_x = len(result.x_values()) > 1
    for series in result.series_names():
        for point in result.series(series):
            if point.result.timeline is None:
                continue
            label = f"{series} (x={point.x:g})" if multiple_x else series
            columns.setdefault(label, point.result.timeline)
    if not columns:
        return "(no timeline data)"
    rows: Dict[Tuple[float, float], Dict[str, float]] = {}
    for label, timeline in columns.items():
        for window in timeline:
            rows.setdefault((window.start, window.end), {})[label] = (
                getattr(window, metric) * scale
            )
    labels = list(columns)
    width = max([12] + [len(label) + 2 for label in labels])
    header = f"{'window':>16} | " + " | ".join(f"{label:>{width}}" for label in labels)
    lines = [f"{result.title} -- {metric} per window ({unit})", header, "-" * len(header)]
    for (start, end) in sorted(rows):
        cells = rows[(start, end)]
        rendered = " | ".join(
            f"{cells[label]:>{width}.1f}" if label in cells else " " * width
            for label in labels
        )
        lines.append(f"[{start:6.1f},{end:6.1f}) | {rendered}")
    return "\n".join(lines)


def build_spec(
    system_sizes: Sequence[int] = (20,),
    strategies: Sequence[str] = STRATEGIES,
    arrival: str = "step",
    arrival_params: Sequence[Tuple[str, float]] = SURGE_PARAMS,
    rate_per_pe: float = 0.25,
    timeline_window: float = 2.0,
    max_simulated_time: Optional[float] = None,
    measured_joins: Optional[int] = None,  # accepted for CLI symmetry; unused
    name: str = "dynamic",
    title: Optional[str] = None,
) -> ScenarioSpec:
    """Declare a dynamic-workload scenario as a spec.

    Timeline points run for exactly ``max_simulated_time`` simulated seconds
    (default 60 s -- the surge/burst parameters above are tuned to that
    horizon), binning metrics every ``timeline_window`` seconds.
    """
    del measured_joins  # timeline runs have a duration, not a join target
    duration = 60.0 if max_simulated_time is None else max_simulated_time
    sweep = Sweep(
        kind="timeline",
        scenario="homogeneous",
        strategies=tuple(strategies),
        system_sizes=tuple(system_sizes),
        rates=(rate_per_pe,),
        arrivals=(arrival,),
        arrival_params=tuple((str(k), float(v)) for k, v in arrival_params),
        timeline_window=timeline_window,
        series="{strategy}",
    )
    if title is None:
        pretty = {"step": "load surge", "mmpp": "bursty on/off load", "sine": "sinusoidal load",
                  "trace": "trace replay", "poisson": "stationary load"}.get(arrival, arrival)
        title = (
            f"Dynamic workload ({pretty}, {rate_per_pe:g} QPS/PE mean, "
            f"{duration:g} s, {timeline_window:g} s windows)"
        )
    return ScenarioSpec(
        name=name,
        title=title,
        x_label="# PE",
        sweeps=(sweep,),
        max_simulated_time=duration,
        extra_tables=(render_timeline_table,),
    )


def build_mmpp_spec(**kwargs) -> ScenarioSpec:
    """The bursty variant of the dynamic scenario (2-state MMPP arrivals)."""
    kwargs.setdefault("arrival", "mmpp")
    kwargs.setdefault("arrival_params", BURST_PARAMS)
    kwargs.setdefault("name", "dynamic-mmpp")
    return build_spec(**kwargs)


register_scenario("dynamic", build_spec)
register_scenario("dynamic-mmpp", build_mmpp_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("dynamic", ...)``."""
    return run_scenario("dynamic", make_runner(workers=workers, cache=cache), **kwargs)
