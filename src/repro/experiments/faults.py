"""Fault-injection scenario: strategies under failures and stragglers.

The paper's experiments assume a fixed, healthy processor pool.  This
scenario exercises the PR 8 fault-injection subsystem
(:mod:`repro.faults`): the same homogeneous mixed workload is run clean,
through a crash-and-recover cycle, and against a straggler (one PE
temporarily degraded to a quarter of its speed), for a dynamic
load-balancing strategy (OPT-IO-CPU) against a tuned static baseline.

Named fault plans (injected at t=15 of a 60 s run):

* ``none`` -- the control: no fault plan at all.  Byte-identical to a run
  of the pre-fault code path (the empty plan constructs no injector).
* ``crash`` -- PE 1 crashes at 15 s and recovers at 30 s.  In-flight work
  on the dead PE aborts and resubmits after recovery; the dynamic strategy
  routes around the hole while the static baseline keeps a degree tuned
  for the full pool.
* ``straggler`` -- PE 1 runs at 0.25x CPU *and* disk speed for 20 s.  The
  load-aware strategy down-weights the slow PE (its
  ``speed_factor``-scaled rank sinks); the static baseline keeps placing
  work on it.  At this homogeneous operating point the tuned static
  baseline keeps its absolute lead (cf. the PR 3 finding), but degrades
  more relative to its own clean run than OPT-IO-CPU does.

The headline table reports end-of-run means; the recovery-curve extra
table renders the per-window join response time (the divergence between
dynamic and static shows up in the windows overlapping the fault), and the
availability table shows the per-window processor availability with the
injected anomaly windows labelled.  ``--export csv|json`` writes the
availability/anomaly fields on every ``row_type="window"`` row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.faults.plan import FailuresEntry, FaultEvent, encode_failures
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = [
    "run",
    "build_spec",
    "render_recovery_table",
    "render_availability_table",
    "STRATEGIES",
    "FAULT_PLANS",
]

#: A dynamic (load-aware) strategy against a tuned static baseline -- the
#: pair whose divergence under faults is the point of the scenario.
STRATEGIES = ("OPT-IO-CPU", "psu_opt+RANDOM")

#: Named fault plans, all targeting PE 1 at t=15 of the default 60 s run
#: (late enough for the system to reach steady state, early enough to watch
#: the recovery inside the run).
FAULT_PLANS: Tuple[Tuple[str, Optional[FailuresEntry]], ...] = (
    ("none", None),
    ("crash", encode_failures([FaultEvent(time=15.0, kind="pe_crash", pe=1, duration=15.0)])),
    (
        "straggler",
        encode_failures([FaultEvent(time=15.0, kind="degrade", pe=1, factor=0.25, duration=20.0)]),
    ),
)


def _columns(result: ExperimentResult) -> Dict[str, object]:
    """Curve label -> timeline, in series order (x-qualified when needed)."""
    columns: Dict[str, object] = {}
    multiple_x = len(result.x_values()) > 1
    for series in result.series_names():
        for point in result.series(series):
            if point.result.timeline is None:
                continue
            label = f"{series} (x={point.x:g})" if multiple_x else series
            columns.setdefault(label, point.result.timeline)
    return columns


def render_recovery_table(result: ExperimentResult) -> str:
    """Per-window join response time (ms), ``--`` when nothing completed.

    This is the recovery curve: read a faulted column top to bottom and the
    response-time spike of the windows overlapping the fault -- and how many
    windows it takes to drain back to the clean baseline -- is the
    strategy's recovery behaviour.  Windows in which no join completed
    render as ``--`` (a saturated or halted window has no mean, not a zero
    mean).
    """
    columns = _columns(result)
    if not columns:
        return "(no timeline data)"
    rows: Dict[Tuple[float, float], Dict[str, str]] = {}
    for label, timeline in columns.items():
        for window in timeline:
            # Guard the no-completion window: its join_rt_mean is a filler
            # 0.0, not a measurement -- render it as missing.
            cell = f"{window.join_rt_mean * 1e3:.1f}" if window.joins_completed else "--"
            rows.setdefault((window.start, window.end), {})[label] = cell
    labels = list(columns)
    width = max([12] + [len(label) + 2 for label in labels])
    header = f"{'window':>16} | " + " | ".join(f"{label:>{width}}" for label in labels)
    lines = [f"{result.title} -- join response time per window (ms)", header, "-" * len(header)]
    for (start, end) in sorted(rows):
        cells = rows[(start, end)]
        rendered = " | ".join(
            f"{cells[label]:>{width}}" if label in cells else " " * width for label in labels
        )
        lines.append(f"[{start:6.1f},{end:6.1f}) | {rendered}")
    return "\n".join(lines)


def render_availability_table(result: ExperimentResult) -> str:
    """Per-window processor availability, with injected anomalies listed.

    Cells are the fraction of the expected pool alive over the window
    (1.00 on clean runs); the trailing block lists, per curve, the windows
    an injected anomaly overlapped and its ``kind:peN`` label.
    """
    columns = _columns(result)
    if not columns:
        return "(no timeline data)"
    rows: Dict[Tuple[float, float], Dict[str, str]] = {}
    anomalies: Dict[str, List[str]] = {}
    for label, timeline in columns.items():
        for window in timeline:
            rows.setdefault((window.start, window.end), {})[label] = f"{window.availability:.2f}"
            if window.anomaly:
                anomalies.setdefault(label, []).append(
                    f"[{window.start:g},{window.end:g}) {window.anomaly}"
                )
    labels = list(columns)
    width = max([12] + [len(label) + 2 for label in labels])
    header = f"{'window':>16} | " + " | ".join(f"{label:>{width}}" for label in labels)
    lines = [f"{result.title} -- processor availability per window", header, "-" * len(header)]
    for (start, end) in sorted(rows):
        cells = rows[(start, end)]
        rendered = " | ".join(
            f"{cells[label]:>{width}}" if label in cells else " " * width for label in labels
        )
        lines.append(f"[{start:6.1f},{end:6.1f}) | {rendered}")
    if anomalies:
        lines.append("anomaly windows:")
        for label in labels:
            if label in anomalies:
                lines.append(f"  {label}: " + "; ".join(anomalies[label]))
    return "\n".join(lines)


def _entries(names: Sequence[str]) -> Tuple[Optional[FailuresEntry], ...]:
    table = dict(FAULT_PLANS)
    unknown = [name for name in names if name not in table]
    if unknown:
        raise ValueError(f"unknown fault plan(s) {unknown}; expected {[n for n, _ in FAULT_PLANS]}")
    return tuple(table[name] for name in names)


def build_spec(
    system_sizes: Sequence[int] = (8,),
    strategies: Sequence[str] = STRATEGIES,
    fault_names: Sequence[str] = ("none", "crash", "straggler"),
    rate_per_pe: float = 0.25,
    timeline_window: float = 5.0,
    max_simulated_time: Optional[float] = None,
    measured_joins: Optional[int] = None,  # accepted for CLI symmetry; unused
) -> ScenarioSpec:
    """Declare the fault-injection scenario as a spec.

    One timeline sweep: every strategy crossed with every named fault plan
    (the ``failures`` axis), on a homogeneous pool.  Timeline points run
    for ``max_simulated_time`` simulated seconds (default 60 s -- the plan
    times above are tuned to that horizon), binning metrics every
    ``timeline_window`` seconds.
    """
    del measured_joins  # timeline runs have a duration, not a join target
    duration = 60.0 if max_simulated_time is None else max_simulated_time
    sweep = Sweep(
        kind="timeline",
        scenario="homogeneous",
        strategies=tuple(strategies),
        system_sizes=tuple(system_sizes),
        rates=(rate_per_pe,),
        timeline_window=timeline_window,
        failures=_entries(fault_names),
        series="{strategy} [{failures}]",
    )
    return ScenarioSpec(
        name="faults",
        title=(
            f"Fault injection: crash-and-recover and straggler vs clean run "
            f"({rate_per_pe:g} QPS/PE, {duration:g} s, {timeline_window:g} s windows)"
        ),
        x_label="# PE",
        sweeps=(sweep,),
        max_simulated_time=duration,
        extra_tables=(render_recovery_table, render_availability_table),
    )


register_scenario("faults", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("faults", ...)``."""
    return run_scenario("faults", make_runner(workers=workers, cache=cache), **kwargs)
