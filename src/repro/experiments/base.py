"""Common infrastructure for reproducing the paper's experiments.

Every figure of the evaluation section is expressed as a *sweep*: a set of
(strategy, x-value) points, each of which is one simulation run summarised by
a :class:`~repro.simulation.results.SimulationResult`.  The helpers here run
such points, collect them into an :class:`ExperimentResult` and format the
textual tables that stand in for the paper's plots.

Run length defaults are deliberately modest so that the full benchmark suite
finishes in minutes; they can be scaled with the ``REPRO_BENCH_JOINS`` and
``REPRO_BENCH_TIME_LIMIT`` environment variables or the ``measured_joins`` /
``max_simulated_time`` arguments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.config.parameters import SystemConfig
from repro.simulation.driver import SimulationDriver
from repro.simulation.results import SimulationResult
from repro.workload.generator import WorkloadSpec

__all__ = [
    "ExperimentPoint",
    "ExperimentResult",
    "default_measured_joins",
    "default_time_limit",
    "run_point",
    "run_single_user_point",
    "format_table",
]

#: System sizes used throughout the paper's multi-user experiments.
PAPER_SYSTEM_SIZES = (10, 20, 40, 60, 80)


def default_measured_joins(fallback: int = 40) -> int:
    """Number of measured join completions per point (env-overridable).

    Unreadable ``REPRO_BENCH_JOINS`` values fall back to ``fallback``; the
    result is always clamped to at least 5 so a negative or tiny value (from
    either source) cannot produce a meaningless measurement phase.
    """
    try:
        value = int(os.environ.get("REPRO_BENCH_JOINS", fallback))
    except ValueError:
        value = fallback
    return max(5, value)


def default_time_limit(fallback: float = 120.0) -> float:
    """Simulated-time cap per point in seconds (env-overridable).

    Unreadable or non-positive ``REPRO_BENCH_TIME_LIMIT`` values fall back
    to ``fallback`` (itself guarded against non-positive values).
    """
    try:
        value = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", fallback))
    except ValueError:
        value = float(fallback)
    if value <= 0:
        value = float(fallback)
    return value if value > 0 else 120.0


@dataclass
class ExperimentPoint:
    """One simulated point of one curve of one figure."""

    figure: str
    series: str
    x: float
    result: SimulationResult

    @property
    def response_time_ms(self) -> float:
        return self.result.join_response_time_ms


@dataclass
class ExperimentResult:
    """All points of one reproduced figure."""

    figure: str
    title: str
    x_label: str
    points: List[ExperimentPoint] = field(default_factory=list)

    def add(self, point: ExperimentPoint) -> None:
        self.points.append(point)

    def series_names(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            if point.series not in names:
                names.append(point.series)
        return names

    def x_values(self) -> List[float]:
        values: List[float] = []
        for point in self.points:
            if point.x not in values:
                values.append(point.x)
        return sorted(values)

    def series(self, name: str) -> List[ExperimentPoint]:
        return sorted((p for p in self.points if p.series == name), key=lambda p: p.x)

    def value(self, series: str, x: float) -> Optional[ExperimentPoint]:
        for point in self.points:
            if point.series == series and point.x == x:
                return point
        return None

    def table(self, metric: Callable[[ExperimentPoint], float] | None = None,
              unit: str = "ms") -> str:
        """Text table: one row per x value, one column per series."""
        metric = metric or (lambda point: point.response_time_ms)
        return format_table(self, metric, unit)

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat row dictionaries (series, x, and the full result dict)."""
        rows = []
        for point in self.points:
            row: Dict[str, object] = {"figure": self.figure, "series": point.series, "x": point.x}
            row.update(point.result.report_dict())
            rows.append(row)
        return rows


def format_table(result: ExperimentResult, metric, unit: str) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    series_names = result.series_names()
    width = max(12, *(len(name) + 2 for name in series_names)) if series_names else 12
    header = f"{result.title}\n{result.x_label:>10} | " + " | ".join(
        f"{name:>{width}}" for name in series_names
    )
    lines = [header, "-" * len(header.splitlines()[-1])]
    for x in result.x_values():
        cells = []
        for name in series_names:
            point = result.value(name, x)
            cells.append(f"{metric(point):>{width}.1f}" if point is not None else " " * width)
        x_text = f"{x:g}"
        lines.append(f"{x_text:>10} | " + " | ".join(cells))
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def run_point(
    config: SystemConfig,
    strategy: str,
    measured_joins: Optional[int] = None,
    warmup_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    spec: Optional[WorkloadSpec] = None,
) -> SimulationResult:
    """Run one multi-user simulation point."""
    measured = measured_joins if measured_joins is not None else default_measured_joins()
    warmup = warmup_joins if warmup_joins is not None else max(5, measured // 5)
    limit = max_simulated_time if max_simulated_time is not None else default_time_limit()
    driver = SimulationDriver(config, strategy=strategy)
    return driver.run_multi_user(
        spec=spec,
        warmup_joins=warmup,
        measured_joins=measured,
        max_simulated_time=limit,
    )


def run_single_user_point(
    config: SystemConfig,
    strategy: str = "psu_opt+RANDOM",
    num_queries: int = 5,
) -> SimulationResult:
    """Run one single-user (one query at a time) baseline point."""
    driver = SimulationDriver(config, strategy=strategy)
    return driver.run_single_user(num_queries=num_queries)
