"""Common infrastructure for reproducing the paper's experiments.

Every figure of the evaluation section is expressed as a *sweep*: a set of
(strategy, x-value) points, each of which is one simulation run summarised by
a :class:`~repro.simulation.results.SimulationResult`.  The helpers here run
such points, collect them into an :class:`ExperimentResult` and format the
textual tables that stand in for the paper's plots.

Run length defaults are deliberately modest so that the full benchmark suite
finishes in minutes; they can be scaled with the ``REPRO_BENCH_JOINS`` and
``REPRO_BENCH_TIME_LIMIT`` environment variables or the ``measured_joins`` /
``max_simulated_time`` arguments.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from repro.config.parameters import SystemConfig
from repro.simulation.driver import SimulationDriver
from repro.simulation.results import AggregatedResult, SimulationResult, aggregate_results
from repro.workload.generator import WorkloadSpec

__all__ = [
    "ExperimentPoint",
    "ExperimentResult",
    "AggregatedPoint",
    "AggregatedExperimentResult",
    "default_measured_joins",
    "default_time_limit",
    "make_runner",
    "run_scenario",
    "run_point",
    "run_single_user_point",
    "format_table",
]

#: Tolerance for treating two x coordinates as the same table row.  x values
#: computed from float axes (e.g. ``selectivity * 100.0``) can differ in the
#: last ulp between expansion paths; exact equality would split one row in
#: two.
X_REL_TOL = 1e-9
X_ABS_TOL = 1e-12


def _same_x(left: float, right: float) -> bool:
    return math.isclose(left, right, rel_tol=X_REL_TOL, abs_tol=X_ABS_TOL)

#: System sizes used throughout the paper's multi-user experiments.
PAPER_SYSTEM_SIZES = (10, 20, 40, 60, 80)


def default_measured_joins(fallback: int = 40) -> int:
    """Number of measured join completions per point (env-overridable).

    Unreadable ``REPRO_BENCH_JOINS`` values fall back to ``fallback``; the
    result is always clamped to at least 5 so a negative or tiny value (from
    either source) cannot produce a meaningless measurement phase.
    """
    try:
        value = int(os.environ.get("REPRO_BENCH_JOINS", fallback))
    except ValueError:
        value = fallback
    return max(5, value)


def default_time_limit(fallback: float = 120.0) -> float:
    """Simulated-time cap per point in seconds (env-overridable).

    Unreadable or non-positive ``REPRO_BENCH_TIME_LIMIT`` values fall back
    to ``fallback``, which callers must keep positive.
    """
    if fallback <= 0:
        raise ValueError(f"fallback time limit must be positive, got {fallback}")
    try:
        value = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", fallback))
    except ValueError:
        value = float(fallback)
    return value if value > 0 else float(fallback)


@dataclass
class ExperimentPoint:
    """One simulated point of one curve of one figure."""

    figure: str
    series: str
    x: float
    result: SimulationResult
    replicate: int = 0

    @property
    def response_time_ms(self) -> float:
        return self.result.join_response_time_ms


@dataclass
class ExperimentResult:
    """All points of one reproduced figure.

    Replicated sweeps contribute several points per (series, x) coordinate,
    distinguished by ``replicate``; :meth:`aggregate` folds them into an
    :class:`AggregatedExperimentResult` with mean / stddev / 95 % CI per
    coordinate.
    """

    figure: str
    title: str
    x_label: str
    points: List[ExperimentPoint] = field(default_factory=list)

    def add(self, point: ExperimentPoint) -> None:
        self.points.append(point)

    def series_names(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            if point.series not in names:
                names.append(point.series)
        return names

    def x_values(self) -> List[float]:
        values: List[float] = []
        for point in self.points:
            if not any(_same_x(point.x, value) for value in values):
                values.append(point.x)
        return sorted(values)

    def series(self, name: str) -> List[ExperimentPoint]:
        return sorted((p for p in self.points if p.series == name), key=lambda p: p.x)

    def value(self, series: str, x: float) -> Optional[ExperimentPoint]:
        """First point of ``series`` at ``x`` (replicate 0 for replicated runs)."""
        for point in self.points:
            if point.series == series and _same_x(point.x, x):
                return point
        return None

    def values(self, series: str, x: float) -> List[ExperimentPoint]:
        """Every point (all replicates) of ``series`` at ``x``."""
        return [p for p in self.points if p.series == series and _same_x(p.x, x)]

    @property
    def has_replicates(self) -> bool:
        return any(getattr(point, "replicate", 0) for point in self.points)

    def aggregate(self) -> "AggregatedExperimentResult":
        """Fold replicates into one aggregated point per (series, x).

        Points are grouped with the same x tolerance as the table renderer
        and folded in insertion order, so the aggregate is independent of
        worker count (the runner preserves expansion order) and identical
        whether or not results crossed a process boundary.
        """
        groups: List[List[object]] = []  # [series, x, [results]]
        for point in self.points:
            for group in groups:
                if group[0] == point.series and _same_x(point.x, group[1]):
                    group[2].append(point.result)
                    break
            else:
                groups.append([point.series, point.x, [point.result]])
        aggregated = AggregatedExperimentResult(
            figure=self.figure, title=self.title, x_label=self.x_label
        )
        for series, x, results in groups:
            aggregated.add(
                AggregatedPoint(
                    figure=self.figure,
                    series=series,
                    x=x,
                    aggregate=aggregate_results(results),
                )
            )
        return aggregated

    def table(self, metric: Callable[[ExperimentPoint], float] | None = None,
              unit: str = "ms") -> str:
        """Text table: one row per x value, one column per series."""
        metric = metric or (lambda point: point.response_time_ms)
        return format_table(self, metric, unit)

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat row dictionaries (series, x, replicate and the result dict)."""
        rows = []
        for point in self.points:
            row: Dict[str, object] = {
                "figure": self.figure,
                "series": point.series,
                "x": point.x,
                "row_type": "replicate",
                "replicate": getattr(point, "replicate", 0),
            }
            row.update(point.result.report_dict())
            rows.append(row)
        return rows


@dataclass
class AggregatedPoint:
    """Mean / spread of all replicates of one (series, x) coordinate.

    Quacks like an :class:`ExperimentPoint` (``series``, ``x``, ``result``,
    ``response_time_ms``) so the table renderer and the per-figure extra
    tables work unchanged on aggregated results; ``result`` is the
    field-wise mean :class:`SimulationResult`.
    """

    figure: str
    series: str
    x: float
    aggregate: AggregatedResult

    @property
    def n(self) -> int:
        return self.aggregate.n

    @property
    def result(self) -> SimulationResult:
        return self.aggregate.mean

    @property
    def response_time_ms(self) -> float:
        return self.result.join_response_time_ms

    @property
    def response_time_ci_ms(self) -> float:
        """95 % confidence half-width of the mean response time, in ms."""
        return self.aggregate.ci95.get("join_response_time", 0.0) * 1e3

    @property
    def response_time_std_ms(self) -> float:
        return self.aggregate.stddev.get("join_response_time", 0.0) * 1e3


@dataclass
class AggregatedExperimentResult(ExperimentResult):
    """One aggregated point per (series, x) of a replicated figure."""

    points: List[AggregatedPoint] = field(default_factory=list)

    def table(self, metric: Callable[[AggregatedPoint], float] | None = None,
              unit: str = "ms",
              ci_metric: Callable[[AggregatedPoint], float] | None = None) -> str:
        """Text table with ``mean ± ci`` cells.

        The default metric renders the mean response time with its 95 % CI
        half-width; a custom ``metric`` without a matching ``ci_metric``
        renders plain mean cells.
        """
        if metric is None:
            metric = lambda point: point.response_time_ms  # noqa: E731
            if ci_metric is None:
                ci_metric = lambda point: point.response_time_ci_ms  # noqa: E731
        return format_table(self, metric, unit, ci_metric=ci_metric)

    def to_rows(self) -> List[Dict[str, object]]:
        """Aggregate rows: mean result plus spread of the headline metric."""
        rows = []
        for point in self.points:
            row: Dict[str, object] = {
                "figure": self.figure,
                "series": point.series,
                "x": point.x,
                "row_type": "aggregate",
                "n": point.n,
            }
            row.update(point.result.report_dict())
            # Count fields pass through report_dict unrounded; their
            # replicate means are fractional, so cap the spurious precision.
            row["joins_completed"] = round(point.result.joins_completed, 3)
            row["oltp_completed"] = round(point.result.oltp_completed, 3)
            row["join_rt_std_ms"] = round(point.response_time_std_ms, 3)
            row["join_rt_ci95_ms"] = round(point.response_time_ci_ms, 3)
            rows.append(row)
        return rows


def format_table(result: ExperimentResult, metric, unit: str, ci_metric=None) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table.

    With ``ci_metric`` every populated cell reads ``mean ± ci`` (95 %
    confidence half-width); without it cells are plain metric values.
    """
    series_names = result.series_names()
    x_values = result.x_values()
    cell_rows: List[List[str]] = []
    for x in x_values:
        cells = []
        for name in series_names:
            point = result.value(name, x)
            if point is None:
                cells.append("")
            elif ci_metric is not None:
                cells.append(f"{metric(point):.1f} ± {ci_metric(point):.1f}")
            else:
                cells.append(f"{metric(point):.1f}")
        cell_rows.append(cells)
    widths = [12] + [len(name) + 2 for name in series_names]
    widths += [len(cell) for cells in cell_rows for cell in cells]
    width = max(widths)
    header = f"{result.title}\n{result.x_label:>10} | " + " | ".join(
        f"{name:>{width}}" for name in series_names
    )
    lines = [header, "-" * len(header.splitlines()[-1])]
    for x, cells in zip(x_values, cell_rows):
        x_text = f"{x:g}"
        lines.append(f"{x_text:>10} | " + " | ".join(f"{cell:>{width}}" for cell in cells))
    footer = f"(values in {unit})"
    if ci_metric is not None:
        footer = f"(values in {unit}; mean ± 95% CI across replicates)"
    lines.append(footer)
    return "\n".join(lines)


def make_runner(
    config: Optional["RunnerConfig"] = None,
    workers: Optional[int] = 1,
    cache: Optional["ResultCache"] = None,
    queue_dir: Optional[Union[str, "os.PathLike"]] = None,
    queue_timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
):
    """Select the execution driver for a scenario spec.

    The preferred call passes one :class:`~repro.runner.RunnerConfig`; the
    legacy keyword form (``workers``/``cache``/``queue_dir``/...) builds an
    equivalent config and is kept for existing callers.  Without a queue
    target this is a local :class:`~repro.runner.ParallelRunner` over
    ``workers`` processes; with a queue directory or coordinator URL it is
    a :class:`~repro.runner.DistributedRunner` coordinating independent
    ``repro-lb worker`` processes (the backend's own result store replaces
    ``cache``; ``workers`` is ignored).  Either driver folds results in
    expansion order, so the choice never changes tables, aggregates or
    exports.
    """
    if config is None:
        from repro.runner import RunnerConfig

        config = RunnerConfig(
            workers=workers,
            cache=cache,
            # An explicit cache object means "exactly this cache" -- a None
            # cache then disables caching rather than falling back to the
            # default directory, matching the historical keyword form.
            no_cache=cache is None,
            queue_dir=queue_dir,
            queue_timeout=queue_timeout,
            max_retries=max_attempts,
        )
    return config.make_runner()


def _resolve_runner(runner=None):
    """A runner from ``None`` (serial default), a config, or a runner."""
    from repro.runner import RunnerConfig

    if runner is None:
        return make_runner()
    if isinstance(runner, RunnerConfig):
        return runner.make_runner()
    return runner  # an already-built runner (anything with .run)


def run_scenario(
    name: str,
    runner=None,
    replicates: int = 1,
    **build_kwargs,
):
    """Run a registered scenario end to end: the generic entry point.

    Looks ``name`` up in the scenario registry, builds its spec with
    ``build_kwargs`` (the builder's own axes: ``system_sizes``,
    ``strategies``, ``max_simulated_time``, ...), applies ``replicates``
    and runs it through ``runner`` -- ``None`` for the serial default, a
    :class:`~repro.runner.RunnerConfig` describing any driver, or a
    pre-built runner.  The per-figure ``run(...)`` wrappers in
    :mod:`repro.experiments` are one-line deprecated aliases of this.
    """
    from repro.runner import build_scenario

    spec = build_scenario(name, **build_kwargs)
    if replicates > 1:
        spec = spec.with_replicates(replicates)
    return _resolve_runner(runner).run(spec)


def run_point(
    config: SystemConfig,
    strategy: str,
    measured_joins: Optional[int] = None,
    warmup_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    spec: Optional[WorkloadSpec] = None,
) -> SimulationResult:
    """Run one multi-user simulation point."""
    measured = measured_joins if measured_joins is not None else default_measured_joins()
    warmup = warmup_joins if warmup_joins is not None else max(5, measured // 5)
    limit = max_simulated_time if max_simulated_time is not None else default_time_limit()
    driver = SimulationDriver(config, strategy=strategy)
    return driver.run_multi_user(
        spec=spec,
        warmup_joins=warmup,
        measured_joins=measured,
        max_simulated_time=limit,
    )


def run_single_user_point(
    config: SystemConfig,
    strategy: str = "psu_opt+RANDOM",
    num_queries: int = 5,
) -> SimulationResult:
    """Run one single-user (one query at a time) baseline point."""
    driver = SimulationDriver(config, strategy=strategy)
    return driver.run_single_user(num_queries=num_queries)
