"""Fig. 7: memory/disk-bound environment.

The buffer per PE is reduced by a factor of 10 and only one disk per PE is
available for temporary files; the arrival rate is lowered (0.05 and 0.025
QPS per PE) so that the CPU utilisation stays low while buffers and the
temporary-file disk become the bottleneck.  The experiment compares
MIN-IO-SUOPT (which raises the degree of parallelism with the system size to
minimise overflow I/O) against pmu-cpu + LUM (which does not), and also
reports the average chosen degree of join parallelism, as the annotations in
the paper's figure do.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    ExperimentPoint,
    ExperimentResult,
    run_point,
    run_single_user_point,
)
from repro.experiments.scenarios import memory_bound_config

__all__ = ["run", "STRATEGIES", "SYSTEM_SIZES", "ARRIVAL_RATES"]

STRATEGIES = ("pmu_cpu+LUM", "MIN-IO-SUOPT")
SYSTEM_SIZES = (20, 30, 40, 60, 80)
ARRIVAL_RATES = (0.05, 0.025)


def run(
    system_sizes: Sequence[int] = SYSTEM_SIZES,
    arrival_rates: Sequence[float] = ARRIVAL_RATES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    include_single_user: bool = True,
) -> ExperimentResult:
    """Reproduce Fig. 7 (memory-bound environment, 1 % selectivity)."""
    experiment = ExperimentResult(
        figure="figure7",
        title="Fig. 7: memory-bound environment (buffer/10, 1 temp disk per PE)",
        x_label="# PE",
    )
    for num_pe in system_sizes:
        for rate in arrival_rates:
            config = memory_bound_config(num_pe, arrival_rate_per_pe=rate)
            for strategy in strategies:
                result = run_point(
                    config,
                    strategy,
                    measured_joins=measured_joins,
                    max_simulated_time=max_simulated_time,
                )
                experiment.add(
                    ExperimentPoint(
                        figure="figure7",
                        series=f"{strategy} @{rate:g} QPS/PE",
                        x=num_pe,
                        result=result,
                    )
                )
        if include_single_user:
            config = memory_bound_config(num_pe)
            for strategy in strategies:
                baseline = run_single_user_point(config, strategy=strategy)
                experiment.add(
                    ExperimentPoint(
                        figure="figure7",
                        series=f"{strategy} single-user",
                        x=num_pe,
                        result=baseline,
                    )
                )
    return experiment


def degree_table(experiment: ExperimentResult) -> str:
    """The average chosen degree of join parallelism (Fig. 7 annotations)."""
    return experiment.table(metric=lambda point: point.result.average_degree, unit="join processors")
