"""Fig. 7: memory/disk-bound environment.

The buffer per PE is reduced by a factor of 10 and only one disk per PE is
available for temporary files; the arrival rate is lowered (0.05 and 0.025
QPS per PE) so that the CPU utilisation stays low while buffers and the
temporary-file disk become the bottleneck.  The experiment compares
MIN-IO-SUOPT (which raises the degree of parallelism with the system size to
minimise overflow I/O) against pmu-cpu + LUM (which does not), and also
reports the average chosen degree of join parallelism, as the annotations in
the paper's figure do.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = ["run", "build_spec", "degree_table", "STRATEGIES", "SYSTEM_SIZES", "ARRIVAL_RATES"]

STRATEGIES = ("pmu_cpu+LUM", "MIN-IO-SUOPT")
SYSTEM_SIZES = (20, 30, 40, 60, 80)
ARRIVAL_RATES = (0.05, 0.025)


def degree_table(experiment: ExperimentResult) -> str:
    """The average chosen degree of join parallelism (Fig. 7 annotations)."""
    return experiment.table(metric=lambda point: point.result.average_degree, unit="join processors")


def build_spec(
    system_sizes: Sequence[int] = SYSTEM_SIZES,
    arrival_rates: Sequence[float] = ARRIVAL_RATES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    include_single_user: bool = True,
) -> ScenarioSpec:
    """Declare Fig. 7 as a scenario spec."""
    sweeps = [
        Sweep(
            kind="multi",
            scenario="memory-bound",
            strategies=tuple(strategies),
            system_sizes=tuple(system_sizes),
            rates=tuple(arrival_rates),
            series="{strategy} @{rate:g} QPS/PE",
        )
    ]
    if include_single_user:
        sweeps.append(
            Sweep(
                kind="single",
                scenario="memory-bound",
                strategies=tuple(strategies),
                system_sizes=tuple(system_sizes),
                series="{strategy} single-user",
            )
        )
    return ScenarioSpec(
        name="figure7",
        title="Fig. 7: memory-bound environment (buffer/10, 1 temp disk per PE)",
        x_label="# PE",
        sweeps=tuple(sweeps),
        measured_joins=measured_joins,
        max_simulated_time=max_simulated_time,
        extra_tables=(degree_table,),
    )


register_scenario("figure7", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("figure7", ...)``."""
    return run_scenario("figure7", make_runner(workers=workers, cache=cache), **kwargs)
