"""Fig. 6: dynamic degree of join parallelism, homogeneous workload.

Same workload as Fig. 5 (0.25 QPS/PE, 1 % selectivity) but with strategies
that determine the number of join processors dynamically: the isolated
pmu-cpu policy (with RANDOM or LUM placement) and the three integrated
strategies MIN-IO, MIN-IO-SUOPT and OPT-IO-CPU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, PAPER_SYSTEM_SIZES, make_runner, run_scenario
from repro.runner import ScenarioSpec, Sweep, register_scenario

__all__ = ["run", "build_spec", "STRATEGIES"]

STRATEGIES = (
    "MIN-IO",
    "MIN-IO-SUOPT",
    "pmu_cpu+RANDOM",
    "pmu_cpu+LUM",
    "OPT-IO-CPU",
)


def build_spec(
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    include_single_user: bool = True,
) -> ScenarioSpec:
    """Declare Fig. 6 as a scenario spec."""
    sweeps = [
        Sweep(
            kind="multi",
            scenario="homogeneous",
            strategies=tuple(strategies),
            system_sizes=tuple(system_sizes),
        )
    ]
    if include_single_user:
        sweeps.append(
            Sweep(
                kind="single",
                scenario="homogeneous",
                strategies=("psu_opt+RANDOM",),
                system_sizes=tuple(system_sizes),
                series="single-user (psu_opt)",
                num_queries=5,
            )
        )
    return ScenarioSpec(
        name="figure6",
        title="Fig. 6: dynamic degree of join parallelism (0.25 QPS/PE, 1% selectivity)",
        x_label="# PE",
        sweeps=tuple(sweeps),
        measured_joins=measured_joins,
        max_simulated_time=max_simulated_time,
    )


register_scenario("figure6", build_spec)


def run(
    workers: Optional[int] = 1,
    cache=None,
    **kwargs,
) -> ExperimentResult:
    """Deprecated alias for ``run_scenario("figure6", ...)``."""
    return run_scenario("figure6", make_runner(workers=workers, cache=cache), **kwargs)
