"""Fig. 6: dynamic degree of join parallelism, homogeneous workload.

Same workload as Fig. 5 (0.25 QPS/PE, 1 % selectivity) but with strategies
that determine the number of join processors dynamically: the isolated
pmu-cpu policy (with RANDOM or LUM placement) and the three integrated
strategies MIN-IO, MIN-IO-SUOPT and OPT-IO-CPU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import (
    PAPER_SYSTEM_SIZES,
    ExperimentPoint,
    ExperimentResult,
    run_point,
    run_single_user_point,
)
from repro.experiments.scenarios import homogeneous_config

__all__ = ["run", "STRATEGIES"]

STRATEGIES = (
    "MIN-IO",
    "MIN-IO-SUOPT",
    "pmu_cpu+RANDOM",
    "pmu_cpu+LUM",
    "OPT-IO-CPU",
)


def run(
    system_sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    strategies: Sequence[str] = STRATEGIES,
    measured_joins: Optional[int] = None,
    max_simulated_time: Optional[float] = None,
    include_single_user: bool = True,
) -> ExperimentResult:
    """Reproduce Fig. 6 (response times in ms per strategy and system size)."""
    experiment = ExperimentResult(
        figure="figure6",
        title="Fig. 6: dynamic degree of join parallelism (0.25 QPS/PE, 1% selectivity)",
        x_label="# PE",
    )
    for num_pe in system_sizes:
        config = homogeneous_config(num_pe)
        for strategy in strategies:
            result = run_point(
                config,
                strategy,
                measured_joins=measured_joins,
                max_simulated_time=max_simulated_time,
            )
            experiment.add(
                ExperimentPoint(figure="figure6", series=strategy, x=num_pe, result=result)
            )
        if include_single_user:
            baseline = run_single_user_point(config, strategy="psu_opt+RANDOM")
            experiment.add(
                ExperimentPoint(
                    figure="figure6", series="single-user (psu_opt)", x=num_pe, result=baseline
                )
            )
    return experiment
