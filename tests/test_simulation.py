"""Integration tests: the full system executing joins and OLTP transactions."""

import pytest

from repro import (
    OltpConfig,
    ParallelSystem,
    SimulationDriver,
    SystemConfig,
    WorkloadSpec,
    make_strategy,
)
from repro.simulation.results import SimulationResult
from repro.workload import JoinQuery, OltpTransaction


def small_config(**overrides):
    return SystemConfig(num_pe=10, **overrides)


# -- ParallelSystem ----------------------------------------------------------------------
def test_system_builds_all_components():
    system = ParallelSystem(small_config(), strategy="OPT-IO-CPU")
    assert len(system.pes) == 10
    assert "A" in system.catalog
    assert "B" in system.catalog
    assert system.strategy.name == "OPT-IO-CPU"
    assert "OPT-IO-CPU" in system.describe()


def test_system_accepts_strategy_instance():
    strategy = make_strategy("pmu_cpu+LUM")
    system = ParallelSystem(small_config(), strategy=strategy)
    assert system.strategy is strategy


def test_system_rejects_unknown_transaction_type():
    from repro.workload import ScanQuery

    system = ParallelSystem(small_config())
    with pytest.raises(TypeError):
        system.submit(ScanQuery())


def test_single_join_query_completes():
    system = ParallelSystem(small_config(), strategy="psu_opt+RANDOM")
    query = JoinQuery(scan_selectivity=0.01)
    query.arrival_time = 0.0
    system.submit(query)
    system.env.run(until=30)
    assert query.completion_time is not None
    assert query.response_time > 0
    assert query.chosen_degree >= 1
    assert len(query.chosen_processors) == query.chosen_degree
    assert system.metrics.joins_completed == 1
    # All buffers are returned after the query finishes.
    assert all(pe.buffer.working_space_pages == 0 for pe in system.pes)
    # Read-only commit was used.
    assert system.commit_stats.one_phase_commits == 1


def test_single_oltp_transaction_completes():
    config = small_config(oltp=OltpConfig(placement="A"))
    system = ParallelSystem(config, strategy="OPT-IO-CPU")
    txn = OltpTransaction()
    txn.arrival_time = 0.0
    system.submit(txn)
    system.env.run(until=10)
    assert txn.completion_time is not None
    assert system.metrics.oltp_completed == 1
    home = system.pes[txn.home_pe]
    assert home.oltp_processed == 1
    assert home.buffer.oltp_pages > 0
    # OLTP runs on an A node under placement "A".
    assert txn.home_pe in config.a_node_ids


def test_locks_are_released_after_join():
    system = ParallelSystem(small_config(), strategy="psu_noIO+LUM")
    query = JoinQuery()
    system.submit(query)
    system.env.run(until=30)
    assert all(pe.locks.held_count() == 0 for pe in system.pes)
    assert all(pe.locks.waiting_count() == 0 for pe in system.pes)


def test_concurrent_joins_all_complete():
    system = ParallelSystem(small_config(), strategy="pmu_cpu+LUM")
    queries = [JoinQuery(arrival_time=0.05 * index) for index in range(5)]

    def submit_all():
        for query in queries:
            delay = query.arrival_time - system.env.now
            if delay > 0:
                yield system.env.timeout(delay)
            system.submit(query)

    system.env.process(submit_all())
    system.env.run(until=60)
    assert all(query.completion_time is not None for query in queries)
    assert system.metrics.joins_completed == 5
    assert system.metrics.join_response_times.mean > 0


# -- SimulationDriver -----------------------------------------------------------------------
def test_single_user_mode_runs_sequentially():
    driver = SimulationDriver(small_config(), strategy="psu_opt+RANDOM")
    result = driver.run_single_user(num_queries=3)
    assert result.mode == "single-user"
    assert result.joins_completed == 3
    assert result.join_response_time > 0
    # In single-user mode memory is plentiful: no temporary file I/O.
    assert result.average_overflow_pages == 0
    assert result.cpu_utilization < 0.5


def test_multi_user_mode_measures_after_warmup():
    driver = SimulationDriver(small_config(), strategy="OPT-IO-CPU")
    result = driver.run_multi_user(warmup_joins=2, measured_joins=10, max_simulated_time=60)
    assert result.mode == "multi-user"
    assert result.joins_completed >= 10
    assert result.join_response_time > 0
    assert 0 < result.cpu_utilization <= 1
    assert result.join_throughput > 0
    assert result.simulated_seconds > 0


def test_multi_user_mixed_workload_runs_oltp_and_joins():
    config = SystemConfig(
        num_pe=10,
        oltp=OltpConfig(placement="B", arrival_rate_per_node=50),
    )
    driver = SimulationDriver(config, strategy="OPT-IO-CPU")
    result = driver.run_multi_user(warmup_joins=2, measured_joins=8, max_simulated_time=60)
    assert result.oltp_completed > 0
    assert result.oltp_response_time > 0
    assert result.joins_completed >= 8


def test_multi_user_respects_time_limit():
    config = SystemConfig(num_pe=10)
    driver = SimulationDriver(config, strategy="psu_opt+RANDOM")
    result = driver.run_multi_user(warmup_joins=0, measured_joins=10_000, max_simulated_time=5.0)
    assert driver.env.now <= 5.0 + 1e-6
    assert result.joins_completed < 10_000


def test_result_serialisation_round_trip():
    driver = SimulationDriver(small_config(), strategy="pmu_cpu+LUM")
    result = driver.run_multi_user(warmup_joins=1, measured_joins=5, max_simulated_time=30)
    data = result.report_dict()
    assert data["strategy"] == "pmu_cpu+LUM"
    assert data["num_pe"] == 10
    assert data["join_rt_ms"] == pytest.approx(result.join_response_time * 1e3, rel=1e-3)
    assert "cpu_util" in data
    line = result.row()
    assert "pmu_cpu+LUM" in line
    # Lossless JSON round-trip (what the parallel runner and cache rely on).
    restored = SimulationResult.from_json(result.to_json())
    assert restored == result


def test_workload_spec_driven_run():
    config = SystemConfig(num_pe=10)
    driver = SimulationDriver(config, strategy="MIN-IO")
    spec = WorkloadSpec.homogeneous_join(config, arrival_rate_per_pe=0.1)
    result = driver.run_multi_user(spec=spec, warmup_joins=1, measured_joins=5, max_simulated_time=120)
    assert result.joins_completed >= 5
    assert result.average_degree >= 1


def test_strategies_differ_under_load():
    """Different strategies must actually produce different chosen degrees."""
    degrees = {}
    for name in ("psu_noIO+LUM", "psu_opt+RANDOM"):
        driver = SimulationDriver(SystemConfig(num_pe=20), strategy=name)
        result = driver.run_multi_user(warmup_joins=2, measured_joins=10, max_simulated_time=60)
        degrees[name] = result.average_degree
    assert degrees["psu_noIO+LUM"] < degrees["psu_opt+RANDOM"]
