"""Tests for the experiment harness (kept small: tiny runs, shape checks)."""

import pytest

from repro.experiments import (
    ExperimentPoint,
    ExperimentResult,
    figure1,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    render_parameter_table,
)
from repro.experiments.base import default_measured_joins, default_time_limit, run_point
from repro.experiments.figure7 import degree_table
from repro.experiments.figure8 import improvement_table
from repro.experiments.scenarios import (
    homogeneous_config,
    join_complexity_config,
    memory_bound_config,
    mixed_workload_config,
)
from repro.simulation.results import SimulationResult


def make_result(strategy="s", rt=0.5, degree=10.0):
    return SimulationResult(
        strategy=strategy,
        num_pe=20,
        mode="multi-user",
        simulated_seconds=10.0,
        joins_completed=5,
        join_response_time=rt,
        join_response_time_p95=rt * 1.5,
        join_response_time_ci=0.01,
        average_degree=degree,
        average_overflow_pages=0.0,
        average_memory_wait=0.0,
        cpu_utilization=0.5,
        disk_utilization=0.1,
        memory_utilization=0.2,
    )


# -- scenario builders ------------------------------------------------------------
def test_homogeneous_config_overrides_rate_and_selectivity():
    config = homogeneous_config(40, scan_selectivity=0.02, arrival_rate_per_pe=0.1)
    assert config.num_pe == 40
    assert config.join_query.scan_selectivity == 0.02
    assert config.join_query.arrival_rate_per_pe == 0.1
    assert config.oltp is None


def test_memory_bound_config_shrinks_buffer_and_disks():
    config = memory_bound_config(40)
    assert config.buffer.buffer_pages == 5
    assert config.disk.disks_per_pe == 1


def test_join_complexity_config_picks_rate_per_selectivity():
    fast = join_complexity_config(0.001)
    slow = join_complexity_config(0.05)
    assert fast.join_query.arrival_rate_per_pe > slow.join_query.arrival_rate_per_pe
    custom = join_complexity_config(0.01, arrival_rate_per_pe=0.9)
    assert custom.join_query.arrival_rate_per_pe == 0.9


def test_mixed_workload_config_sets_oltp_and_disks():
    config = mixed_workload_config(40, oltp_placement="B")
    assert config.oltp is not None
    assert config.oltp.placement == "B"
    assert config.disk.disks_per_pe == 5
    assert config.join_query.arrival_rate_per_pe == pytest.approx(0.075)


# -- experiment result container -----------------------------------------------------
def test_experiment_result_table_and_lookup():
    experiment = ExperimentResult(figure="fx", title="demo", x_label="# PE")
    experiment.add(ExperimentPoint("fx", "A", 10, make_result("A", rt=0.1)))
    experiment.add(ExperimentPoint("fx", "A", 20, make_result("A", rt=0.2)))
    experiment.add(ExperimentPoint("fx", "B", 10, make_result("B", rt=0.3)))
    assert experiment.series_names() == ["A", "B"]
    assert experiment.x_values() == [10, 20]
    assert experiment.value("A", 20).result.join_response_time == pytest.approx(0.2)
    assert experiment.value("B", 20) is None
    table = experiment.table()
    assert "demo" in table
    assert "100.0" in table  # 0.1 s -> 100 ms
    rows = experiment.to_rows()
    assert len(rows) == 3
    assert rows[0]["figure"] == "fx"


def test_environment_overrides_for_run_length(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOINS", "17")
    monkeypatch.setenv("REPRO_BENCH_TIME_LIMIT", "33.5")
    assert default_measured_joins() == 17
    assert default_time_limit() == 33.5
    monkeypatch.setenv("REPRO_BENCH_JOINS", "not-a-number")
    assert default_measured_joins(23) == 23


# -- tiny end-to-end figure runs ---------------------------------------------------------
def test_figure1_analytic_curve_without_simulation():
    experiment = figure1.run(num_pe=40, degrees=(1, 8, 30), simulate=False)
    analytic = experiment.series("analytic model")
    assert [point.x for point in analytic] == [1, 8, 30]
    times = {p.x: p.result.join_response_time for p in analytic}
    assert times[8] < times[1]


def test_figure5_tiny_run_has_all_series():
    experiment = figure5.run(
        system_sizes=(10,),
        strategies=("psu_noIO+LUM", "psu_opt+RANDOM"),
        measured_joins=5,
        max_simulated_time=30,
        include_single_user=True,
    )
    assert set(experiment.series_names()) == {
        "psu_noIO+LUM",
        "psu_opt+RANDOM",
        "single-user (psu_opt)",
    }
    assert all(point.result.joins_completed > 0 for point in experiment.points)


def test_figure6_tiny_run():
    experiment = figure6.run(
        system_sizes=(10,),
        strategies=("OPT-IO-CPU",),
        measured_joins=5,
        max_simulated_time=30,
        include_single_user=False,
    )
    assert experiment.series_names() == ["OPT-IO-CPU"]
    assert experiment.points[0].result.average_degree >= 1


def test_figure7_tiny_run_and_degree_table():
    experiment = figure7.run(
        system_sizes=(20,),
        arrival_rates=(0.05,),
        strategies=("MIN-IO-SUOPT",),
        measured_joins=5,
        max_simulated_time=40,
        include_single_user=False,
    )
    table = degree_table(experiment)
    assert "join processors" in table
    assert experiment.points[0].result.average_degree >= 1


def test_figure8_improvement_table_contains_baseline():
    experiment = figure8.run(
        selectivities=(0.001,),
        strategies=("pmu_cpu+LUM",),
        num_pe=20,
        measured_joins=5,
        max_simulated_time=30,
    )
    assert "psu_opt+RANDOM" in experiment.series_names()
    text = improvement_table(experiment)
    assert "pmu_cpu+LUM" in text


def test_figure9_tiny_run_runs_oltp():
    experiment = figure9.run(
        oltp_placement="A",
        system_sizes=(10,),
        strategies=("OPT-IO-CPU",),
        measured_joins=4,
        max_simulated_time=30,
    )
    point = experiment.points[0]
    assert point.result.oltp_completed > 0
    assert experiment.figure == "figure9a"


def test_run_point_respects_measured_joins():
    result = run_point(homogeneous_config(10), "OPT-IO-CPU", measured_joins=5,
                       max_simulated_time=30)
    assert result.joins_completed >= 5


def test_parameter_table_rendering():
    text = render_parameter_table()
    assert "20 MIPS" in text
    assert "250000" in text
    assert "partial declustering (80% of #PE)" in text
