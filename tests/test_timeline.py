"""Tests for windowed timeline metrics, the timeline point kind and the
dynamic scenario family (perturbed sweeps ride along)."""

import json

import pytest

from repro.experiments.scenarios import homogeneous_config
from repro.metrics import Timeline, TimelineWindow, aggregate_timelines
from repro.runner import ParallelRunner, ResultCache, ScenarioSpec, Sweep, build_scenario
from repro.runner.runner import run_point_spec
from repro.runner.spec import DEFAULT_TIMELINE_WINDOW
from repro.simulation.driver import SimulationDriver
from repro.simulation.results import SimulationResult, aggregate_results


def tiny_timeline_sweep(**overrides):
    defaults = dict(
        kind="timeline",
        scenario="homogeneous",
        strategies=("OPT-IO-CPU",),
        system_sizes=(4,),
        rates=(0.25,),
        arrivals=("step",),
        arrival_params=(("surge_factor", 2.0), ("surge_start", 4.0), ("surge_end", 8.0)),
        timeline_window=2.0,
    )
    defaults.update(overrides)
    return Sweep(**defaults)


def tiny_spec(**sweep_overrides):
    return ScenarioSpec(
        name="tl",
        title="tiny timeline",
        x_label="# PE",
        sweeps=(tiny_timeline_sweep(**sweep_overrides),),
        max_simulated_time=10.0,
    )


# -- collector / driver ------------------------------------------------------------
def test_run_timed_produces_contiguous_windows():
    config = homogeneous_config(4, seed=42)
    result = SimulationDriver(config, strategy="OPT-IO-CPU").run_timed(
        10.0, timeline_window=2.0
    )
    timeline = result.timeline
    assert timeline is not None and timeline.window == 2.0
    assert len(timeline.windows) == 5
    assert timeline.windows[0].start == 0.0
    assert timeline.windows[-1].end == 10.0
    for left, right in zip(timeline.windows, timeline.windows[1:]):
        assert left.end == right.start
    # Window completion counts fold back to the run total.
    assert sum(w.joins_completed for w in timeline.windows) == result.joins_completed
    for w in timeline.windows:
        for metric in ("cpu_util", "cpu_util_max", "disk_util", "mem_util"):
            assert 0.0 <= getattr(w, metric) <= 1.0
        assert w.cpu_imbalance >= 0.0
        assert w.cpu_util_max >= w.cpu_util


def test_run_timed_partial_final_window():
    config = homogeneous_config(2, seed=42)
    result = SimulationDriver(config, strategy="OPT-IO-CPU").run_timed(
        5.0, timeline_window=2.0
    )
    windows = result.timeline.windows
    assert [w.end - w.start for w in windows] == pytest.approx([2.0, 2.0, 1.0])


def test_run_timed_rejects_bad_duration():
    config = homogeneous_config(2, seed=42)
    with pytest.raises(ValueError):
        SimulationDriver(config).run_timed(0.0)


def test_observer_does_not_change_simulation_outcome():
    """Collecting a timeline must not perturb the simulated system."""
    config = homogeneous_config(4, seed=42)
    with_tl = SimulationDriver(config, strategy="OPT-IO-CPU").run_timed(
        8.0, timeline_window=1.0
    )
    with_coarse = SimulationDriver(config, strategy="OPT-IO-CPU").run_timed(
        8.0, timeline_window=4.0
    )
    a, b = with_tl.to_dict(), with_coarse.to_dict()
    a.pop("timeline"), b.pop("timeline")
    assert a == b


# -- serialisation ------------------------------------------------------------------
def test_timeline_round_trips_through_result_json():
    config = homogeneous_config(2, seed=42)
    result = SimulationDriver(config, strategy="OPT-IO-CPU").run_timed(
        4.0, timeline_window=2.0
    )
    clone = SimulationResult.from_json(result.to_json())
    assert clone.to_json() == result.to_json()
    assert isinstance(clone.timeline, Timeline)
    assert clone.timeline.windows == result.timeline.windows


def test_timeline_from_dict_ignores_unknown_window_keys():
    data = {
        "window": 1.0,
        "windows": [{"start": 0.0, "end": 1.0, "joins_completed": 3, "new_metric": 9.0}],
    }
    timeline = Timeline.from_dict(data)
    assert timeline.windows[0].joins_completed == 3


def test_timeline_series_and_window_at():
    timeline = Timeline(
        window=1.0,
        windows=[
            TimelineWindow(start=0.0, end=1.0, joins_completed=1),
            TimelineWindow(start=1.0, end=2.0, joins_completed=4),
        ],
    )
    assert timeline.series("joins_completed") == [1, 4]
    assert timeline.peak("joins_completed") == 4
    assert timeline.window_at(1.5).joins_completed == 4
    assert timeline.window_at(5.0) is None


# -- aggregation --------------------------------------------------------------------
def make_window(start, end, rt):
    return TimelineWindow(start=start, end=end, join_rt_mean=rt, joins_completed=2)


def test_aggregate_timelines_window_wise_mean():
    a = Timeline(window=1.0, windows=[make_window(0, 1, 0.2), make_window(1, 2, 0.4)])
    b = Timeline(window=1.0, windows=[make_window(0, 1, 0.4), make_window(1, 2, 0.8)])
    mean = aggregate_timelines([a, b])
    assert mean.series("join_rt_mean") == pytest.approx([0.3, 0.6])
    assert mean.windows[0].joins_completed == pytest.approx(2.0)


def test_aggregate_timelines_mismatched_grids_give_none():
    a = Timeline(window=1.0, windows=[make_window(0, 1, 0.2)])
    b = Timeline(window=1.0, windows=[make_window(0, 1, 0.2), make_window(1, 2, 0.4)])
    assert aggregate_timelines([a, b]) is None
    assert aggregate_timelines([a, None]) is None
    assert aggregate_timelines([]) is None


def test_aggregate_results_carries_mean_timeline():
    def result_with(rt):
        return SimulationResult(
            strategy="S", num_pe=2, mode="timed", simulated_seconds=2.0,
            joins_completed=2, join_response_time=rt, join_response_time_p95=rt,
            join_response_time_ci=0.0, average_degree=1.0, average_overflow_pages=0.0,
            average_memory_wait=0.0, cpu_utilization=0.5, disk_utilization=0.5,
            memory_utilization=0.5,
            timeline=Timeline(window=1.0, windows=[make_window(0, 1, rt)]),
        )

    aggregate = aggregate_results([result_with(0.2), result_with(0.6)])
    assert aggregate.mean.timeline.series("join_rt_mean") == pytest.approx([0.4])
    assert "timeline" not in aggregate.stddev


# -- spec expansion -----------------------------------------------------------------
def test_timeline_points_expand_with_duration_and_window():
    points = tiny_spec().points()
    assert len(points) == 1
    point = points[0]
    assert point.kind == "timeline"
    assert point.max_simulated_time == 10.0
    assert point.timeline_window == 2.0
    assert point.arrival_kind == "step"
    assert dict(point.arrival_params)["surge_factor"] == 2.0
    assert point.num_queries is None and point.measured_joins is None


def test_timeline_window_defaults_when_unset():
    points = tiny_spec(timeline_window=None).points()
    assert points[0].timeline_window == DEFAULT_TIMELINE_WINDOW


def test_arrival_axis_expands_one_point_per_kind():
    spec = tiny_spec(arrivals=("poisson", "mmpp"), arrival_params=(), series="{strategy} [{arrival}]")
    points = spec.points()
    assert [p.arrival_kind for p in points] == ["poisson", "mmpp"]
    assert points[0].series == "OPT-IO-CPU [poisson]"
    # Non-arrival points do not inherit the sweep's arrival params.
    assert all(p.arrival_params == () for p in points)


def test_sweep_validation_rejects_bad_arrival_axes():
    with pytest.raises(ValueError, match="unknown arrival kind"):
        tiny_timeline_sweep(arrivals=("weibull",))
    with pytest.raises(ValueError, match="only apply to multi/timeline"):
        Sweep(kind="single", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), arrivals=("step",))
    with pytest.raises(ValueError, match="timeline_window"):
        Sweep(kind="multi", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), timeline_window=1.0)
    with pytest.raises(ValueError, match="positive"):
        tiny_timeline_sweep(timeline_window=0.0)
    # A trace must be materialised, which only timeline points do; multi
    # sweeps would silently fall back to live Poisson under a trace label.
    with pytest.raises(ValueError, match="'trace' requires a timeline"):
        Sweep(kind="multi", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), arrivals=("trace",))


def test_cache_key_covers_arrival_and_window(tmp_path):
    cache = ResultCache(tmp_path)
    base = tiny_spec().points()[0]
    from dataclasses import replace

    assert cache.key(base) != cache.key(replace(base, arrival_kind="mmpp"))
    assert cache.key(base) != cache.key(
        replace(base, arrival_params=(("surge_factor", 3.0),))
    )
    assert cache.key(base) != cache.key(replace(base, timeline_window=1.0))


# -- perturbed sweeps ---------------------------------------------------------------
def perturbed_spec(replicates=3):
    sweep = Sweep(
        kind="multi",
        scenario="homogeneous",
        strategies=("OPT-IO-CPU",),
        system_sizes=(4,),
        rates=(0.25,),
        selectivities=(0.01,),
        perturb=(("arrival_rate", 0.1), ("selectivity", 0.2)),
        replicates=replicates,
    )
    return ScenarioSpec(name="p", title="p", x_label="x", sweeps=(sweep,),
                        measured_joins=5, max_simulated_time=5.0)


def test_perturb_jitters_replicates_but_not_replicate_zero():
    points = perturbed_spec().points()
    assert points[0].rate == 0.25 and points[0].selectivity == 0.01
    for point in points[1:]:
        assert point.rate != 0.25
        assert 0.225 <= point.rate <= 0.275
        assert 0.008 <= point.selectivity <= 0.012
    # Distinct jitter per replicate, nominal (series, x) shared by all.
    assert len({p.rate for p in points}) == 3
    assert len({(p.series, p.x) for p in points}) == 1


def test_perturb_is_deterministic_across_expansions():
    first = perturbed_spec().points()
    second = perturbed_spec().points()
    assert [(p.rate, p.selectivity, p.seed) for p in first] == [
        (p.rate, p.selectivity, p.seed) for p in second
    ]


def test_perturb_validation():
    with pytest.raises(ValueError, match="unknown perturb axis"):
        Sweep(kind="multi", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), perturb=(("buffer_pages", 0.1),))
    with pytest.raises(ValueError, match="fraction"):
        Sweep(kind="multi", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), rates=(0.25,), perturb=(("arrival_rate", 1.5),))
    with pytest.raises(ValueError, match="explicit rates"):
        Sweep(kind="multi", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), perturb=(("arrival_rate", 0.1),))
    with pytest.raises(ValueError, match="explicit selectivities"):
        Sweep(kind="multi", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), perturb=(("selectivity", 0.1),))


def test_perturbed_replicates_aggregate_under_nominal_coordinate():
    runner = ParallelRunner(workers=1)
    aggregated = runner.run_aggregated(perturbed_spec(replicates=2))
    assert len(aggregated.points) == 1
    assert aggregated.points[0].n == 2


# -- runner integration -------------------------------------------------------------
def test_timeline_point_identical_across_worker_counts():
    spec = ScenarioSpec(
        name="tl",
        title="tiny timeline",
        x_label="# PE",
        sweeps=(tiny_timeline_sweep(strategies=("OPT-IO-CPU", "psu_opt+RANDOM")),),
        max_simulated_time=8.0,
    )
    serial = ParallelRunner(workers=1).run(spec)
    parallel = ParallelRunner(workers=2).run(spec)
    for left, right in zip(serial.points, parallel.points):
        assert left.result.to_json() == right.result.to_json()
        assert left.result.timeline is not None


def test_timeline_survives_result_cache(tmp_path):
    cache = ResultCache(tmp_path)
    spec = tiny_spec()
    first = ParallelRunner(workers=1, cache=cache).run(spec)
    assert cache.misses == 1
    second = ParallelRunner(workers=1, cache=cache).run(spec)
    assert cache.hits == 1
    assert first.points[0].result.to_json() == second.points[0].result.to_json()
    assert second.points[0].result.timeline is not None


def test_trace_point_matches_poisson_arrival_stream():
    """--arrival trace materialises exactly the live Poisson arrivals."""
    trace_point = tiny_spec(arrivals=("trace",), arrival_params=()).points()[0]
    result = run_point_spec(trace_point)
    assert result.timeline is not None
    assert result.joins_completed > 0
    # The replayed run's completion pattern matches a live poisson run of
    # the same seed closely: the arrival instants are identical, so the
    # number of arrivals (and hence completions) per window agree.
    poisson_point = tiny_spec(arrivals=("poisson",), arrival_params=()).points()[0]
    live = run_point_spec(poisson_point)
    assert [w.joins_completed for w in result.timeline.windows] == [
        w.joins_completed for w in live.timeline.windows
    ]


# -- dynamic scenario ---------------------------------------------------------------
def test_dynamic_scenarios_are_registered():
    from repro.runner import available_scenarios

    names = available_scenarios()
    assert "dynamic" in names and "dynamic-mmpp" in names


def test_dynamic_scenario_shows_surge_separation():
    """Acceptance: dynamic beats the naive static strategy during the surge."""
    spec = build_scenario(
        "dynamic",
        system_sizes=(20,),
        strategies=("OPT-IO-CPU", "psu_noIO+RANDOM"),
        max_simulated_time=40.0,
        timeline_window=5.0,
        arrival_params=(("surge_factor", 2.0), ("surge_start", 15.0), ("surge_end", 30.0)),
    )
    experiment = ParallelRunner(workers=2).run(spec)
    timelines = {
        series: experiment.series(series)[0].result.timeline
        for series in experiment.series_names()
    }
    dynamic = [w.join_rt_mean for w in timelines["OPT-IO-CPU"] if 15.0 <= w.start < 30.0]
    static = [
        w.join_rt_mean for w in timelines["psu_noIO+RANDOM"] if 15.0 <= w.start < 30.0
    ]
    assert len(dynamic) == 3 and len(static) == 3
    # Static saturates: every surge window at least 1.5x slower than dynamic.
    for dyn, stat in zip(dynamic, static):
        assert stat > 1.5 * dyn


def test_render_timeline_table_lists_windows():
    from repro.experiments.dynamic import render_timeline_table

    experiment = ParallelRunner(workers=1).run(tiny_spec())
    table = render_timeline_table(experiment)
    assert "per window" in table
    assert "[   0.0,   2.0)" in table
    empty = ParallelRunner(workers=1).run(
        ScenarioSpec(name="e", title="e", x_label="x", sweeps=())
    )
    assert render_timeline_table(empty) == "(no timeline data)"


# -- export -------------------------------------------------------------------------
def test_collect_rows_includes_window_rows():
    from repro.experiments.export import collect_rows

    experiment = ParallelRunner(workers=1).run(tiny_spec())
    rows = collect_rows(experiment)
    window_rows = [row for row in rows if row["row_type"] == "window"]
    assert len(window_rows) == 5
    assert [row["window_index"] for row in window_rows] == list(range(5))
    assert {"t_start", "t_end", "join_rt_ms", "cpu_imbalance", "mem_util"} <= set(
        window_rows[0]
    )


def test_collect_rows_includes_window_mean_rows_for_replicates():
    from repro.experiments.export import collect_rows

    spec = tiny_spec().with_replicates(2)
    experiment = ParallelRunner(workers=1).run(spec)
    rows = collect_rows(experiment, experiment.aggregate())
    kinds = {row["row_type"] for row in rows}
    assert {"replicate", "window", "aggregate", "window_mean"} <= kinds
    window_mean = [row for row in rows if row["row_type"] == "window_mean"]
    assert len(window_mean) == 5


def test_export_rows_json_round_trips_window_rows(tmp_path):
    from repro.experiments.export import collect_rows, export_rows

    experiment = ParallelRunner(workers=1).run(tiny_spec())
    path = export_rows(collect_rows(experiment), tmp_path / "out.json", "json")
    data = json.loads(path.read_text())
    assert any(row["row_type"] == "window" for row in data)


def test_timeline_expansion_rejects_non_positive_duration():
    spec = ScenarioSpec(name="t", title="t", x_label="x",
                        sweeps=(tiny_timeline_sweep(),), max_simulated_time=0.0)
    with pytest.raises(ValueError, match="positive run duration"):
        spec.points()


def test_sweep_rejects_orphan_arrival_params():
    with pytest.raises(ValueError, match="arrival_params"):
        Sweep(kind="timeline", scenario="homogeneous", strategies=("S",),
              system_sizes=(4,), arrival_params=(("surge_factor", 3.0),))


# -- fault observability (PR 8) -----------------------------------------------------
def test_window_fault_fields_default_clean_and_round_trip():
    assert TimelineWindow(start=0, end=1).availability == 1.0
    assert TimelineWindow(start=0, end=1).anomaly == ""
    timeline = Timeline(window=1.0, windows=[
        TimelineWindow(start=0, end=1, availability=0.75, anomaly="pe_crash:pe1")
    ])
    back = Timeline.from_dict(json.loads(json.dumps(timeline.to_dict())))
    assert back.windows[0].availability == 0.75
    assert back.windows[0].anomaly == "pe_crash:pe1"
    assert back == timeline


def test_aggregate_timelines_availability_mean_and_anomaly_carry():
    def tl(availability, anomaly):
        return Timeline(window=1.0, windows=[
            TimelineWindow(start=0, end=1, availability=availability, anomaly=anomaly)
        ])

    same = aggregate_timelines([tl(0.5, "pe_crash:pe1"), tl(1.0, "pe_crash:pe1")])
    assert same.windows[0].availability == pytest.approx(0.75)
    # The anomaly label is categorical: carried when replicates agree...
    assert same.windows[0].anomaly == "pe_crash:pe1"
    # ...dropped (not concatenated) when they do not.
    mixed = aggregate_timelines([tl(0.5, "degrade:pe1"), tl(1.0, "pe_crash:pe2")])
    assert mixed.windows[0].anomaly == ""


def test_close_window_with_no_completions_is_guarded():
    # A window in which nothing completed must fold to zero filler stats --
    # never a ZeroDivisionError (empty rts / empty oltp lists).
    from repro.metrics.timeline import TimelineCollector

    driver = SimulationDriver(homogeneous_config(2))
    collector = TimelineCollector(driver.env, driver.system.pes, 1.0)
    collector.start()
    driver.env.run(until=2.5)
    collector.finalize()
    timeline = collector.to_timeline()
    assert len(timeline) == 3
    for window in timeline:
        assert window.joins_completed == 0
        assert window.join_rt_mean == 0.0
        assert window.join_rt_p95 == 0.0
        assert window.join_throughput == 0.0
        assert window.availability == 1.0
        assert window.anomaly == ""


def test_recovery_table_renders_empty_windows_as_missing():
    # The faults scenario's recovery-curve renderer shows "--" for windows
    # with no completions (a halted window has no mean, not a zero mean).
    from repro.experiments.base import ExperimentPoint, ExperimentResult
    from repro.experiments.faults import render_recovery_table
    from repro.simulation.results import SimulationResult

    timeline = Timeline(window=1.0, windows=[
        TimelineWindow(start=0, end=1, joins_completed=2, join_rt_mean=0.5),
        TimelineWindow(start=1, end=2, joins_completed=0, join_rt_mean=0.0),
    ])
    result = SimulationResult(
        strategy="S", num_pe=2, mode="timed", simulated_seconds=2.0,
        joins_completed=2, join_response_time=0.5, join_response_time_p95=0.5,
        join_response_time_ci=0.0, average_degree=1.0, average_overflow_pages=0.0,
        average_memory_wait=0.0, cpu_utilization=0.5, disk_utilization=0.5,
        memory_utilization=0.5, timeline=timeline,
    )
    experiment = ExperimentResult(figure="faults", title="t", x_label="x")
    experiment.add(ExperimentPoint(figure="faults", series="S", x=2.0, result=result))
    table = render_recovery_table(experiment)
    lines = table.splitlines()
    assert any("500.0" in line for line in lines)
    assert any("--" in line for line in lines if line.startswith("[   1.0"))
