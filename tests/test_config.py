"""Tests for the configuration defaults (Fig. 4 of the paper)."""

import dataclasses

import pytest

from repro.config import (
    MS,
    CpuConfig,
    DiskConfig,
    InstructionCosts,
    JoinQueryConfig,
    NetworkConfig,
    OltpConfig,
    RelationConfig,
    SystemConfig,
)


def test_instruction_costs_match_paper_table():
    costs = InstructionCosts()
    assert costs.initiate_transaction == 25_000
    assert costs.terminate_transaction == 25_000
    assert costs.io_operation == 3_000
    assert costs.send_message == 5_000
    assert costs.receive_message == 10_000
    assert costs.copy_message_packet == 5_000
    assert costs.read_tuple == 500
    assert costs.hash_tuple == 500
    assert costs.insert_into_hash_table == 100
    assert costs.write_tuple_to_output == 100
    assert costs.probe_hash_table == 200


def test_cpu_speed_and_service_time():
    cpu = CpuConfig()
    assert cpu.mips == 20.0
    # 20 MIPS -> 25 000 instructions take 1.25 ms.
    assert cpu.seconds_for(25_000) == pytest.approx(1.25 * MS)


def test_disk_timings_match_paper():
    disk = DiskConfig()
    assert disk.disks_per_pe == 10
    assert disk.avg_access_time == pytest.approx(15 * MS)
    assert disk.prefetch_pages == 4
    assert disk.cache_pages == 200
    # Prefetching 4 pages: 15 ms base + 4 * 1 ms = 19 ms (paper §5.1).
    assert disk.sequential_io_time(4) == pytest.approx(19 * MS)
    assert disk.random_io_time() == pytest.approx(16 * MS)
    assert disk.controller_time(1) == pytest.approx(1.4 * MS)


def test_buffer_defaults():
    config = SystemConfig()
    assert config.buffer.page_size_bytes == 8_192
    assert config.buffer.buffer_pages == 50
    assert config.buffer.buffer_bytes == 50 * 8_192


def test_relation_defaults():
    config = SystemConfig()
    assert config.relation_a.num_tuples == 250_000
    assert config.relation_b.num_tuples == 1_000_000
    assert config.relation_a.tuple_size_bytes == 400
    assert config.relation_a.blocking_factor == 20
    assert config.relation_a.pages == 12_500
    assert config.relation_b.pages == 50_000
    # Roughly 100 MB and 400 MB as stated in Fig. 4.
    assert config.relation_a.size_bytes == 100_000_000
    assert config.relation_b.size_bytes == 400_000_000


def test_node_partitioning_20_80():
    config = SystemConfig(num_pe=80)
    assert config.a_node_count == 16
    assert config.b_node_count == 64
    assert set(config.a_node_ids).isdisjoint(config.b_node_ids)
    assert len(config.a_node_ids) + len(config.b_node_ids) == 80


@pytest.mark.parametrize("num_pe", [10, 20, 40, 60, 80])
def test_node_partitioning_covers_all_pe(num_pe):
    config = SystemConfig(num_pe=num_pe)
    assert len(config.a_node_ids) + len(config.b_node_ids) == num_pe


def test_join_query_defaults():
    query = JoinQueryConfig()
    assert query.scan_selectivity == 0.01
    assert query.fudge_factor == 1.05
    assert query.arrival_rate_per_pe == 0.25
    smaller = query.scaled(scan_selectivity=0.001)
    assert smaller.scan_selectivity == 0.001
    assert query.scan_selectivity == 0.01  # original unchanged


def test_network_packetisation():
    net = NetworkConfig()
    assert net.packets_for(0) == 1
    assert net.packets_for(8_192) == 1
    assert net.packets_for(8_193) == 2
    assert net.packets_for(400 * 20) == 1
    assert net.transfer_time(8_192) > 0


def test_system_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(num_pe=0)
    with pytest.raises(ValueError):
        SystemConfig(multiprogramming_level=0)


def test_with_overrides_returns_new_config():
    config = SystemConfig(num_pe=10)
    bigger = config.with_overrides(num_pe=80)
    assert bigger.num_pe == 80
    assert config.num_pe == 10


def test_configs_are_frozen():
    costs = InstructionCosts()
    with pytest.raises(dataclasses.FrozenInstanceError):
        costs.io_operation = 1


def test_describe_mentions_key_figures():
    config = SystemConfig(num_pe=40, oltp=OltpConfig(placement="B"))
    text = config.describe()
    assert "40 PE" in text
    assert "OLTP" in text


def test_relation_pages_for_tuples():
    rel = RelationConfig(name="X", num_tuples=1000)
    assert rel.pages_for_tuples(0) == 0
    assert rel.pages_for_tuples(1) == 1
    assert rel.pages_for_tuples(20) == 1
    assert rel.pages_for_tuples(21) == 2
