"""Tests for the buffer manager: working spaces, memory queue, OLTP stealing."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import BufferManager
from repro.sim import Environment


def make_buffer(pages=50):
    env = Environment()
    return env, BufferManager(env, total_pages=pages, pe_id=0)


def test_reserve_grants_desired_when_free():
    env, buf = make_buffer(50)
    grants = []

    def proc():
        ws = yield buf.reserve("join-1", desired_pages=30, min_pages=10)
        grants.append(ws.pages)

    env.process(proc())
    env.run()
    assert grants == [30]
    assert buf.free_pages == 20
    assert buf.working_space_pages == 30


def test_reserve_grants_partial_down_to_minimum():
    env, buf = make_buffer(50)
    grants = []

    def first():
        ws = yield buf.reserve("join-1", desired_pages=45, min_pages=5)
        grants.append(("first", ws.pages))

    def second():
        yield env.timeout(1)
        ws = yield buf.reserve("join-2", desired_pages=40, min_pages=4)
        grants.append(("second", ws.pages))

    env.process(first())
    env.process(second())
    env.run()
    assert grants == [("first", 45), ("second", 5)]
    assert buf.free_pages == 0


def test_memory_queue_is_fcfs():
    env, buf = make_buffer(20)
    order = []

    def holder():
        ws = yield buf.reserve("holder", desired_pages=20, min_pages=20)
        yield env.timeout(10)
        buf.release(ws)

    def waiter(name, min_pages, delay):
        yield env.timeout(delay)
        ws = yield buf.reserve(name, desired_pages=min_pages, min_pages=min_pages)
        order.append((name, env.now))
        buf.release(ws)

    env.process(holder())
    env.process(waiter("big-first", 15, 1))
    env.process(waiter("small-second", 2, 2))
    env.run()
    # FCFS: the small request must NOT overtake the earlier big one.
    assert order[0][0] == "big-first"
    assert order[0][1] == pytest.approx(10)


def test_minimum_larger_than_buffer_rejected():
    env, buf = make_buffer(10)
    with pytest.raises(ValueError):
        buf.reserve("join", desired_pages=20, min_pages=20)


def test_release_is_idempotent():
    env, buf = make_buffer(10)
    spaces = []

    def proc():
        ws = yield buf.reserve("join", desired_pages=5, min_pages=5)
        spaces.append(ws)

    env.process(proc())
    env.run()
    ws = spaces[0]
    buf.release(ws)
    buf.release(ws)
    assert buf.free_pages == 10


def test_grow_and_shrink():
    env, buf = make_buffer(20)
    spaces = []

    def proc():
        ws = yield buf.reserve("join", desired_pages=10, min_pages=5)
        spaces.append(ws)

    env.process(proc())
    env.run()
    ws = spaces[0]
    assert buf.grow(ws, 5) == 5
    assert ws.pages == 15
    assert buf.grow(ws, 100) == 5  # only 5 left
    assert buf.shrink(ws, 8) == 8
    assert buf.free_pages == 8
    assert buf.shrink(ws, 1000) == ws.pages + 0 or True  # shrink bounded by size
    assert buf.grow(ws, 0) == 0


def test_oltp_footprint_takes_free_pages_first():
    env, buf = make_buffer(50)
    added = buf.ensure_oltp_footprint(20)
    assert added == 20
    assert buf.oltp_pages == 20
    assert buf.free_pages == 30
    # Growing to the same target is a no-op.
    assert buf.ensure_oltp_footprint(20) == 0


def test_oltp_footprint_steals_from_working_space():
    env, buf = make_buffer(50)
    stolen_log = []
    spaces = []

    def join():
        ws = yield buf.reserve(
            "join", desired_pages=45, min_pages=10, steal_callback=stolen_log.append
        )
        spaces.append(ws)

    env.process(join())
    env.run()
    assert buf.free_pages == 5
    added = buf.ensure_oltp_footprint(25)
    # 5 pages come from the free pool; stealing from the running join only
    # happens for the protected working set (25 // 2 = 12 pages), so 7 more
    # pages are taken from the join.
    assert added == 12
    assert stolen_log == [7]
    assert spaces[0].pages == 38
    assert buf.pages_stolen == 7


def test_oltp_footprint_respects_working_space_minimum():
    env, buf = make_buffer(30)
    spaces = []

    def join():
        ws = yield buf.reserve("join", desired_pages=30, min_pages=25)
        spaces.append(ws)

    env.process(join())
    env.run()
    added = buf.ensure_oltp_footprint(20)
    # Only 5 pages above the minimum can be stolen, nothing is free.
    assert added == 5
    assert spaces[0].pages == 25


def test_join_can_evict_unprotected_oltp_pages():
    """A join working space displaces ordinary OLTP LRU pages but never the
    protected half of the working set."""
    env, buf = make_buffer(30)
    buf.ensure_oltp_footprint(30)  # 15 protected + 15 evictable
    grants = []

    def join():
        ws = yield buf.reserve("join", desired_pages=10, min_pages=10)
        grants.append((env.now, ws.pages))

    env.process(join())
    env.run()
    assert grants == [(0, 10)]
    assert buf.oltp_pages == 20
    assert buf.oltp_pages_evicted == 10


def test_protected_oltp_pages_block_memory_queue_until_release():
    env, buf = make_buffer(30)
    buf.ensure_oltp_footprint(30)  # 15 protected, 15 evictable
    grants = []

    def join():
        # Needs more than the 15 evictable pages -> must wait.
        ws = yield buf.reserve("join", desired_pages=16, min_pages=16)
        grants.append((env.now, ws.pages))

    env.process(join())
    env.run(until=5)
    assert grants == []
    buf.release_oltp_footprint(20)
    env.run()
    assert grants == [(5, 16)]


def test_oltp_refill_after_eviction_uses_free_pages_only():
    """After a join displaced LRU pages, OLTP only steals back its protected
    working set, not the full previous footprint."""
    env, buf = make_buffer(50)
    buf.ensure_oltp_footprint(44)  # 22 protected, 22 evictable, 6 free
    spaces = []

    def join():
        ws = yield buf.reserve("join", desired_pages=40, min_pages=5)
        spaces.append(ws)

    env.process(join())
    env.run()
    # The join gets the 6 free pages plus the 22 unprotected OLTP pages.
    assert spaces[0].pages == 28
    assert buf.oltp_pages == 22
    assert buf.oltp_pages_evicted == 22
    # OLTP still holds its protected working set, so refilling the footprint
    # does not steal anything back from the join.
    buf.ensure_oltp_footprint(44)
    assert buf.oltp_pages == 22
    assert spaces[0].pages == 28


def test_utilization_and_queue_length():
    env, buf = make_buffer(40)

    def join():
        ws = yield buf.reserve("join", desired_pages=20, min_pages=20)
        yield env.timeout(10)
        buf.release(ws)

    def blocked():
        yield env.timeout(1)
        ws = yield buf.reserve("blocked", desired_pages=30, min_pages=30)
        buf.release(ws)

    env.process(join())
    env.process(blocked())
    env.run(until=5)
    assert buf.utilization() == pytest.approx(0.5)
    assert buf.memory_queue_length == 1
    env.run()
    assert buf.memory_queue_length == 0
    assert 0.0 < buf.average_utilization() <= 1.0


def test_invalid_buffer_size():
    env = Environment()
    with pytest.raises(ValueError):
        BufferManager(env, total_pages=0)


@given(
    total=st.integers(min_value=5, max_value=200),
    requests=st.lists(
        st.tuples(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=20)),
        min_size=1,
        max_size=10,
    ),
)
def test_buffer_never_overcommits(total, requests):
    """Property: granted pages never exceed the buffer size."""
    env = Environment()
    buf = BufferManager(env, total_pages=total)
    granted = []

    def proc(desired, minimum):
        minimum = min(minimum, total)
        desired = max(desired, minimum)
        ws = yield buf.reserve(f"q{desired}-{minimum}", desired_pages=desired, min_pages=minimum)
        granted.append(ws)

    for desired, minimum in requests:
        env.process(proc(desired, minimum))
    env.run()
    in_use = sum(ws.pages for ws in granted if not ws.released)
    assert in_use + buf.free_pages + buf.oltp_pages == total
    assert buf.free_pages >= 0
