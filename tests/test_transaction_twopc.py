"""Tests for the transaction manager (MPL control) and two-phase commit."""

import pytest

from repro.config import SystemConfig
from repro.engine import CommitStatistics, ProcessingElement, TransactionManager, run_commit
from repro.hardware import Network
from repro.sim import Environment
from repro.workload import JoinQuery, OltpTransaction


# -- transaction manager -----------------------------------------------------------
def test_mpl_limits_concurrency():
    env = Environment()
    manager = TransactionManager(env, pe_id=0, multiprogramming_level=2)
    starts = []

    def txn(name, duration):
        transaction = OltpTransaction()
        slot = yield from manager.admit(transaction)
        starts.append((name, env.now))
        yield env.timeout(duration)
        manager.finish(transaction, slot)

    for index in range(4):
        env.process(txn(f"t{index}", 10))
    env.run()
    start_times = [t for _, t in starts]
    assert start_times == [0, 0, 10, 10]
    assert manager.admitted == 4
    assert manager.completed == 4
    assert manager.active_count == 0


def test_input_queue_length_visible_while_saturated():
    env = Environment()
    manager = TransactionManager(env, pe_id=0, multiprogramming_level=1)

    def txn(duration):
        transaction = OltpTransaction()
        slot = yield from manager.admit(transaction)
        yield env.timeout(duration)
        manager.finish(transaction, slot)

    for _ in range(3):
        env.process(txn(5))
    env.run(until=2)
    assert manager.active_count == 1
    assert manager.input_queue_length == 2
    env.run()
    assert manager.average_input_queue() > 0


def test_invalid_mpl_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        TransactionManager(env, pe_id=0, multiprogramming_level=0)


def test_is_active_tracks_registration():
    env = Environment()
    manager = TransactionManager(env, pe_id=0, multiprogramming_level=4)
    txn = JoinQuery()
    events = []

    def proc():
        slot = yield from manager.admit(txn)
        events.append(manager.is_active(txn.txn_id))
        manager.finish(txn, slot)
        events.append(manager.is_active(txn.txn_id))

    env.process(proc())
    env.run()
    assert events == [True, False]


# -- two-phase commit ----------------------------------------------------------------
def build_pes(count, num_pe=4):
    env = Environment()
    config = SystemConfig(num_pe=num_pe)
    pes = [ProcessingElement(env, pe_id=index, config=config) for index in range(count)]
    network = Network(env, config.network, config.costs)
    return env, config, pes, network


def test_read_only_commit_uses_single_round():
    env, config, pes, network = build_pes(3)
    stats = CommitStatistics()
    finished = []

    def proc():
        yield from run_commit(
            pes[0], pes[1:], network, config.costs, read_only=True, statistics=stats
        )
        finished.append(env.now)

    env.process(proc())
    env.run()
    assert stats.one_phase_commits == 1
    assert stats.two_phase_commits == 0
    assert stats.messages == 4  # 2 participants x 2 messages
    assert finished[0] > 0
    # No log writes for read-only commits.
    assert all(pe.disks.pages_written == 0 for pe in pes)


def test_update_commit_writes_logs_and_uses_two_phases():
    env, config, pes, network = build_pes(3)
    stats = CommitStatistics()

    def proc():
        yield from run_commit(
            pes[0], pes[1:], network, config.costs, read_only=False, statistics=stats
        )

    env.process(proc())
    env.run()
    assert stats.two_phase_commits == 1
    assert stats.messages == 8
    # Each participant forces a prepare record; the coordinator forces commit.
    assert pes[1].disks.pages_written == 1
    assert pes[2].disks.pages_written == 1
    assert pes[0].disks.pages_written == 1


def test_update_commit_takes_longer_than_read_only():
    env1, config1, pes1, network1 = build_pes(3)
    env2, config2, pes2, network2 = build_pes(3)
    times = {}

    def run(env, pes, network, config, read_only, key):
        def proc():
            yield from run_commit(pes[0], pes[1:], network, config.costs, read_only=read_only)
            times[key] = env.now

        env.process(proc())
        env.run()

    run(env1, pes1, network1, config1, True, "ro")
    run(env2, pes2, network2, config2, False, "rw")
    assert times["rw"] > times["ro"]


def test_local_readonly_commit_is_free_of_messages():
    env, config, pes, network = build_pes(1)
    stats = CommitStatistics()

    def proc():
        yield from run_commit(pes[0], [pes[0]], network, config.costs, read_only=True, statistics=stats)

    env.process(proc())
    env.run()
    assert network.messages_sent == 0
    assert stats.messages == 0


def test_local_update_commit_forces_log():
    env, config, pes, network = build_pes(1)

    def proc():
        yield from run_commit(pes[0], [], network, config.costs, read_only=False)

    env.process(proc())
    env.run()
    assert pes[0].disks.pages_written == 1


# -- processing element composition -----------------------------------------------------
def test_processing_element_reports_utilizations():
    env = Environment()
    config = SystemConfig(num_pe=4)
    pe = ProcessingElement(env, pe_id=1, config=config)

    def work():
        yield from pe.cpu.consume(100_000)
        yield from pe.disks.read_sequential(8)

    env.process(work())
    env.run(until=0.1)
    pe.close_report_window()
    assert 0.0 < pe.recent_cpu_utilization <= 1.0
    assert 0.0 < pe.recent_disk_utilization <= 1.0
    assert pe.free_memory_pages == config.buffer.buffer_pages
    assert pe.memory_utilization == 0.0
    assert "PE 1" in pe.describe()
