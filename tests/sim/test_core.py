"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5, 7.5]


def test_run_until_stops_at_boundary():
    env = Environment()
    log = []

    def proc():
        while True:
            yield env.timeout(1)
            log.append(env.now)

    env.process(proc())
    env.run(until=3.5)
    assert log == [1, 2, 3]
    assert env.now == 3.5


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_run_until_past_rejected():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run()
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_process_return_value_propagates():
    env = Environment()
    results = []

    def child():
        yield env.timeout(3)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((env.now, value))

    env.process(parent())
    env.run()
    assert results == [(3, 42)]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(7, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    def failer():
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(failer())
    env.run()
    assert caught == ["boom"]


def test_process_exception_propagates_to_parent():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise ValueError("child failed")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(parent())
    env.run()
    assert caught == ["child failed"]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(4)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [(4, "wake up")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    assert not proc.is_alive
    proc.interrupt("late")  # must not raise
    env.run()


def test_all_of_waits_for_every_event():
    env = Environment()
    log = []

    def proc():
        yield env.all_of([env.timeout(2), env.timeout(5), env.timeout(1)])
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5]


def test_any_of_returns_on_first_event():
    env = Environment()
    log = []

    def proc():
        yield env.any_of([env.timeout(2), env.timeout(5)])
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [2]


def test_all_of_empty_triggers_immediately():
    env = Environment()
    log = []

    def proc():
        yield env.all_of([])
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [0]


def test_yield_on_already_processed_event():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    log = []

    def late_waiter():
        yield env.timeout(3)
        value = yield gate
        log.append((env.now, value))

    env.process(late_waiter())
    env.run()
    assert log == [(3, "early")]


def test_events_fire_in_fifo_order_at_same_time():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    for name in ["a", "b", "c"]:
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_value_of_pending_event_raises():
    env = Environment()
    gate = env.event()
    with pytest.raises(SimulationError):
        _ = gate.value


def test_active_process_is_none_outside_callbacks():
    env = Environment()

    def proc():
        assert env.active_process is not None
        yield env.timeout(1)

    env.process(proc())
    assert env.active_process is None
    env.run()
    assert env.active_process is None
