"""Unit tests for resource abstractions (servers, containers, stores)."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, SimulationError, Store


def test_resource_serialises_two_users():
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def user(name, service):
        with cpu.request() as req:
            yield req
            start = env.now
            yield env.timeout(service)
            log.append((name, start, env.now))

    env.process(user("a", 5))
    env.process(user("b", 3))
    env.run()
    assert log == [("a", 0, 5), ("b", 5, 8)]


def test_resource_capacity_two_runs_in_parallel():
    env = Environment()
    cpu = Resource(env, capacity=2)
    log = []

    def user(name):
        with cpu.request() as req:
            yield req
            yield env.timeout(4)
            log.append((name, env.now))

    for name in ["a", "b", "c"]:
        env.process(user(name))
    env.run()
    assert log == [("a", 4), ("b", 4), ("c", 8)]


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_utilization_accounting():
    env = Environment()
    disk = Resource(env, capacity=1)

    def user():
        with disk.request() as req:
            yield req
            yield env.timeout(3)

    env.process(user())
    env.run(until=10)
    assert disk.busy_time() == pytest.approx(3.0)
    assert disk.utilization() == pytest.approx(0.3)


def test_resource_utilization_differential_snapshot():
    env = Environment()
    disk = Resource(env, capacity=1)

    def user(delay):
        yield env.timeout(delay)
        with disk.request() as req:
            yield req
            yield env.timeout(2)

    env.process(user(0))
    env.process(user(10))
    env.run(until=10)
    t0, busy0 = disk.snapshot()
    env.run(until=20)
    assert disk.utilization(since_time=t0, since_busy=busy0) == pytest.approx(0.2)


def test_priority_resource_orders_by_priority():
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    order = []

    def user(name, priority):
        with cpu.request(priority=priority) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    def submit():
        # Occupy the server, then queue a low- and a high-priority request.
        yield env.timeout(0)

    def holder():
        with cpu.request(priority=0) as req:
            yield req
            yield env.timeout(5)
            order.append("holder-done")

    env.process(holder())

    def late_submitters():
        yield env.timeout(1)
        env.process(user("low", priority=10))
        yield env.timeout(1)
        env.process(user("high", priority=1))

    env.process(late_submitters())
    env.run()
    assert order == ["holder-done", "high", "low"]


def test_priority_resource_fifo_within_same_priority():
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    order = []

    def user(name):
        with cpu.request(priority=5) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    def holder():
        with cpu.request() as req:
            yield req
            yield env.timeout(2)

    env.process(holder())

    def submit():
        yield env.timeout(0.5)
        env.process(user("first"))
        env.process(user("second"))

    env.process(submit())
    env.run()
    assert order == ["first", "second"]


def test_request_cancel_releases_queue_slot():
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def holder():
        with cpu.request() as req:
            yield req
            yield env.timeout(5)

    def canceller():
        yield env.timeout(1)
        req = cpu.request()
        yield env.timeout(1)
        req.cancel()
        log.append("cancelled")

    def other():
        yield env.timeout(3)
        with cpu.request() as req:
            yield req
            log.append(("other", env.now))

    env.process(holder())
    env.process(canceller())
    env.process(other())
    env.run()
    assert ("other", 5) in log


def test_container_get_blocks_until_put():
    env = Environment()
    pool = Container(env, capacity=100, init=0)
    log = []

    def consumer():
        yield pool.get(10)
        log.append(("got", env.now))

    def producer():
        yield env.timeout(4)
        yield pool.put(10)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [("got", 4)]
    assert pool.level == 0


def test_container_rejects_negative_amount():
    env = Environment()
    pool = Container(env, capacity=10, init=5)
    with pytest.raises(SimulationError):
        pool.get(-1)
    with pytest.raises(SimulationError):
        pool.put(-1)


def test_container_init_bounds():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=10, init=20)


def test_container_put_blocks_at_capacity():
    env = Environment()
    pool = Container(env, capacity=10, init=10)
    log = []

    def producer():
        yield pool.put(5)
        log.append(("put", env.now))

    def consumer():
        yield env.timeout(3)
        yield pool.get(8)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put", 3)]
    assert pool.level == 7


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in ["x", "y", "z"]:
            yield store.put(item)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == ["x", "y", "z"]


def test_store_get_with_filter():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        yield store.put({"dest": 1})
        yield store.put({"dest": 2})

    def consumer():
        item = yield store.get(lambda msg: msg["dest"] == 2)
        received.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [{"dest": 2}]
    assert len(store) == 1


def test_store_get_blocks_until_item_arrives():
    env = Environment()
    store = Store(env)
    log = []

    def consumer():
        item = yield store.get()
        log.append((env.now, item))

    def producer():
        yield env.timeout(6)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [(6, "late")]
