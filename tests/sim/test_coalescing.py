"""Semantics of the event-coalescing layer (PR 6).

Macro-events must be *invisible* to simulation outcomes: every test here
compares a batched run against its unbatched twin with ``==`` (not approx),
because the coalescing layer promises bit-identical times and accounting,
not merely close ones.  The kernel-level tests pin the BatchTimeout /
BatchHop / BatchWalk building blocks directly.
"""

import pytest

from repro.config import CpuConfig, DiskConfig, InstructionCosts, NetworkConfig, MS
from repro.hardware import CpuServer, DiskArray, Network, PRIORITY_OLTP
from repro.sim import (
    BatchTimeout,
    BatchWalk,
    Environment,
    SimulationError,
    Timeout,
    coalescing_enabled,
)


# ---------------------------------------------------------------------------
# kernel building blocks
# ---------------------------------------------------------------------------

def test_batch_timeout_defer_skips_initial_push():
    env = Environment()
    deferred = BatchTimeout(env, 5.0, defer=True)
    assert env._queue == []
    assert deferred.when == 5.0
    # A non-deferred one is scheduled immediately.
    BatchTimeout(env, 3.0)
    assert len(env._queue) == 1


def test_batch_timeout_split_fires_once_at_split_time():
    env = Environment()
    fired = []
    event = BatchTimeout(env, 10.0)
    event.add_callback(lambda ev: fired.append(env.now))
    event.split(4.0)
    env.run()
    # Fires at the split time; the stale entry at 10.0 is skipped silently.
    assert fired == [4.0]
    assert env.now == 10.0  # stale heap entry still advances the clock


def test_batch_timeout_split_validation():
    env = Environment()
    event = BatchTimeout(env, 10.0)
    with pytest.raises(SimulationError):
        event.split(11.0)  # beyond the batch end
    with pytest.raises(SimulationError):
        BatchTimeout(env, -1.0)  # end in the past
    env.run()
    with pytest.raises(SimulationError):
        event.split(10.0)  # already processed


def test_batch_walk_jumps_quiet_stretch_in_one_hop():
    env = Environment()
    done = []
    walk = BatchWalk(env, [1.0, 2.0, 3.0], 4.0)
    walk.event.add_callback(lambda ev: done.append(env.now))
    env.run()
    assert done == [4.0]
    # One marker at the first boundary, then a single jump to the end:
    # heap traffic is 2 entries instead of 4 per-step timeouts.
    assert walk.hops == 1
    assert env.events_dispatched == 2


def test_batch_walk_steps_around_interleaved_event():
    env = Environment()
    order = []
    walk = BatchWalk(env, [1.0, 2.0, 3.0], 4.0)
    walk.event.add_callback(lambda ev: order.append(("walk", env.now)))

    def other():
        yield Timeout(env, 2.5)
        order.append(("other", env.now))

    env.process(other())
    env.run()
    assert order == [("other", 2.5), ("walk", 4.0)]
    # The marker could not jump past the event at 2.5 in its first hop.
    assert walk.hops >= 2


def test_batch_walk_without_boundaries_schedules_end_directly():
    env = Environment()
    done = []
    walk = BatchWalk(env, [], 2.0)
    walk.event.add_callback(lambda ev: done.append(env.now))
    env.run()
    assert done == [2.0]
    assert walk.hops == 0


def test_coalescing_toggle_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_COALESCE", "0")
    assert coalescing_enabled() is False
    env = Environment()
    cpu = CpuServer(env, CpuConfig(), InstructionCosts())
    assert cpu._coalesce is False
    monkeypatch.delenv("REPRO_COALESCE")
    assert coalescing_enabled() is True


# ---------------------------------------------------------------------------
# CPU quantum batching
# ---------------------------------------------------------------------------

def _run_cpu(coalesce, workload):
    """Build a CPU server, force the coalescing mode, run ``workload``."""
    env = Environment()
    cpu = CpuServer(env, CpuConfig(mips=20), InstructionCosts())
    cpu._coalesce = coalesce
    trace = []
    workload(env, cpu, trace)
    env.run()
    return env, cpu, trace


def test_cpu_uncontended_batch_is_bit_identical():
    # 12.3 quanta: exercises the full-quantum fold plus a fractional tail.
    def workload(env, cpu, trace):
        def work():
            yield from cpu.consume(1_230_000)
            trace.append(("done", env.now))
            trace.append(("busy", cpu.resource.snapshot()))

        env.process(work())

    env_a, cpu_a, trace_a = _run_cpu(False, workload)
    env_b, cpu_b, trace_b = _run_cpu(True, workload)
    assert trace_a == trace_b  # exact float equality, fold for fold
    assert env_b.events_coalesced > 0
    assert env_b.events_dispatched < env_a.events_dispatched


def test_cpu_poll_during_batch_matches_unbatched_accounting():
    def workload(env, cpu, trace):
        def work():
            yield from cpu.consume(1_000_000)  # 10 quanta of 5 ms

        def poller():
            # Polls strictly inside quanta (12.5 ms) and exactly on a
            # boundary (25.0 ms): both must read the replayed busy time.
            for at in (0.0125, 0.025, 0.0405):
                yield Timeout(env, at - env.now)
                trace.append((env.now, cpu.close_window()))

        env.process(work())
        env.process(poller())

    _, _, trace_a = _run_cpu(False, workload)
    _, _, trace_b = _run_cpu(True, workload)
    assert trace_a == trace_b
    assert trace_a[0][1] == 1.0  # fully busy window, not clamped garbage


def test_cpu_oltp_preempts_mid_macro_on_quantum_boundary():
    # Holder: 10 quanta (boundaries every 5 ms).  OLTP arrives at 7 ms,
    # mid-macro: the batch must split on the *next* boundary (10 ms), where
    # the unbatched holder would release, and OLTP (priority 0) wins the
    # grant over the holder's re-request.
    def workload(env, cpu, trace):
        def holder():
            yield from cpu.consume(1_000_000)
            trace.append(("holder", env.now))

        def oltp():
            yield Timeout(env, 0.007)
            yield from cpu.consume(10_000, priority=PRIORITY_OLTP)
            trace.append(("oltp", env.now))

        env.process(holder())
        env.process(oltp())

    _, _, trace_a = _run_cpu(False, workload)
    _, _, trace_b = _run_cpu(True, workload)
    assert trace_a == trace_b
    # OLTP runs 10.0..10.5 ms; the holder's remaining 8 quanta then finish.
    assert trace_b[0] == ("oltp", pytest.approx(10.5 * MS))
    assert trace_b[1] == ("holder", pytest.approx(50.5 * MS))


# ---------------------------------------------------------------------------
# disk I/O chain batching
# ---------------------------------------------------------------------------

def _run_disk(coalesce, workload):
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)
    disks._coalesce = coalesce
    trace = []
    workload(env, disks, trace)
    env.run()
    return env, disks, trace


def test_disk_sequential_chain_is_bit_identical():
    def workload(env, disks, trace):
        def io():
            yield from disks.read_sequential(10)  # 3 physical I/Os
            trace.append(("done", env.now, disks.physical_ios))
            trace.append(("busy", disks.snapshot()))

        env.process(io())

    env_a, _, trace_a = _run_disk(False, workload)
    env_b, _, trace_b = _run_disk(True, workload)
    assert trace_a == trace_b
    assert env_b.events_coalesced > 0
    assert env_b.events_dispatched < env_a.events_dispatched


def test_disk_chain_split_by_competing_io_is_bit_identical():
    def workload(env, disks, trace):
        def chain():
            yield from disks.write_sequential(10)
            trace.append(("chain", env.now))

        def competitor():
            # Lands at 10 ms, inside the chain's first disk phase.
            yield Timeout(env, 0.010)
            yield from disks.read_random(page_key="hot")
            trace.append(("random", env.now))

        env.process(chain())
        env.process(competitor())

    _, disks_a, trace_a = _run_disk(False, workload)
    _, disks_b, trace_b = _run_disk(True, workload)
    assert trace_a == trace_b
    assert disks_a.physical_ios == disks_b.physical_ios


def test_disk_split_wake_keeps_tie_break_at_shared_boundary():
    # Regression: a preempted chain's wake must pop at the *same heap
    # position* as the unbatched chunk timeout, not at a fresh (later) event
    # id.  An interloper schedules an event landing exactly on the split
    # boundary, pushed after the chunk started but before the preemption: it
    # must lose the same-instant tie-break to the chain's wake (and thus
    # queue behind it at the controller) just as it would unbatched.  Before
    # the marker-fire fix, BatchTimeout.split() gave the wake a later event
    # id, the interloper grabbed the controller first, and the chain drifted
    # by the interloper's whole hold time.
    def workload(env, disks, trace):
        boundary = disks.config.sequential_io_time(4)  # first chunk ends here
        assert 0.004 + (boundary - 0.004) == boundary  # exact float landing

        def chain():
            yield from disks.read_sequential(12)  # 3 chunks of 4 pages
            trace.append(("chain", env.now))

        def interloper():
            yield Timeout(env, 0.004)
            yield Timeout(env, boundary - env.now)  # lands exactly on it
            req = disks.controller.request()
            yield req
            try:
                trace.append(("ctl-grant", env.now))
                yield Timeout(env, 0.050)
            finally:
                disks.controller.release(req)

        def competitor():
            yield Timeout(env, 0.008)  # preempts the chain mid-first-chunk
            req = disks.disks[0].request()
            yield req
            try:
                yield Timeout(env, 0.020)
            finally:
                disks.disks[0].release(req)
            trace.append(("competitor", env.now))

        env.process(chain())
        env.process(interloper())
        env.process(competitor())

    _, _, trace_a = _run_disk(False, workload)
    _, _, trace_b = _run_disk(True, workload)
    assert trace_a == trace_b
    # The chain's wake won the controller at the boundary: the interloper's
    # grant is delayed by the chunk's controller time, not vice versa.
    assert trace_b[0][0] == "ctl-grant"
    assert trace_b[0][1] == pytest.approx(0.019 + 0.0056)


def test_cpu_lockstep_batches_keep_completion_order():
    # CPU analog of the lockstep-chain regression below: two equal demands
    # on separate CPUs share every quantum-boundary instant, so a batched
    # marker that pushes its follow-up entry first-wave (instead of
    # relaying through the instant's second wave) steals the downstream
    # shared grant from the demand that started first.
    from repro.sim import Resource

    def run(coalesce):
        env = Environment()
        first = CpuServer(env, CpuConfig(mips=20), InstructionCosts())
        second = CpuServer(env, CpuConfig(mips=20), InstructionCosts())
        first._coalesce = False  # always the unbatched pacemaker
        second._coalesce = coalesce
        shared = Resource(env, capacity=1, name="shared")
        trace = []

        def work(name, cpu):
            yield from cpu.consume(300_000)  # 3 quanta, same fold
            req = shared.request()
            yield req
            try:
                trace.append((name, env.now))
                yield Timeout(env, 0.010)
            finally:
                shared.release(req)

        env.process(work("first", first))
        env.process(work("second", second))
        env.run()
        return trace

    trace_a = run(False)
    trace_b = run(True)
    assert trace_a == trace_b
    assert trace_b[0][0] == "first"
    assert trace_b[1][1] == trace_b[0][1] + 0.010


def test_disk_lockstep_chains_keep_completion_order():
    # Regression: at a boundary whose instant is *shared* with real events,
    # the unbatched loop takes two heap hops (the phase timeout pops, the
    # re-granted request pops, and only the latter pushes the next phase
    # timeout), so the next boundary's event id is allocated in the
    # instant's second wave.  A marker that pushes its follow-up entry
    # during its own pop allocates one wave early and wins every later
    # same-instant tie-break it should lose.  Two scans in lockstep expose
    # this: the one started *second* must stay second all the way to a
    # shared downstream resource.
    from repro.sim import Resource

    def run(coalesce):
        env = Environment()
        first = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)
        second = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=1)
        first._coalesce = False  # always the unbatched pacemaker
        second._coalesce = coalesce
        shared = Resource(env, capacity=1, name="shared")
        trace = []

        def scan(name, disks):
            yield from disks.read_sequential(8)  # 2 chunks, same fold
            req = shared.request()
            yield req
            try:
                trace.append((name, env.now))
                yield Timeout(env, 0.010)
            finally:
                shared.release(req)

        env.process(scan("first", first))
        env.process(scan("second", second))
        env.run()
        return trace

    trace_a = run(False)
    trace_b = run(True)
    assert trace_a == trace_b
    # Both scans finish at the same instant; creation order must decide the
    # shared grant, so the batched scan waits out the pacemaker's hold.
    assert trace_b[0][0] == "first"
    assert trace_b[1][1] == trace_b[0][1] + 0.010


def test_cpu_split_wake_keeps_tie_break_at_shared_boundary():
    # CPU analog of the disk tie-break regression: OLTP preempts a quantum
    # macro at 7 ms (split boundary 10 ms) while an interloper's request
    # lands exactly on the 10 ms boundary, pushed between the quantum start
    # (5 ms) and the preemption.  Unbatched, the holder's slice timeout pops
    # first at 10 ms (older event id): release, OLTP regrant, holder
    # re-queues *before* the interloper.  The split wake must keep that
    # order.  The interloper's landing event is pushed at 6 ms -- after the
    # quantum started (5 ms) but before the preemption (7 ms) -- so only a
    # wake holding the quantum-start event id beats it.
    def workload(env, cpu, trace):
        def holder():
            yield from cpu.consume(1_000_000)  # 10 quanta of 5 ms
            trace.append(("holder", env.now))

        def oltp():
            yield Timeout(env, 0.007)
            yield from cpu.consume(10_000, priority=PRIORITY_OLTP)
            trace.append(("oltp", env.now))

        def interloper():
            yield Timeout(env, 0.006)
            yield Timeout(env, 0.010 - env.now)  # lands exactly at 10 ms
            yield from cpu.consume(50_000)
            trace.append(("interloper", env.now))

        env.process(holder())
        env.process(oltp())
        env.process(interloper())

    _, _, trace_a = _run_cpu(False, workload)
    _, _, trace_b = _run_cpu(True, workload)
    assert trace_a == trace_b


# ---------------------------------------------------------------------------
# network transfer chains
# ---------------------------------------------------------------------------

def test_network_transfer_chain_is_bit_identical_and_saves_events():
    sizes = [4_096, 8_192, 20_000, 100]

    def run(chain):
        env = Environment()
        net = Network(env, NetworkConfig(), InstructionCosts())
        done = []

        def sender():
            if chain:
                yield from net.transfer_chain(sizes)
            else:
                for nbytes in sizes:
                    yield from net.transfer(nbytes)
            done.append(env.now)

        env.process(sender())
        env.run()
        return env, net, done

    env_a, net_a, done_a = run(chain=False)
    env_b, net_b, done_b = run(chain=True)
    assert done_a == done_b  # end time folds the same float additions
    assert (net_a.messages_sent, net_a.packets_sent, net_a.bytes_sent) == (
        net_b.messages_sent,
        net_b.packets_sent,
        net_b.bytes_sent,
    )
    assert env_b.events_dispatched < env_a.events_dispatched
    assert env_b.events_coalesced > 0


# ---------------------------------------------------------------------------
# fault injection vs coalescing (PR 8)
# ---------------------------------------------------------------------------

def test_cpu_degrade_mid_macro_is_bit_identical():
    # A fault injector halves the CPU speed at 7 ms, mid-macro (quantum
    # boundaries every 5 ms).  The injector splits any active batch first
    # (FaultRuntime._apply_speed), so elapsed quanta are accounted at the
    # old speed and the remainder re-runs at the new one -- exactly what
    # the unbatched loop's per-slice config re-read produces.
    from dataclasses import replace

    def workload(env, cpu, trace):
        def work():
            yield from cpu.consume(1_000_000)  # 10 quanta of 5 ms
            trace.append(("done", env.now))
            trace.append(("busy", cpu.resource.snapshot()))

        def fault():
            yield Timeout(env, 0.007)
            batch = cpu.resource._batch
            if batch is not None:
                batch.preempt()
            cpu.config = replace(cpu.config, mips=cpu.config.mips * 0.5)

        env.process(work())
        env.process(fault())

    _, _, trace_a = _run_cpu(False, workload)
    _, _, trace_b = _run_cpu(True, workload)
    assert trace_a == trace_b
    # Quanta 1-2 run at 5 ms (the swap lands mid-quantum-2, which finishes
    # at the old speed), the remaining 8 at 10 ms: done at 90 ms.
    assert trace_b[0] == ("done", pytest.approx(0.090))


def test_cpu_crash_mid_macro_matches_unbatched_cleanup():
    # A crash kills the holder at 7 ms, mid-macro.  Process.kill() closes
    # the generator: consume()'s finally blocks sync the batch's elapsed
    # accounting and release the CPU, so a competitor's grant time and the
    # busy-time integral match the unbatched run exactly.
    def workload(env, cpu, trace):
        def work():
            yield from cpu.consume(1_000_000)
            trace.append(("done", env.now))  # must never fire

        def competitor():
            yield Timeout(env, 0.009)
            yield from cpu.consume(100_000)
            trace.append(("competitor", env.now))
            trace.append(("busy", cpu.resource.snapshot()))

        victim = env.process(work())

        def fault():
            yield Timeout(env, 0.007)
            victim.kill()

        env.process(fault())
        env.process(competitor())

    _, _, trace_a = _run_cpu(False, workload)
    _, _, trace_b = _run_cpu(True, workload)
    assert trace_a == trace_b
    assert trace_b[0][0] == "competitor"
    # The victim never completes; the CPU frees at the kill instant, so the
    # competitor runs uncontended 9..14 ms.
    assert trace_b[0][1] == pytest.approx(0.014)
    assert all(entry[0] != "done" for entry in trace_b)


def test_disk_degrade_mid_chain_is_bit_identical():
    # Disk analog: the straggler swap lands inside the first chunk of a
    # coalesced sequential chain.  The in-progress chunk finishes at the
    # speed it started with (its service time was fixed at the disk grant);
    # later chunks re-read the config -- batched and unbatched alike.
    from dataclasses import replace

    def slow(config, factor):
        # Mirrors FaultRuntime._apply_speed: factor scales speed, so the
        # per-page and access times divide by it.
        return replace(
            config,
            controller_service_time=config.controller_service_time / factor,
            transmission_time_per_page=config.transmission_time_per_page / factor,
            avg_access_time=config.avg_access_time / factor,
            prefetch_delay_per_page=config.prefetch_delay_per_page / factor,
        )

    def workload(env, disks, trace):
        def io():
            yield from disks.read_sequential(12)  # 3 chunks of 4 pages
            trace.append(("done", env.now, disks.physical_ios))
            trace.append(("busy", disks.snapshot()))

        def fault():
            yield Timeout(env, 0.010)  # inside the first chunk
            batch = disks._batch
            if batch is not None:
                batch.preempt()
            disks.config = slow(disks.config, 0.5)

        env.process(io())
        env.process(fault())

    _, _, trace_a = _run_disk(False, workload)
    _, _, trace_b = _run_disk(True, workload)
    assert trace_a == trace_b
    assert trace_b[0][0] == "done"


def test_network_chain_with_contention_falls_back_to_per_message():
    env = Environment()
    net = Network(env, NetworkConfig(), InstructionCosts(), model_contention=True)

    def sender():
        yield from net.transfer_chain([8_192, 8_192])

    env.process(sender())
    env.run()
    assert net.messages_sent == 2
    assert env.events_coalesced == 0
