"""Unit tests for value and time-weighted monitors."""

import pytest

from repro.sim import Environment, TimeWeightedMonitor, ValueMonitor


def test_value_monitor_basic_stats():
    mon = ValueMonitor("rt")
    for value in [1.0, 2.0, 3.0, 4.0]:
        mon.record(value)
    assert mon.count == 4
    assert mon.mean == pytest.approx(2.5)
    assert mon.minimum == 1.0
    assert mon.maximum == 4.0
    assert mon.stddev == pytest.approx(1.2909944, rel=1e-6)


def test_value_monitor_percentiles():
    mon = ValueMonitor()
    for value in range(1, 101):
        mon.record(float(value))
    assert mon.percentile(50) == pytest.approx(50.5)
    assert mon.percentile(0) == 1.0
    assert mon.percentile(100) == 100.0


def test_value_monitor_percentile_bounds():
    mon = ValueMonitor()
    mon.record(1.0)
    with pytest.raises(ValueError):
        mon.percentile(101)


def test_value_monitor_empty():
    mon = ValueMonitor()
    assert mon.mean == 0.0
    assert mon.percentile(50) == 0.0
    assert mon.confidence_interval() == 0.0


def test_value_monitor_reset():
    mon = ValueMonitor()
    mon.record(10.0)
    mon.reset()
    assert mon.count == 0
    assert mon.mean == 0.0


def test_value_monitor_running_extrema_survive_reset():
    """minimum/maximum are running values; reset must re-arm them."""
    mon = ValueMonitor()
    mon.record(10.0)
    mon.record(-5.0)
    assert (mon.minimum, mon.maximum) == (-5.0, 10.0)
    mon.reset()
    assert (mon.minimum, mon.maximum) == (0.0, 0.0)  # empty convention
    mon.record(3.0)
    assert (mon.minimum, mon.maximum) == (3.0, 3.0)
    mon.record(7.0)
    mon.record(1.0)
    assert (mon.minimum, mon.maximum) == (1.0, 7.0)
    # Percentile cache invalidation across records.
    assert mon.percentile(50) == 3.0
    mon.record(9.0)
    assert mon.percentile(100) == 9.0


def test_value_monitor_confidence_interval_shrinks_with_samples():
    small = ValueMonitor()
    large = ValueMonitor()
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    for value in data:
        small.record(value)
    for value in data * 20:
        large.record(value)
    assert large.confidence_interval() < small.confidence_interval()


def test_time_weighted_monitor_average():
    env = Environment()
    mon = TimeWeightedMonitor(env, initial=0.0)

    def proc():
        yield env.timeout(10)
        mon.update(4.0)
        yield env.timeout(10)
        mon.update(0.0)
        yield env.timeout(20)

    env.process(proc())
    env.run()
    # 0 for 10, 4 for 10, 0 for 20 => average = 40/40 = 1.0
    assert mon.time_average() == pytest.approx(1.0)
    assert mon.maximum == 4.0


def test_time_weighted_monitor_add_and_reset():
    env = Environment()
    mon = TimeWeightedMonitor(env, initial=2.0)

    def proc():
        yield env.timeout(5)
        mon.add(3.0)
        mon.reset()
        yield env.timeout(5)

    env.process(proc())
    env.run()
    assert mon.value == 5.0
    assert mon.time_average() == pytest.approx(5.0)
