"""Edge semantics the hot-path overhaul must preserve.

These pin the subtle kernel behaviours the PR 5 refactor (synchronous
fast-path resume, lazy callback lists, heap-based priority queues, lazy
request cancellation) is required to keep intact.
"""

import time

from repro.sim import Environment, Interrupt, PriorityResource, Resource, Store


# ---------------------------------------------------------------------------
# interrupts racing triggered-but-unprocessed targets
# ---------------------------------------------------------------------------

def test_interrupt_of_process_whose_target_already_triggered():
    """Interrupting a waiter whose target has *triggered* (scheduled, not yet
    processed) must deliver the Interrupt and not the target's value."""
    env = Environment()
    log = []

    def waiter():
        event = env.event()
        # Trigger now: the event sits in the heap, unprocessed.
        event.succeed("target-value")
        try:
            value = yield event
            log.append(("value", value))
        except Interrupt as interrupt:
            log.append(("interrupt", interrupt.cause))

    def interrupter(process):
        # Same simulated instant: the target is triggered but unprocessed
        # when the interrupt lands.
        process.interrupt("too-late")
        return
        yield  # pragma: no cover - makes this a generator

    process = env.process(waiter())
    env.process(interrupter(process))
    env.run()
    assert log == [("interrupt", "too-late")]


def test_interrupted_process_can_wait_again():
    """After an interrupt, yielding a fresh event must still work."""
    env = Environment()
    log = []

    def waiter():
        try:
            yield env.timeout(10.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(1.0)
        log.append(("resumed", env.now))

    def interrupter(process):
        yield env.timeout(2.0)
        process.interrupt()

    process = env.process(waiter())
    env.process(interrupter(process))
    env.run()
    assert log == [("interrupted", 2.0), ("resumed", 3.0)]


# ---------------------------------------------------------------------------
# Request.cancel racing a grant
# ---------------------------------------------------------------------------

def test_cancel_after_grant_is_noop():
    """Cancelling a request that was already granted must not free the slot."""
    env = Environment()
    server = Resource(env, capacity=1)

    req = server.request()
    assert req.triggered  # granted immediately
    req.cancel()
    assert not req.cancelled
    assert server.count == 1
    server.release(req)
    assert server.count == 0


def test_cancel_racing_grant_passes_slot_to_next_waiter():
    """A queued request cancelled before the release that would grant it must
    be skipped, and the slot must go to the next live waiter."""
    env = Environment()
    server = Resource(env, capacity=1)
    log = []

    holder = server.request()
    doomed = server.request()
    survivor = server.request()

    def canceller():
        yield env.timeout(1.0)
        doomed.cancel()
        server.release(holder)

    def watcher():
        yield survivor
        log.append(("granted", env.now))
        server.release(survivor)

    env.process(canceller())
    env.process(watcher())
    env.run()
    assert log == [("granted", 1.0)]
    assert doomed.cancelled
    assert not doomed.triggered
    assert server.queue_length == 0


def test_release_of_ungranted_request_cancels_it():
    env = Environment()
    server = Resource(env, capacity=1)
    holder = server.request()
    waiting = server.request()
    assert server.queue_length == 1
    server.release(waiting)  # context-manager exit path for ungranted requests
    assert waiting.cancelled
    assert server.queue_length == 0
    server.release(holder)
    assert server.count == 0


# ---------------------------------------------------------------------------
# PriorityResource: cancellation churn regression (satellite task)
# ---------------------------------------------------------------------------

def test_priority_cancellation_churn_preserves_grant_order():
    """Cancel many queued requests and assert the survivors are granted in
    exact (priority, arrival) order."""
    env = Environment()
    cpu = PriorityResource(env, capacity=1)
    log = []

    holder = cpu.request(priority=0)
    requests = []
    for index in range(200):
        requests.append((index, cpu.request(priority=index % 3)))
    # Cancel everything except one survivor per priority level.
    survivors = {1: None, 2: None, 0: None}
    for index, req in requests:
        priority = index % 3
        if survivors[priority] is None:
            survivors[priority] = (index, req)
        else:
            req.cancel()

    def consumer(index, req):
        yield req
        log.append(index)
        cpu.release(req)

    for priority in (0, 1, 2):
        index, req = survivors[priority]
        env.process(consumer(index, req))

    def releaser():
        yield env.timeout(1.0)
        cpu.release(holder)

    env.process(releaser())
    env.run()
    # Grant order: priority 0 first (arrival 0), then priority 1 (arrival 1),
    # then priority 2 (arrival 2).
    assert log == [0, 1, 2]
    assert cpu.queue_length == 0


def test_priority_cancellation_churn_not_quadratic():
    """Queue/cancel N requests for growing N; the per-request cost must not
    blow up quadratically (the old implementation rebuilt the whole queue on
    every exhausted scan)."""

    def churn(n: int) -> float:
        env = Environment()
        cpu = PriorityResource(env, capacity=1)
        holder = cpu.request(priority=0)
        start = time.perf_counter()
        doomed = [cpu.request(priority=5) for _ in range(n)]
        for req in doomed:
            req.cancel()
        cpu.release(holder)
        env.run()
        return time.perf_counter() - start

    churn(500)  # warm-up
    small = min(churn(1_000) for _ in range(3))
    large = min(churn(8_000) for _ in range(3))
    # 8x the requests: allow generous noise, but far below the ~64x of a
    # quadratic implementation.
    assert large < small * 32, (small, large)


# ---------------------------------------------------------------------------
# Store.get(filter_fn) head-of-line behaviour
# ---------------------------------------------------------------------------

def test_store_filtered_getter_blocks_later_getters():
    """Getters are served strictly FIFO: a head-of-line getter whose filter
    matches nothing blocks later getters even if their filters match."""
    env = Environment()
    store = Store(env)
    log = []

    def getter(name, filter_fn):
        item = yield store.get(filter_fn)
        log.append((name, item, env.now))

    env.process(getter("picky", lambda item: item >= 100))
    env.process(getter("easy", None))

    def producer():
        yield env.timeout(1.0)
        yield store.put(1)  # matches "easy" only -- must NOT be delivered yet
        yield env.timeout(1.0)
        yield store.put(100)  # unblocks "picky"; then "easy" gets item 1

    env.process(producer())
    env.run()
    assert log == [("picky", 100, 2.0), ("easy", 1, 2.0)]


def test_store_filter_takes_first_match_not_head():
    """A matching filter removes the first matching item, not the head."""
    env = Environment()
    store = Store(env)
    log = []

    def run():
        yield store.put("a")
        yield store.put("b")
        yield store.put("c")
        item = yield store.get(lambda i: i == "b")
        log.append(item)
        item = yield store.get()
        log.append(item)

    env.process(run())
    env.run()
    assert log == ["b", "a"]
    assert list(store.items) == ["c"]
