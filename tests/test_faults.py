"""Fault-injection & elasticity subsystem (PR 8).

Covers the declarative plan layer (parse / encode / canonicalise), the
``failures`` sweep axis (expansion, labels, cache keys, JSON and pickle
round-trips), and the runtime injector end to end: crashes kill and
resubmit in-flight work, recovery drains held transactions, stragglers
swap hardware speeds deterministically, membership changes model explicit
rebalancing work, and scheduling excludes dead PEs.  Determinism is pinned
the same way the kernel PRs pin it: exact ``==`` on serialised results,
across coalescing modes and hash seeds.
"""

import dataclasses
import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.scenarios import homogeneous_config, mixed_workload_config
from repro.faults.plan import (
    FaultEvent,
    canonical_failures,
    decode_failures,
    encode_failures,
    expand_events,
    failures_label,
    parse_fault,
)
from repro.runner import ResultCache, ScenarioSpec, Sweep
from repro.runner.spec import point_from_payload
from repro.simulation.driver import SimulationDriver


# -- plan layer ---------------------------------------------------------------------
def test_fault_event_encode_decode_round_trip():
    events = (
        FaultEvent(time=15.0, kind="pe_crash", pe=1, duration=15.0),
        FaultEvent(time=20.0, kind="degrade", pe=2, factor=0.25, duration=10.0),
    )
    entry = encode_failures(events)
    assert decode_failures(entry) == events
    assert canonical_failures(entry) == entry
    assert canonical_failures(None) is None
    assert encode_failures(()) is None


def test_fault_event_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultEvent(time=1.0, kind="meteor")
    with pytest.raises(ValueError, match="time"):
        FaultEvent(time=-1.0, kind="pe_crash")
    with pytest.raises(ValueError, match="factor"):
        FaultEvent(time=1.0, kind="degrade", factor=0.0)
    with pytest.raises(ValueError, match="duration"):
        FaultEvent(time=1.0, kind="pe_add", duration=5.0)
    with pytest.raises(ValueError, match="duration"):
        FaultEvent(time=1.0, kind="pe_crash", duration=-2.0)


def test_parse_fault_aliases_and_keys():
    assert parse_fault("crash@15:pe=1:duration=15") == FaultEvent(
        time=15.0, kind="pe_crash", pe=1, duration=15.0
    ).encode()
    assert parse_fault("degrade@5:pe=2:factor=0.5") == FaultEvent(
        time=5.0, kind="degrade", pe=2, factor=0.5
    ).encode()
    assert parse_fault("add@10:pe=3:pages=64") == FaultEvent(
        time=10.0, kind="pe_add", pe=3, pages=64
    ).encode()
    for bad in ("bogus@5", "crash", "crash@x", "crash@5:pe=", "crash@5:wat=1"):
        with pytest.raises(ValueError):
            parse_fault(bad)


def test_parse_fault_rack_surge_drain_keys():
    assert parse_fault("crash@15:rack=1:duration=15") == FaultEvent(
        time=15.0, kind="pe_crash", rack=1, duration=15.0
    ).encode()
    assert parse_fault("crash@15:pe=1:surge=3") == FaultEvent(
        time=15.0, kind="pe_crash", pe=1, surge=3.0
    ).encode()
    assert parse_fault("remove@20:pe=5:drain=true") == FaultEvent(
        time=20.0, kind="pe_remove", pe=5, drain=True
    ).encode()
    assert parse_fault("remove@20:pe=5:drain=no") == FaultEvent(
        time=20.0, kind="pe_remove", pe=5, drain=False
    ).encode()


def test_parse_fault_is_strict_and_names_the_offending_token():
    # Unknown keys name themselves and the full token.
    with pytest.raises(ValueError, match=r"malformed fault option 'wat=1'"):
        parse_fault("crash@5:wat=1")
    # Duplicate keys are rejected, naming the key and the token.
    with pytest.raises(ValueError, match=r"duplicate fault option 'pe'.*crash@5:pe=1:pe=2"):
        parse_fault("crash@5:pe=1:pe=2")
    # Negative time / duration / restart_delay are rejected with the token.
    with pytest.raises(ValueError, match=r"invalid fault 'crash@-5:pe=1'"):
        parse_fault("crash@-5:pe=1")
    with pytest.raises(ValueError, match=r"invalid fault 'crash@5:pe=1:duration=-1'"):
        parse_fault("crash@5:pe=1:duration=-1")
    with pytest.raises(ValueError, match=r"restart_delay"):
        parse_fault("remove@5:pe=1:restart_delay=-2")
    # Keys only valid for specific kinds stay rejected through the parser.
    with pytest.raises(ValueError, match=r"invalid fault 'degrade@5:pe=1:surge=2'"):
        parse_fault("degrade@5:pe=1:surge=2")
    with pytest.raises(ValueError, match=r"drain"):
        parse_fault("crash@5:pe=1:drain=true")
    with pytest.raises(ValueError, match=r"drain"):
        parse_fault("remove@5:pe=1:drain=maybe")


def test_duration_sugar_expands_to_inverse_events():
    declared = (FaultEvent(time=15.0, kind="pe_crash", pe=1, duration=15.0),)
    expanded = expand_events(declared)
    kinds = [(event.time, event.kind) for event in expanded]
    assert kinds == [(15.0, "pe_crash"), (30.0, "pe_recover")]
    # Derived events sort after declared ones at the same instant.
    pair = expand_events(
        (
            FaultEvent(time=10.0, kind="degrade", pe=0, factor=0.5, duration=5.0),
            FaultEvent(time=15.0, kind="pe_crash", pe=1),
        )
    )
    assert [(e.time, e.kind) for e in pair] == [
        (10.0, "degrade"),
        (15.0, "pe_crash"),
        (15.0, "restore"),
    ]


def test_failures_label_is_stable_and_compact():
    assert failures_label(None) == "none"
    entry = encode_failures(
        (
            FaultEvent(time=15.0, kind="pe_crash", pe=1, duration=15.0),
            FaultEvent(time=20.0, kind="degrade", pe=2, factor=0.5),
        )
    )
    assert failures_label(entry) == "crash1@15+deg2@20"


# -- sweep axis ---------------------------------------------------------------------
def _tiny_faulted_spec(failures_axis):
    sweep = Sweep(
        kind="timeline",
        scenario="homogeneous",
        strategies=("OPT-IO-CPU",),
        system_sizes=(4,),
        rates=(0.25,),
        timeline_window=2.0,
        failures=failures_axis,
        series="{strategy} [{failures}]",
    )
    return ScenarioSpec(
        name="t", title="t", x_label="# PE", sweeps=(sweep,), max_simulated_time=8.0
    )


CRASH_PLAN = encode_failures((FaultEvent(time=2.0, kind="pe_crash", pe=1, duration=3.0),))


def test_failures_axis_expands_labels_and_cache_keys(tmp_path):
    points = _tiny_faulted_spec((None, CRASH_PLAN)).points()
    assert [point.series for point in points] == [
        "OPT-IO-CPU [none]",
        "OPT-IO-CPU [crash1@2]",
    ]
    assert points[0].failures is None
    assert points[1].failures == CRASH_PLAN
    cache = ResultCache(root=tmp_path)
    assert cache.key(points[0]) != cache.key(points[1])
    # Fault-free points canonicalise to None: their key is unchanged by the
    # axis joining the payload (same expansion as a spec without the axis).
    legacy = _tiny_faulted_spec((None,)).points()
    assert cache.key(points[0]) == cache.key(legacy[0])


def test_faulted_points_survive_pickle_and_json():
    points = _tiny_faulted_spec((CRASH_PLAN,)).points()
    assert pickle.loads(pickle.dumps(points)) == points
    payload = json.loads(json.dumps(dataclasses.asdict(points[0])))
    assert point_from_payload(payload) == points[0]


def test_sweep_rejects_malformed_failures_entries():
    with pytest.raises(ValueError):
        _tiny_faulted_spec(((("time", -5.0), ("kind", "pe_crash")),)).points()
    with pytest.raises(ValueError):
        _tiny_faulted_spec(((("kind", "meteor"),),)).points()


# -- runtime ------------------------------------------------------------------------
def test_fault_runtime_rejects_empty_plan_and_bad_pe():
    from repro.faults.injector import FaultRuntime

    driver = SimulationDriver(homogeneous_config(4))
    with pytest.raises(ValueError, match="non-empty"):
        FaultRuntime(driver.system, ())
    with pytest.raises(ValueError, match="PE 9"):
        SimulationDriver(
            homogeneous_config(4),
            faults=(FaultEvent(time=1.0, kind="pe_crash", pe=9),),
        )


def test_crash_kills_resubmits_and_recovers():
    driver = SimulationDriver(
        homogeneous_config(4),
        faults=decode_failures(CRASH_PLAN),
    )
    result = driver.run_timed(10.0, timeline_window=2.0)
    runtime = driver.system.faults
    assert runtime.injected == 2  # crash + derived recover
    assert runtime.kills >= 1
    assert runtime.resubmits >= 1
    # New arrivals during the outage are held (data on the dead PE), then
    # drained at recovery.
    assert runtime.holds >= 1
    assert not runtime._held
    # Availability dips only while the PE is down ([2, 5) of a 4-PE pool).
    availability = [window.availability for window in result.timeline]
    assert availability[0] == 1.0
    assert availability[1] == pytest.approx(0.75)  # [2,4): fully down
    assert availability[2] == pytest.approx(0.875)  # [4,6): down half the window
    assert availability[3:] == [1.0, 1.0]
    anomalies = [window.anomaly for window in result.timeline]
    assert anomalies[1] == "pe_crash:pe1"
    assert anomalies[3] == ""


def test_crash_differs_from_clean_run_and_is_deterministic():
    def run(faults):
        driver = SimulationDriver(homogeneous_config(4), faults=faults)
        return driver.run_timed(10.0, timeline_window=2.0).to_dict()

    clean = run(None)
    faulted = run(decode_failures(CRASH_PLAN))
    assert faulted != clean
    assert run(decode_failures(CRASH_PLAN)) == faulted


def test_degrade_is_identical_across_coalescing_modes(monkeypatch):
    plan = (FaultEvent(time=2.0, kind="degrade", pe=1, factor=0.25, duration=3.0),)

    def run():
        driver = SimulationDriver(mixed_workload_config(4), faults=plan)
        return driver.run_timed(8.0, timeline_window=2.0).to_dict()

    monkeypatch.setenv("REPRO_COALESCE", "1")
    batched = run()
    monkeypatch.setenv("REPRO_COALESCE", "0")
    assert run() == batched


def test_crash_is_identical_across_coalescing_modes(monkeypatch):
    def run():
        driver = SimulationDriver(
            mixed_workload_config(4), faults=decode_failures(CRASH_PLAN)
        )
        return driver.run_timed(8.0, timeline_window=2.0).to_dict()

    monkeypatch.setenv("REPRO_COALESCE", "1")
    batched = run()
    monkeypatch.setenv("REPRO_COALESCE", "0")
    assert run() == batched


def test_dead_pe_leaves_scheduling_pool():
    driver = SimulationDriver(
        homogeneous_config(4),
        faults=(FaultEvent(time=1.0, kind="pe_crash", pe=2),),  # never recovers
    )
    driver.system.start()
    driver.env.run(until=2.0)
    runtime = driver.system.faults
    assert runtime.eligible_processors() == (0, 1, 3)
    control = driver.system.control_node
    assert not control.status_of(2).available
    assert 2 not in [status.pe_id for status in control.nodes_by_cpu()]


def test_degraded_pe_is_down_weighted_not_excluded():
    driver = SimulationDriver(
        homogeneous_config(4),
        faults=(FaultEvent(time=1.0, kind="degrade", pe=2, factor=0.25),),
    )
    driver.system.start()
    driver.env.run(until=2.0)
    control = driver.system.control_node
    status = control.status_of(2)
    assert status.available
    assert status.speed_factor == 0.25
    ranked = [s.pe_id for s in control.nodes_by_cpu()]
    assert set(ranked) == {0, 1, 2, 3}
    assert ranked[-1] == 2  # slowest effective capacity ranks last


def test_membership_changes_model_rebalancing_work():
    # pe_add: the target starts outside the pool and joins after shipping
    # pages; pe_remove: leaves immediately and drains pages out.
    add = SimulationDriver(
        homogeneous_config(4),
        faults=(FaultEvent(time=1.0, kind="pe_add", pe=3, pages=32),),
    )
    add.system.start()
    assert add.system.faults.eligible_processors() == (0, 1, 2)
    add.env.run(until=5.0)
    assert add.system.faults.eligible_processors() == (0, 1, 2, 3)
    assert add.system.faults.rebalanced_pages == 32

    remove = SimulationDriver(
        homogeneous_config(4),
        faults=(FaultEvent(time=1.0, kind="pe_remove", pe=3, pages=32),),
    )
    remove.system.start()
    remove.env.run(until=0.5)
    assert remove.system.faults.eligible_processors() == (0, 1, 2, 3)
    remove.env.run(until=5.0)
    assert remove.system.faults.eligible_processors() == (0, 1, 2)
    assert remove.system.faults.rebalanced_pages == 32


def test_window_stats_empty_pool_availability_guard():
    # All PEs out of the pool -> 0/0 availability folds to 1.0 (nothing was
    # expected of an empty pool), not ZeroDivisionError.
    driver = SimulationDriver(
        homogeneous_config(2),
        faults=(
            FaultEvent(time=1.0, kind="pe_remove", pe=0, pages=0),
            FaultEvent(time=1.0, kind="pe_remove", pe=1, pages=0),
        ),
    )
    driver.system.start()
    driver.env.run(until=3.0)
    availability, _ = driver.system.faults.window_stats(2.0, 3.0)
    assert availability == 1.0
    # The (instantaneous, zero-page) removes do label the window they
    # happened in.
    _, anomaly = driver.system.faults.window_stats(0.5, 1.5)
    assert "pe_remove:pe0" in anomaly


# -- scenario + hash-seed determinism -----------------------------------------------
def test_faults_scenario_registered_with_expected_series():
    from repro.experiments.faults import build_spec

    spec = build_spec(system_sizes=(4,), max_simulated_time=20.0)
    series = {point.series for point in spec.points()}
    assert series == {
        "OPT-IO-CPU [none]",
        "OPT-IO-CPU [crash1@15]",
        "OPT-IO-CPU [deg1@15]",
        "psu_opt+RANDOM [none]",
        "psu_opt+RANDOM [crash1@15]",
        "psu_opt+RANDOM [deg1@15]",
    }
    with pytest.raises(ValueError, match="unknown fault plan"):
        build_spec(fault_names=("meteor",))


_HASH_SEED_SCRIPT = """\
import json
from repro.faults.plan import FaultEvent
from repro.experiments.scenarios import mixed_workload_config
from repro.simulation.driver import SimulationDriver

driver = SimulationDriver(
    mixed_workload_config(4),
    faults=(FaultEvent(time=2.0, kind="pe_crash", pe=1, duration=3.0),),
)
print(json.dumps(driver.run_timed(8.0, timeline_window=2.0).to_dict(), sort_keys=True))
"""


def test_faulted_run_invariant_under_hash_randomisation():
    """Crash cleanup iterates registries (records, lock tables, buffer
    queues); none of that may leak interpreter hash order into outcomes."""
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
    outputs = []
    for seed in ("0", "1"):
        env["PYTHONHASHSEED"] = seed
        proc = subprocess.run(
            [sys.executable, "-c", _HASH_SEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
