"""Tests for the CSV/JSON trace loader (captured arrival logs)."""

import dataclasses

import pytest

from repro.cli import main
from repro.config.parameters import SystemConfig
from repro.runner.runner import build_config, run_point_spec
from repro.runner.spec import PointSpec
from repro.workload.generator import WorkloadSpec
from repro.workload.traces import Trace, TraceRecord, generate_trace, load_trace, save_trace


def sample_trace() -> Trace:
    spec = WorkloadSpec.homogeneous_join(SystemConfig(num_pe=4))
    trace = generate_trace(spec, duration=20.0)
    assert len(trace) > 0
    return trace


@pytest.mark.parametrize("fmt", ["csv", "json"])
def test_save_load_roundtrip_is_lossless(tmp_path, fmt):
    trace = sample_trace()
    path = save_trace(trace, tmp_path / f"trace.{fmt}")
    loaded = load_trace(path)
    assert loaded.records == trace.records  # floats survive bit-exactly


def test_load_trace_sorts_unordered_records(tmp_path):
    path = tmp_path / "log.csv"
    path.write_text(
        "arrival_time,class_name\n2.5,join\n0.5,join\n1.25,oltp\n"
    )
    trace = load_trace(path)
    assert [r.arrival_time for r in trace] == [0.5, 1.25, 2.5]
    assert trace.class_counts() == {"join": 2, "oltp": 1}


def test_load_trace_accepts_bare_json_list(tmp_path):
    path = tmp_path / "log.json"
    path.write_text('[{"arrival_time": 1.5, "class_name": "join"}]')
    trace = load_trace(path)
    assert trace.records == [TraceRecord(arrival_time=1.5, class_name="join")]


def test_load_trace_rejects_bad_inputs(tmp_path):
    missing_header = tmp_path / "bad.csv"
    missing_header.write_text("time,name\n1.0,join\n")
    with pytest.raises(ValueError, match="CSV header"):
        load_trace(missing_header)
    bad_time = tmp_path / "bad2.csv"
    bad_time.write_text("arrival_time,class_name\nsoon,join\n")
    with pytest.raises(ValueError, match="non-numeric arrival_time"):
        load_trace(bad_time)
    negative = tmp_path / "bad3.json"
    negative.write_text('[{"arrival_time": -1.0, "class_name": "join"}]')
    with pytest.raises(ValueError, match="negative arrival_time"):
        load_trace(negative)
    not_a_list = tmp_path / "bad4.json"
    not_a_list.write_text('{"rows": []}')
    with pytest.raises(ValueError, match="'records' list"):
        load_trace(not_a_list)


def test_save_trace_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError, match="unknown trace format"):
        save_trace(sample_trace(), tmp_path / "trace.bin", fmt="bin")


def timeline_trace_point(**overrides) -> PointSpec:
    fields = dict(figure="f", series="s", x=4, kind="timeline",
                  scenario="homogeneous", num_pe=4, seed=42,
                  strategy="OPT-IO-CPU", max_simulated_time=10.0,
                  timeline_window=5.0, arrival_kind="trace")
    fields.update(overrides)
    return PointSpec(**fields)


@pytest.mark.parametrize("fmt", ["csv", "json"])
def test_file_trace_replays_identically_to_generated_trace(tmp_path, fmt):
    point = timeline_trace_point()
    # Materialise exactly the streams the file-less run would generate.
    spec = WorkloadSpec.for_config(build_config(point))
    path = save_trace(generate_trace(spec, 10.0), tmp_path / f"log.{fmt}")
    generated = run_point_spec(point)
    replayed = run_point_spec(
        dataclasses.replace(point, arrival_params=(("file", str(path)),))
    )
    assert replayed == generated  # captured log drives the identical run


def test_file_trace_point_rejects_unknown_params(tmp_path):
    point = timeline_trace_point(arrival_params=(("file", "x.csv"), ("speed", 2.0)))
    with pytest.raises(ValueError, match="only 'file' is supported"):
        run_point_spec(point)


def test_cli_sweep_replays_trace_file(tmp_path, capsys):
    point = timeline_trace_point()
    spec = WorkloadSpec.for_config(build_config(point))
    path = save_trace(generate_trace(spec, 10.0), tmp_path / "log.csv")
    code = main([
        "sweep", "--arrival", "trace", "--arrival-param", f"file={path}",
        "--strategies", "OPT-IO-CPU", "--sizes", "4",
        "--time-limit", "10", "--timeline-window", "5", "--no-cache",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "[trace]" in output


# -- content digest pinning (stale cache / divergent hosts) ------------------------
def test_file_trace_digest_is_verified_at_execution(tmp_path):
    import hashlib

    point = timeline_trace_point()
    spec = WorkloadSpec.for_config(build_config(point))
    path = save_trace(generate_trace(spec, 10.0), tmp_path / "log.csv")
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    pinned = dataclasses.replace(
        point, arrival_params=(("file", str(path)), ("file_sha256", digest))
    )
    plain = dataclasses.replace(point, arrival_params=(("file", str(path)),))
    assert run_point_spec(pinned) == run_point_spec(plain)
    edited = dataclasses.replace(
        pinned, arrival_params=(("file", str(path)), ("file_sha256", "0" * 64))
    )
    with pytest.raises(ValueError, match="does not match the content digest"):
        run_point_spec(edited)
    orphan = dataclasses.replace(point, arrival_params=(("file_sha256", digest),))
    with pytest.raises(ValueError, match="without a trace file"):
        run_point_spec(orphan)


def test_cli_pins_trace_file_content_into_the_cache_key(tmp_path):
    from repro.cli import _build_adhoc_spec, build_parser
    from repro.runner import ResultCache

    point = timeline_trace_point()
    spec = WorkloadSpec.for_config(build_config(point))
    path = save_trace(generate_trace(spec, 10.0), tmp_path / "log.csv")
    argv = ["sweep", "--arrival", "trace", "--arrival-param", f"file={path}",
            "--strategies", "OPT-IO-CPU", "--sizes", "4",
            "--time-limit", "10", "--timeline-window", "5", "--no-cache"]

    def built_point():
        return _build_adhoc_spec(build_parser().parse_args(argv)).points()[0]

    first = built_point()
    params = dict(first.arrival_params)
    assert len(params["file_sha256"]) == 64
    # Editing the captured log changes the digest, hence the cache key: a
    # re-run can never serve stale results for the old trace.
    path.write_text("arrival_time,class_name\n1.5,join\n")
    second = built_point()
    assert dict(second.arrival_params)["file_sha256"] != params["file_sha256"]
    cache = ResultCache(tmp_path / "cache")
    assert cache.key(first) != cache.key(second)
