"""Heterogeneous hardware classes and tiered interconnect (PR 7).

Three layers under test: the :class:`NodeClass`/:class:`TopologyConfig`
configuration model, the capacity-aware scheduling/hardware behaviour on
mixed clusters, and -- most importantly -- the *uniform fallback invariant*:
a config declaring explicitly-default hardware (all factors 1.0, flat
topology) must reproduce the historical uniform outputs byte for byte,
with event coalescing on and off.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.config.parameters import (
    InstructionCosts,
    NetworkConfig,
    NodeClass,
    TopologyConfig,
)
from repro.engine import ProcessingElement
from repro.hardware.network import Network
from repro.scheduling import (
    ControlNode,
    CostModel,
    LeastUtilizedCpuPlacement,
    LeastUtilizedMemoryPlacement,
)
from repro.sim import Environment

GOLDEN = Path(__file__).parent / "data" / "figure5_golden.csv"

#: An explicitly-default node class: same hardware as every uniform PE.
DEFAULT_CLASS = NodeClass(name="plain", fraction=1.0)

FAST_HALF = (
    NodeClass(name="fast", fraction=0.5, mips_factor=2.0, memory_factor=2.0),
)


# -- configuration model --------------------------------------------------------------
def test_node_class_validation():
    with pytest.raises(ValueError):
        NodeClass(name="x")  # needs count or fraction
    with pytest.raises(ValueError):
        NodeClass(name="x", count=2, fraction=0.5)  # not both
    with pytest.raises(ValueError):
        NodeClass(name="x", fraction=1.5)
    with pytest.raises(ValueError):
        NodeClass(name="x", count=2, mips_factor=0.0)
    assert NodeClass(name="x", fraction=0.25).resolve_count(80) == 20
    assert NodeClass(name="x", count=99).resolve_count(10) == 10
    assert NodeClass(name="x", fraction=1.0).is_default_hardware
    assert not NodeClass(name="x", fraction=1.0, disk_factor=2.0).is_default_hardware


def test_topology_validation_and_tiers():
    with pytest.raises(ValueError):
        TopologyConfig(racks=0)
    with pytest.raises(ValueError):
        TopologyConfig(racks=2, regions=3)  # more regions than racks
    with pytest.raises(ValueError):
        TopologyConfig(racks=2, cross_rack_latency_factor=0.0)
    assert TopologyConfig().is_flat
    assert TopologyConfig(racks=4).is_flat  # all factors 1.0
    topo = TopologyConfig(
        racks=4,
        regions=2,
        cross_rack_latency_factor=8.0,
        cross_region_latency_factor=25.0,
    )
    assert not topo.is_flat
    assert topo.tiers == 3
    # 16 PEs -> racks of 4, regions of 2 racks.
    assert topo.tier_between(0, 3, 16) == 0  # same rack
    assert topo.tier_between(0, 4, 16) == 1  # rack 0 vs rack 1, region 0
    assert topo.tier_between(0, 12, 16) == 2  # region 0 vs region 1
    assert topo.latency_factor(2) == 25.0


def test_node_classes_cover_contiguous_blocks():
    config = SystemConfig(num_pe=8, node_classes=FAST_HALF)
    assert [config.node_class_name(pe) for pe in range(8)] == (
        ["fast"] * 4 + ["default"] * 4
    )
    assert config.heterogeneous
    assert config.effective_cpu(0).mips == config.cpu.mips * 2.0
    assert config.effective_buffer_pages(0) == 2 * config.buffer.buffer_pages
    assert config.effective_cpu(4) is config.cpu  # remainder keeps baseline
    with pytest.raises(ValueError):
        SystemConfig(
            num_pe=4,
            node_classes=(
                NodeClass(name="big", count=3),
                NodeClass(name="huge", count=3),
            ),
        )


def test_explicit_default_class_is_transparent():
    """Default-hardware classes return the *same objects* as the uniform
    config -- the engine cannot tell the two configs apart."""
    config = SystemConfig(num_pe=4, node_classes=(DEFAULT_CLASS,))
    assert not config.heterogeneous
    for pe in range(4):
        assert config.effective_cpu(pe) is config.cpu
        assert config.effective_disk(pe) is config.disk
        assert config.effective_buffer_pages(pe) == config.buffer.buffer_pages
        assert config.cpu_factor(pe) == 1.0


# -- network tiers --------------------------------------------------------------------
def _network(topology=None, num_pe=0):
    return Network(
        Environment(), NetworkConfig(), InstructionCosts(),
        topology=topology, num_pe=num_pe,
    )


def test_flat_topology_matches_legacy_transfer_time():
    flat = _network()
    tiered_but_flat = _network(TopologyConfig(racks=4), num_pe=8)
    legacy = NetworkConfig().transfer_time(4096)
    assert flat.transfer_time(4096, src=0, dst=7) == legacy
    assert tiered_but_flat.transfer_time(4096, src=0, dst=7) == legacy


def test_cross_tier_transfers_cost_more():
    topo = TopologyConfig(
        racks=2, cross_rack_latency_factor=8.0, cross_rack_bandwidth_factor=2.0
    )
    net = _network(topo, num_pe=8)
    intra = net.transfer_time(4096, src=0, dst=3)
    cross = net.transfer_time(4096, src=0, dst=4)
    assert intra == NetworkConfig().transfer_time(4096)
    assert cross > intra
    # Multi-destination transfers pay for the farthest receiver.
    assert net.transfer_time(4096, src=0, dst=[1, 2, 4]) == cross
    # Unknown endpoints fall back to the uniform wire.
    assert net.transfer_time(4096) == intra


def test_transfer_chain_batched_equals_unbatched_with_tiers():
    topo = TopologyConfig(racks=2, cross_rack_latency_factor=8.0)

    def run(batch):
        env = Environment()
        net = Network(env, NetworkConfig(), InstructionCosts(),
                      topology=topo, num_pe=4)
        done = []

        def proc():
            if batch:
                yield from net.transfer_chain([512, 2048, 4096], src=0, dst=3)
            else:
                for nbytes in (512, 2048, 4096):
                    yield from net.transfer(nbytes, src=0, dst=3)
            done.append(env.now)

        env.process(proc())
        env.run()
        return done[0]

    assert run(batch=True) == run(batch=False)


# -- capacity-aware scheduling --------------------------------------------------------
def _hetero_system(num_pe=4):
    config = SystemConfig(num_pe=num_pe, node_classes=FAST_HALF)
    env = Environment()
    pes = [ProcessingElement(env, pe_id=i, config=config) for i in range(num_pe)]
    control = ControlNode(env, pes, config.control)
    return env, config, pes, control


def test_nodes_by_cpu_ranks_by_effective_capacity():
    env, config, pes, control = _hetero_system()

    def burn(pe, instructions):
        yield from pe.cpu.consume(instructions)

    # PE 0 (fast, 2x MIPS) at ~50% busy still has more *effective* headroom
    # than idle slow PEs; PE 1 (fast) idle outranks everything.
    env.process(burn(pes[0], 4_000_000))
    env.run(until=0.2)
    control.collect_reports()
    order = [status.pe_id for status in control.nodes_by_cpu()]
    assert order[0] == 1  # idle fast node first
    assert order[-1] != 1


def test_average_effective_cpu_utilization_weights_by_capacity():
    env, config, pes, control = _hetero_system()

    def burn(pe, instructions):
        yield from pe.cpu.consume(instructions)

    env.process(burn(pes[0], 8_000_000))  # saturate one fast PE
    env.run(until=0.2)
    control.collect_reports()
    plain = control.average_cpu_utilization()
    effective = control.average_effective_cpu_utilization()
    # The busy PE holds 2 of the cluster's 6 capacity units (2+2+1+1), so
    # its saturation weighs heavier than the plain 1-in-4 mean.
    assert effective == pytest.approx(2.0 / 6.0)
    assert plain == pytest.approx(1.0 / 4.0)


def test_psu_noio_uses_per_class_memory():
    from repro.workload import JoinQuery

    uniform = SystemConfig(num_pe=8)
    hetero = uniform.with_overrides(node_classes=FAST_HALF)
    query = JoinQuery(scan_selectivity=0.02)
    degree_uniform = CostModel(uniform).psu_no_io(query)
    degree_hetero = CostModel(hetero).psu_no_io(query)
    # Fast nodes hold twice the pages, so fewer PEs suffice.
    assert 1 < degree_hetero < degree_uniform


# -- satellite 1: deterministic placement tie-break -----------------------------------
def test_placement_fallback_sorts_before_slicing():
    """Without a control node the fallback must take the *lowest* PE ids,
    not the first ids in eligible-iteration order."""
    unsorted_eligible = [7, 2, 9, 1]
    assert LeastUtilizedCpuPlacement().select(2, unsorted_eligible, None) == [1, 2]
    assert LeastUtilizedMemoryPlacement().select(2, unsorted_eligible, None) == [1, 2]


def test_placement_ties_break_by_pe_index():
    env, config, pes, control = _hetero_system()
    control.collect_reports()  # all idle: ties everywhere
    # Fast PEs (0, 1) lead on effective headroom; ties inside a class break
    # by PE index regardless of the order eligible was passed in.
    assert LeastUtilizedCpuPlacement().select(3, [3, 1, 2, 0], control) == [0, 1, 2]
    assert LeastUtilizedCpuPlacement().select(2, [1, 0], control) == [0, 1]


# -- per-class timeline ---------------------------------------------------------------
def test_timeline_carries_class_util_only_when_heterogeneous():
    from repro.simulation.driver import SimulationDriver

    def run(node_classes):
        config = SystemConfig(num_pe=4, seed=42, node_classes=node_classes)
        driver = SimulationDriver(config, strategy="OPT-IO-CPU")
        return driver.run_timed(6.0, timeline_window=3.0)

    uniform = run(())
    hetero = run(FAST_HALF)
    assert all(window.class_util == () for window in uniform.timeline)
    for window in hetero.timeline:
        names = [entry[0] for entry in window.class_util]
        assert names == ["fast", "default"]
    # JSON round-trip keeps the per-class tuples comparable.
    from repro.metrics.timeline import Timeline

    data = json.loads(json.dumps(hetero.timeline.to_dict()))
    assert Timeline.from_dict(data) == hetero.timeline


# -- satellite 2: spec encoding round-trips -------------------------------------------
NODE_AXIS = (
    (("name", "fast"), ("fraction", 0.5), ("mips_factor", 2.0), ("memory_factor", 2.0)),
)
TOPO_AXIS = (("racks", 4), ("cross_rack_latency_factor", 8.0))


def _hetero_sweep(**kwargs):
    from repro.runner import Sweep

    return Sweep(
        scenario="homogeneous",
        strategies=("OPT-IO-CPU",),
        system_sizes=(8,),
        **kwargs,
    )


def test_point_payload_round_trips_hardware_axes():
    from repro.runner import ScenarioSpec
    from repro.runner.cache import ResultCache
    from repro.runner.spec import point_from_payload

    spec = ScenarioSpec(
        name="t", title="t", x_label="x",
        sweeps=(_hetero_sweep(node_classes=(NODE_AXIS,), topologies=(TOPO_AXIS,)),),
    )
    (point,) = spec.points()
    assert point.node_classes == NODE_AXIS
    assert point.topology == TOPO_AXIS
    assert dict(point.cache_payload())["node_classes"] == NODE_AXIS
    payload = json.loads(json.dumps(dataclasses.asdict(point)))
    rebuilt = point_from_payload(payload)
    assert rebuilt.node_classes == NODE_AXIS
    assert rebuilt.topology == TOPO_AXIS
    cache = ResultCache(root="/nonexistent")
    assert cache.key(rebuilt) == cache.key(point)


def test_explicit_default_axes_expand_to_historical_points():
    """Satellite 3, spec level: explicitly-default hardware axes are
    canonicalised away, so points (seeds, cache keys) equal the plain ones."""
    from repro.runner import ScenarioSpec

    default_axis = ((("name", "plain"), ("fraction", 1.0)),)
    flat_axis = (("racks", 1),)
    plain = ScenarioSpec(
        name="t", title="t", x_label="x",
        sweeps=(_hetero_sweep(replicates=2),),
    )
    explicit = ScenarioSpec(
        name="t", title="t", x_label="x",
        sweeps=(
            _hetero_sweep(
                replicates=2, node_classes=(default_axis,), topologies=(flat_axis,)
            ),
        ),
    )
    assert explicit.points() == plain.points()


# -- satellite 3: uniform fallback byte-identity --------------------------------------
GOLDEN_ARGS = [
    "experiment", "figure5",
    "--sizes", "10", "--joins", "8", "--time-limit", "40",
    "--replicates", "2", "--no-cache", "--export", "csv",
]


def _patch_figure5_with_default_axes(monkeypatch):
    """Re-register figure5 with explicitly-default hardware on every sweep."""
    from repro.runner import registry

    registry._ensure_populated()
    original = registry._REGISTRY["figure5"]
    default_axis = ((("name", "plain"), ("fraction", 1.0)),)
    flat_axis = (("racks", 1), ("cross_rack_latency_factor", 1.0))

    def patched(**kwargs):
        spec = original(**kwargs)
        sweeps = tuple(
            dataclasses.replace(
                sweep, node_classes=(default_axis,), topologies=(flat_axis,)
            )
            for sweep in spec.sweeps
        )
        return dataclasses.replace(spec, sweeps=sweeps)

    monkeypatch.setitem(registry._REGISTRY, "figure5", patched)


@pytest.mark.parametrize("coalesce", ["1", "0"])
def test_figure5_golden_with_explicit_default_hardware(tmp_path, monkeypatch, coalesce):
    from repro.cli import main

    monkeypatch.setenv("REPRO_COALESCE", coalesce)
    _patch_figure5_with_default_axes(monkeypatch)
    out = tmp_path / "figure5_default_hardware.csv"
    code = main(GOLDEN_ARGS + ["--workers", "1", "--output", str(out)])
    assert code == 0
    assert out.read_bytes() == GOLDEN.read_bytes()


@pytest.mark.parametrize("coalesce", ["1", "0"])
def test_figure9b_point_with_explicit_default_hardware(monkeypatch, coalesce):
    """The mixed OLTP+join point agrees field for field between the uniform
    config and its explicitly-default heterogeneous twin."""
    from repro.experiments import figure9
    from repro.runner import ParallelRunner

    monkeypatch.setenv("REPRO_COALESCE", coalesce)

    def run(with_axes):
        spec = figure9.build_spec(
            oltp_placement="B",
            system_sizes=(10,),
            strategies=("OPT-IO-CPU",),
            measured_joins=6,
            max_simulated_time=20.0,
        )
        if with_axes:
            default_axis = ((("name", "plain"), ("fraction", 1.0)),)
            spec = dataclasses.replace(
                spec,
                sweeps=tuple(
                    dataclasses.replace(
                        sweep,
                        node_classes=(default_axis,),
                        topologies=((("racks", 1),),),
                    )
                    for sweep in spec.sweeps
                ),
            )
        result = ParallelRunner(workers=1, cache=None).run(spec)
        return result.value("OPT-IO-CPU", 10).result.to_dict()

    assert run(with_axes=True) == run(with_axes=False)


# -- heterogeneous scenario -----------------------------------------------------------
def test_heterogeneous_scenario_registered_and_expands():
    from repro.runner import build_scenario

    spec = build_scenario(
        "heterogeneous",
        system_sizes=(10,),
        node_mixes=("uniform", "fast-half"),
        topology_tiers=("flat", "racks"),
    )
    points = spec.points()
    # 2 mixes x 3 strategies + 1 tiered topology x 3 strategies.
    assert len(points) == 9
    labels = {point.series for point in points}
    assert "OPT-IO-CPU [uniform]" in labels
    assert "OPT-IO-CPU [fast:0.5]" in labels
    assert "OPT-IO-CPU [fast:0.5,4r]" in labels
    hardware = [p for p in points if p.node_classes is not None]
    assert len(hardware) == 6
    with pytest.raises(ValueError):
        build_scenario("heterogeneous", node_mixes=("nope",))


def test_export_emits_window_class_rows():
    from repro.experiments.export import collect_rows
    from repro.runner import ParallelRunner, build_scenario

    spec = build_scenario(
        "heterogeneous",
        system_sizes=(4,),
        strategies=("OPT-IO-CPU",),
        node_mixes=("fast-half",),
        topology_tiers=("flat",),
        max_simulated_time=6.0,
        timeline_window=3.0,
    )
    result = ParallelRunner(workers=1, cache=None).run(spec)
    rows = collect_rows(result)
    class_rows = [row for row in rows if row["row_type"] == "window_class"]
    assert class_rows, "heterogeneous timeline export must carry per-class rows"
    assert {row["node_class"] for row in class_rows} == {"fast", "default"}
    for row in class_rows:
        for key in ("cpu_util", "disk_util", "mem_util", "window_index", "t_start"):
            assert key in row
