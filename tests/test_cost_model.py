"""Tests for the analytic cost model (psu-opt, psu-noIO, pmu-cpu)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.scheduling import CostModel
from repro.workload import JoinQuery


def model(num_pe=60, **overrides):
    return CostModel(SystemConfig(num_pe=num_pe, **overrides))


def join(selectivity=0.01):
    return JoinQuery(scan_selectivity=selectivity)


# -- formula (3.1): psu-noIO -----------------------------------------------------
def test_psu_no_io_matches_paper_values():
    """Paper §5.2: psu-noIO = 3 for 1 %; §5.2 join complexity: 1 for 0.1 %, 14 for 5 %."""
    cm = model()
    assert cm.psu_no_io(join(0.01)) == 3
    assert cm.psu_no_io(join(0.001)) == 1
    assert cm.psu_no_io(join(0.05)) == 14


def test_psu_no_io_capped_by_system_size():
    cm = model(num_pe=10)
    assert cm.psu_no_io(join(0.5)) == 10


def test_psu_no_io_grows_when_memory_shrinks():
    from dataclasses import replace

    config = SystemConfig(num_pe=60)
    small_buffer = config.with_overrides(buffer=replace(config.buffer, buffer_pages=5))
    assert CostModel(small_buffer).psu_no_io(join(0.01)) > CostModel(config).psu_no_io(join(0.01))


# -- psu-opt -------------------------------------------------------------------------
def test_psu_opt_close_to_paper_values():
    """Paper: psu-opt ~ 10 / 30 / 70 for 0.1 / 1 / 5 % selectivity."""
    cm = model()
    assert 8 <= cm.psu_opt(join(0.001)) <= 12
    assert 25 <= cm.psu_opt(join(0.01)) <= 35
    assert 60 <= cm.psu_opt(join(0.05)) <= 80


def test_psu_opt_increases_with_join_size():
    cm = model()
    assert cm.psu_opt(join(0.001)) < cm.psu_opt(join(0.01)) < cm.psu_opt(join(0.05))


def test_psu_opt_can_exceed_system_size():
    cm = model(num_pe=60)
    assert cm.psu_opt(join(0.05)) >= 60


def test_response_time_curve_is_convex_around_optimum():
    """Fig. 1a: response time falls, reaches a minimum and rises again."""
    cm = model()
    query = join(0.01)
    optimum = cm.psu_opt(query)
    at_opt = cm.estimate_response_time(query, optimum)
    assert cm.estimate_response_time(query, 1) > at_opt
    assert cm.estimate_response_time(query, optimum * 3) > at_opt


def test_estimate_rejects_invalid_degree():
    with pytest.raises(ValueError):
        model().estimate_response_time(join(), 0)


def test_estimate_response_time_positive_and_finite():
    cm = model()
    for degree in (1, 5, 30, 100):
        value = cm.estimate_response_time(join(), degree)
        assert 0 < value < 60


# -- formula (3.2): pmu-cpu --------------------------------------------------------------
def test_pmu_cpu_equals_psu_opt_when_idle():
    cm = model()
    query = join(0.01)
    capped_su_opt = min(cm.config.num_pe, cm.psu_opt(query))
    assert cm.pmu_cpu(query, 0.0) == capped_su_opt


def test_pmu_cpu_decreases_with_utilization():
    cm = model()
    query = join(0.01)
    values = [cm.pmu_cpu(query, u) for u in (0.0, 0.5, 0.8, 0.95)]
    assert values == sorted(values, reverse=True)
    assert values[-1] >= 1


def test_pmu_cpu_reduction_small_below_half_utilization():
    """Formula 3.2 reduces mostly above 50 % utilisation."""
    cm = model()
    query = join(0.01)
    assert cm.pmu_cpu(query, 0.3) >= 0.9 * cm.pmu_cpu(query, 0.0)


def test_pmu_cpu_clamps_utilization():
    cm = model()
    query = join(0.01)
    assert cm.pmu_cpu(query, 1.5) == 1 or cm.pmu_cpu(query, 1.5) >= 1
    assert cm.pmu_cpu(query, -0.5) == cm.pmu_cpu(query, 0.0)


@settings(max_examples=30, deadline=None)
@given(utilization=st.floats(min_value=0.0, max_value=1.0))
def test_pmu_cpu_always_within_bounds(utilization):
    cm = model(num_pe=40)
    value = cm.pmu_cpu(join(0.01), utilization)
    assert 1 <= value <= 40


# -- join profile ---------------------------------------------------------------------------
def test_profile_tuple_counts_match_selectivity():
    cm = model()
    profile = cm.profile(join(0.01))
    assert profile.inner_tuples == 2_500
    assert profile.outer_tuples == 10_000
    assert profile.result_tuples == 2_500
    assert profile.inner_pages == 125
    assert profile.outer_pages == 500
    assert profile.hash_table_pages == 132  # 125 * 1.05 rounded up


def test_profile_respects_result_fraction():
    cm = model()
    query = JoinQuery(scan_selectivity=0.01, result_fraction_of_inner=0.5)
    assert cm.profile(query).result_tuples == 1_250
