"""Tests for the control node, degree/placement policies and strategies."""

import pytest

from repro.config import SystemConfig
from repro.engine import ProcessingElement
from repro.scheduling import (
    ControlNode,
    CostModel,
    DynamicCpuDegree,
    FixedDegree,
    IsolatedStrategy,
    LeastUtilizedCpuPlacement,
    LeastUtilizedMemoryPlacement,
    MinIOStrategy,
    MinIOSuOptStrategy,
    OptIOCpuStrategy,
    RandomPlacement,
    SchedulingContext,
    StaticNoIODegree,
    StaticSuOptDegree,
    make_strategy,
    strategy_names,
)
from repro.scheduling.strategy import JoinPlan
from repro.sim import Environment
from repro.workload import JoinQuery


def build_system(num_pe=8, buffer_pages=50):
    from dataclasses import replace

    config = SystemConfig(num_pe=num_pe)
    config = config.with_overrides(buffer=replace(config.buffer, buffer_pages=buffer_pages))
    env = Environment()
    pes = [ProcessingElement(env, pe_id=index, config=config) for index in range(num_pe)]
    control = ControlNode(env, pes, config.control)
    cost_model = CostModel(config)
    return env, config, pes, control, cost_model


# -- control node -----------------------------------------------------------------
def test_control_node_collects_reports():
    env, config, pes, control, cost_model = build_system()

    def work():
        yield from pes[0].cpu.consume(2_000_000)  # 100 ms on a 20 MIPS CPU

    env.process(work())
    env.run(until=0.1)
    control.collect_reports()
    assert control.status_of(0).cpu_utilization > 0.5
    assert control.status_of(1).cpu_utilization == 0.0
    assert control.average_cpu_utilization() > 0.0
    assert control.reports == 1


def test_control_node_periodic_reporting():
    env, config, pes, control, cost_model = build_system()
    control.start()
    control.start()  # idempotent
    env.run(until=1.05)
    assert control.reports == 10


def test_avail_memory_sorted_descending():
    env, config, pes, control, cost_model = build_system(num_pe=4)
    # Occupy buffer pages on PE 2.
    done = []

    def reserve():
        ws = yield pes[2].buffer.reserve("q", desired_pages=30, min_pages=30)
        done.append(ws)

    env.process(reserve())
    env.run()
    control.collect_reports()
    avail = control.avail_memory()
    frees = [status.free_memory_pages for status in avail]
    assert frees == sorted(frees, reverse=True)
    assert avail[-1].pe_id == 2


def test_note_join_assignment_adapts_view():
    env, config, pes, control, cost_model = build_system(num_pe=4)
    control.collect_reports()
    before_cpu = control.status_of(1).cpu_utilization
    before_mem = control.status_of(1).free_memory_pages
    control.note_join_assignment([1], pages_per_processor=10)
    assert control.status_of(1).cpu_utilization > before_cpu
    assert control.status_of(1).free_memory_pages == before_mem - 10
    # Unknown PE ids are ignored.
    control.note_join_assignment([999], pages_per_processor=5)


def test_memory_utilization_average():
    env, config, pes, control, cost_model = build_system(num_pe=2, buffer_pages=10)

    def reserve():
        yield pes[0].buffer.reserve("q", desired_pages=5, min_pages=5)

    env.process(reserve())
    env.run()
    assert control.average_memory_utilization() == pytest.approx(0.25)


# -- degree policies ------------------------------------------------------------------
def test_fixed_degree_clamped_to_system():
    env, config, pes, control, cost_model = build_system(num_pe=4)
    assert FixedDegree(100).degree(JoinQuery(), cost_model, control) == 4
    assert FixedDegree(0).degree(JoinQuery(), cost_model, control) == 1


def test_static_degrees():
    env, config, pes, control, cost_model = build_system(num_pe=60)
    query = JoinQuery(scan_selectivity=0.01)
    assert StaticNoIODegree().degree(query, cost_model, control) == 3
    su_opt = StaticSuOptDegree().degree(query, cost_model, control)
    assert 25 <= su_opt <= 35


def test_dynamic_degree_reacts_to_cpu_load():
    env, config, pes, control, cost_model = build_system(num_pe=8)
    query = JoinQuery(scan_selectivity=0.01)
    idle_degree = DynamicCpuDegree().degree(query, cost_model, control)

    def burn(pe):
        yield from pe.cpu.consume(50_000_000)

    for pe in pes:
        env.process(burn(pe))
    env.run(until=1.0)
    control.collect_reports()
    busy_degree = DynamicCpuDegree().degree(query, cost_model, control)
    assert busy_degree < idle_degree


def test_dynamic_degree_without_control_node_uses_su_opt():
    env, config, pes, control, cost_model = build_system(num_pe=8)
    query = JoinQuery()
    assert DynamicCpuDegree().degree(query, cost_model, None) == min(
        8, cost_model.psu_opt(query)
    )


# -- placement policies ---------------------------------------------------------------
def test_random_placement_selects_requested_count():
    placement = RandomPlacement(seed=3)
    chosen = placement.select(3, list(range(10)), None)
    assert len(chosen) == 3
    assert len(set(chosen)) == 3
    assert all(pe in range(10) for pe in chosen)


def test_random_placement_clamps_to_eligible():
    placement = RandomPlacement(seed=3)
    assert len(placement.select(10, [1, 2], None)) == 2


def test_luc_placement_prefers_idle_cpus():
    env, config, pes, control, cost_model = build_system(num_pe=4)

    def burn(pe):
        yield from pe.cpu.consume(10_000_000)

    env.process(burn(pes[0]))
    env.process(burn(pes[1]))
    env.run(until=0.4)
    control.collect_reports()
    chosen = LeastUtilizedCpuPlacement().select(2, list(range(4)), control)
    assert set(chosen) == {2, 3}


def test_lum_placement_prefers_free_memory():
    env, config, pes, control, cost_model = build_system(num_pe=4)

    def reserve(pe, pages):
        yield pe.buffer.reserve("q", desired_pages=pages, min_pages=pages)

    env.process(reserve(pes[0], 40))
    env.process(reserve(pes[1], 30))
    env.run()
    control.collect_reports()
    chosen = LeastUtilizedMemoryPlacement().select(2, list(range(4)), control)
    assert set(chosen) == {2, 3}


def test_lum_adaptation_spreads_consecutive_queries():
    env, config, pes, control, cost_model = build_system(num_pe=4, buffer_pages=50)
    control.collect_reports()
    placement = LeastUtilizedMemoryPlacement()
    first = placement.select(2, list(range(4)), control, pages_per_processor=40)
    second = placement.select(2, list(range(4)), control, pages_per_processor=40)
    assert set(first).isdisjoint(set(second))


def test_placements_without_control_node_fall_back():
    assert LeastUtilizedCpuPlacement().select(2, [5, 6, 7], None) == [5, 6]
    assert LeastUtilizedMemoryPlacement().select(2, [5, 6, 7], None) == [5, 6]


# -- join plan validation -----------------------------------------------------------------
def test_join_plan_validation():
    with pytest.raises(ValueError):
        JoinPlan(degree=2, processors=(1,), pages_per_processor=5)
    with pytest.raises(ValueError):
        JoinPlan(degree=0, processors=(), pages_per_processor=5)


# -- isolated strategies --------------------------------------------------------------------
def test_isolated_strategy_name_and_plan():
    env, config, pes, control, cost_model = build_system(num_pe=8)
    control.collect_reports()
    strategy = IsolatedStrategy(StaticNoIODegree(), LeastUtilizedMemoryPlacement())
    assert strategy.name == "psu_noIO+LUM"
    context = SchedulingContext(cost_model=cost_model, control=control)
    plan = strategy.plan_join(JoinQuery(scan_selectivity=0.01), context)
    assert plan.degree == 3
    assert len(plan.processors) == 3
    assert plan.pages_per_processor >= 44  # 132 pages over 3 processors


def test_isolated_strategy_restricted_eligible_set():
    env, config, pes, control, cost_model = build_system(num_pe=8)
    control.collect_reports()
    strategy = IsolatedStrategy(StaticSuOptDegree(), RandomPlacement(seed=1))
    context = SchedulingContext(
        cost_model=cost_model, control=control, eligible_processors=[0, 1, 2]
    )
    plan = strategy.plan_join(JoinQuery(), context)
    assert set(plan.processors) <= {0, 1, 2}


# -- integrated strategies ----------------------------------------------------------------------
def test_min_io_selects_minimal_io_avoiding_degree():
    env, config, pes, control, cost_model = build_system(num_pe=8, buffer_pages=50)
    control.collect_reports()
    context = SchedulingContext(cost_model=cost_model, control=control)
    plan = MinIOStrategy().plan_join(JoinQuery(scan_selectivity=0.01), context)
    # Hash table needs 132 pages; 50 free pages per node -> 3 nodes avoid I/O.
    assert plan.degree == 3
    assert plan.expected_overflow_pages == 0
    assert plan.strategy_name == "MIN-IO"


def test_min_io_minimises_overflow_when_unavoidable():
    """Footnote 5: 10 MB requirement with 8/1/0/0 MB free -> pick 1 processor."""
    env, config, pes, control, cost_model = build_system(num_pe=4, buffer_pages=50)

    # Fill buffers so that the free pages are 40, 5, 0, 0.
    def reserve(pe, pages):
        yield pe.buffer.reserve("q", desired_pages=pages, min_pages=pages)

    env.process(reserve(pes[0], 10))
    env.process(reserve(pes[1], 45))
    env.process(reserve(pes[2], 50))
    env.process(reserve(pes[3], 50))
    env.run()
    control.collect_reports()
    context = SchedulingContext(cost_model=cost_model, control=control)
    # Need ~53 pages (selectivity 0.004 -> 50 inner pages * 1.05).
    plan = MinIOStrategy().plan_join(JoinQuery(scan_selectivity=0.004), context)
    assert plan.degree == 1
    assert plan.processors == (0,)
    assert plan.expected_overflow_pages > 0


def test_min_io_suopt_prefers_degree_near_su_opt():
    env, config, pes, control, cost_model = build_system(num_pe=40, buffer_pages=50)
    control.collect_reports()
    context = SchedulingContext(cost_model=cost_model, control=control)
    query = JoinQuery(scan_selectivity=0.01)
    min_io_plan = MinIOStrategy().plan_join(query, context2 := SchedulingContext(cost_model, control))
    suopt_plan = MinIOSuOptStrategy().plan_join(query, context)
    su_opt = cost_model.psu_opt(query)
    assert suopt_plan.degree > min_io_plan.degree
    assert abs(suopt_plan.degree - su_opt) <= abs(min_io_plan.degree - su_opt)
    assert suopt_plan.expected_overflow_pages == 0


def test_opt_io_cpu_bounded_by_pmu_cpu_under_load():
    env, config, pes, control, cost_model = build_system(num_pe=8, buffer_pages=50)

    def burn(pe):
        yield from pe.cpu.consume(40_000_000)

    for pe in pes:
        env.process(burn(pe))
    env.run(until=1.0)
    control.collect_reports()
    context = SchedulingContext(cost_model=cost_model, control=control)
    query = JoinQuery(scan_selectivity=0.01)
    plan = OptIOCpuStrategy().plan_join(query, context)
    bound = cost_model.pmu_cpu(query, control.average_cpu_utilization())
    assert plan.degree <= bound


def test_opt_io_cpu_acts_like_min_io_suopt_when_idle():
    env, config, pes, control, cost_model = build_system(num_pe=40, buffer_pages=50)
    control.collect_reports()
    query = JoinQuery(scan_selectivity=0.01)
    plan_opt = OptIOCpuStrategy().plan_join(
        query, SchedulingContext(cost_model=cost_model, control=control)
    )
    env2, config2, pes2, control2, cost_model2 = build_system(num_pe=40, buffer_pages=50)
    control2.collect_reports()
    plan_suopt = MinIOSuOptStrategy().plan_join(
        query, SchedulingContext(cost_model=cost_model2, control=control2)
    )
    assert plan_opt.degree == plan_suopt.degree


def test_opt_io_cpu_avoids_memory_loaded_nodes():
    """Fig. 9a behaviour: OPT-IO-CPU picks fewer nodes to skip busy-memory PEs."""
    env, config, pes, control, cost_model = build_system(num_pe=6, buffer_pages=50)

    def reserve(pe, pages):
        yield pe.buffer.reserve("oltp", desired_pages=pages, min_pages=pages)

    # Two nodes are nearly full (OLTP nodes).
    env.process(reserve(pes[0], 45))
    env.process(reserve(pes[1], 45))
    env.run()
    control.collect_reports()
    context = SchedulingContext(cost_model=cost_model, control=control)
    plan = OptIOCpuStrategy().plan_join(JoinQuery(scan_selectivity=0.01), context)
    assert 0 not in plan.processors
    assert 1 not in plan.processors


# -- registry ----------------------------------------------------------------------------------
def test_registry_contains_all_paper_strategies():
    names = strategy_names()
    for expected in [
        "psu_opt+RANDOM",
        "psu_opt+LUC",
        "psu_opt+LUM",
        "psu_noIO+RANDOM",
        "psu_noIO+LUM",
        "pmu_cpu+RANDOM",
        "pmu_cpu+LUM",
        "MIN-IO",
        "MIN-IO-SUOPT",
        "OPT-IO-CPU",
    ]:
        assert expected in names


def test_make_strategy_unknown_name():
    with pytest.raises(KeyError, match="unknown strategy"):
        make_strategy("nonsense")


def test_make_strategy_builds_working_instances():
    env, config, pes, control, cost_model = build_system(num_pe=8)
    control.collect_reports()
    context = SchedulingContext(cost_model=cost_model, control=control)
    for name in strategy_names():
        strategy = make_strategy(name, seed=5)
        plan = strategy.plan_join(JoinQuery(scan_selectivity=0.01), context)
        assert 1 <= plan.degree <= 8
        assert len(set(plan.processors)) == plan.degree
