"""Tests for CPU servers, disk arrays and the interconnect model."""

import pytest

from repro.config import CpuConfig, DiskConfig, InstructionCosts, NetworkConfig, MS
from repro.hardware import CpuServer, DiskArray, LruCache, Network, PRIORITY_OLTP, PRIORITY_QUERY
from repro.sim import Environment


# -- CPU -----------------------------------------------------------------------
def test_cpu_consume_takes_expected_time():
    env = Environment()
    cpu = CpuServer(env, CpuConfig(mips=20), InstructionCosts(), pe_id=0)
    done = []

    def work():
        yield from cpu.consume(50_000)
        done.append(env.now)

    env.process(work())
    env.run()
    assert done == [pytest.approx(2.5 * MS)]
    assert cpu.total_instructions == 50_000


def test_cpu_requests_are_serialised():
    env = Environment()
    cpu = CpuServer(env, CpuConfig(mips=20, cpus_per_pe=1), InstructionCosts())
    done = []

    def work(name):
        yield from cpu.consume(20_000)
        done.append((name, env.now))

    env.process(work("a"))
    env.process(work("b"))
    env.run()
    assert done[0][1] == pytest.approx(1.0 * MS)
    assert done[1][1] == pytest.approx(2.0 * MS)


def test_cpu_priority_oltp_preempts_queue_order():
    env = Environment()
    cpu = CpuServer(env, CpuConfig(mips=20), InstructionCosts())
    order = []

    def holder():
        yield from cpu.consume(100_000)
        order.append("holder")

    def query():
        yield env.timeout(0.001)
        yield from cpu.consume(10_000, priority=PRIORITY_QUERY)
        order.append("query")

    def oltp():
        yield env.timeout(0.002)
        yield from cpu.consume(10_000, priority=PRIORITY_OLTP)
        order.append("oltp")

    env.process(holder())
    env.process(query())
    env.process(oltp())
    env.run()
    assert order == ["holder", "oltp", "query"]


def test_cpu_zero_instructions_is_noop():
    env = Environment()
    cpu = CpuServer(env, CpuConfig(), InstructionCosts())

    def work():
        yield from cpu.consume(0)
        yield env.timeout(1)

    env.process(work())
    env.run()
    assert cpu.total_instructions == 0


def test_cpu_windowed_utilization():
    env = Environment()
    cpu = CpuServer(env, CpuConfig(mips=20), InstructionCosts())

    def work():
        yield from cpu.consume(100_000)  # 5 ms

    env.process(work())
    env.run(until=0.010)
    utilization = cpu.close_window()
    assert utilization == pytest.approx(0.5, rel=1e-6)
    # A second, idle window reports zero.
    env.run(until=0.020)
    assert cpu.close_window() == pytest.approx(0.0)
    assert cpu.recent_utilization == pytest.approx(0.0)


def test_cpu_overfull_window_is_logged_not_hidden(caplog):
    """A windowed utilisation beyond 1.0 means the busy-time accounting
    double-counted; it must be reported loudly, not silently clamped."""
    import logging

    env = Environment()
    cpu = CpuServer(env, CpuConfig(mips=20), InstructionCosts())

    def work():
        yield from cpu.consume(100_000)

    env.process(work())
    env.run(until=0.010)
    # Simulate a double-count: pretend the window started with less busy
    # time than was actually accumulated before it.
    cpu._window_start_busy = -0.010
    with caplog.at_level(logging.WARNING, logger="repro.hardware.cpu"):
        utilization = cpu.close_window()
    assert utilization == 1.0  # still clamped for downstream consumers
    assert any("exceeds 1.0" in record.message for record in caplog.records)

    # Rounding-level excursions stay quiet.
    env.run(until=0.020)

    def work2():
        yield from cpu.consume(200_000)

    env.process(work2())
    env.run(until=0.030)
    cpu._window_start_busy -= 1e-12  # sub-slack nudge over the boundary
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.hardware.cpu"):
        cpu.close_window()
    assert not caplog.records


# -- LRU cache -------------------------------------------------------------------
def test_lru_cache_hit_and_miss():
    cache = LruCache(capacity=2)
    assert cache.access("p1") is False
    assert cache.access("p1") is True
    assert cache.access("p2") is False
    assert cache.access("p3") is False  # evicts p1
    assert cache.access("p1") is False
    assert cache.hit_ratio == pytest.approx(1 / 5)


def test_lru_cache_zero_capacity_never_hits():
    cache = LruCache(capacity=0)
    assert cache.access("p") is False
    assert cache.access("p") is False
    assert len(cache) == 0


def test_lru_cache_insert_moves_to_end():
    cache = LruCache(capacity=2)
    cache.insert("a")
    cache.insert("b")
    cache.insert("a")  # refresh
    cache.insert("c")  # evicts b
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache


def test_lru_cache_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LruCache(capacity=-1)


# -- Disk array -------------------------------------------------------------------
def test_sequential_read_uses_prefetching():
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)
    done = []

    def io():
        yield from disks.read_sequential(4)
        done.append(env.now)

    env.process(io())
    env.run()
    # One physical I/O: 15 + 4*1 = 19 ms disk + 4 * 1.4 ms controller.
    assert done == [pytest.approx(19 * MS + 4 * 1.4 * MS)]
    assert disks.physical_ios == 1
    assert disks.pages_read == 4


def test_sequential_read_splits_into_prefetch_chunks():
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)

    def io():
        yield from disks.read_sequential(10)

    env.process(io())
    env.run()
    assert disks.physical_ios == 3  # 4 + 4 + 2 pages


def test_random_read_cache_hit_skips_disk():
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)
    times = []

    def io():
        yield from disks.read_random(page_key="p1")
        times.append(env.now)
        yield from disks.read_random(page_key="p1")
        times.append(env.now)

    env.process(io())
    env.run()
    first_duration = times[0]
    second_duration = times[1] - times[0]
    assert second_duration < first_duration
    assert disks.physical_ios == 1


def test_disk_array_balances_across_disks():
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=2), pe_id=0)
    done = []

    def io(name):
        yield from disks.read_sequential(4)
        done.append((name, env.now))

    env.process(io("a"))
    env.process(io("b"))
    env.run()
    # With two disks both I/Os proceed in parallel on the disk (controller still shared).
    assert done[0][1] < 2 * (19 * MS + 4 * 1.4 * MS)


def test_disk_utilization_accounting():
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)
    snapshot = disks.snapshot()

    def io():
        yield from disks.write_sequential(4)

    env.process(io())
    env.run(until=0.1)
    assert 0.0 < disks.utilization_since(snapshot) < 1.0
    assert disks.pages_written == 4


def test_zero_page_requests_are_noops():
    env = Environment()
    disks = DiskArray(env, DiskConfig(disks_per_pe=1), pe_id=0)

    def io():
        yield from disks.read_sequential(0)
        yield from disks.write_sequential(0)
        yield env.timeout(1)

    env.process(io())
    env.run()
    assert disks.physical_ios == 0


# -- Network -----------------------------------------------------------------------
def test_network_packet_counts():
    env = Environment()
    net = Network(env, NetworkConfig(), InstructionCosts())
    assert net.packets_for(100) == 1
    assert net.packets_for(8_192) == 1
    assert net.packets_for(8_193) == 2
    assert net.packets_for_tuples(0, 400) == 0
    assert net.packets_for_tuples(21, 400) == 2  # 8 400 bytes -> 2 packets


def test_network_cpu_costs_scale_with_packets():
    env = Environment()
    costs = InstructionCosts()
    net = Network(env, NetworkConfig(), costs)
    one_packet = net.send_instructions(1_000)
    two_packets = net.send_instructions(10_000)
    assert one_packet == costs.send_message + costs.copy_message_packet
    assert two_packets == 2 * one_packet
    assert net.receive_instructions(1_000) == costs.receive_message + costs.copy_message_packet


def test_network_transfer_advances_time_and_counts():
    env = Environment()
    net = Network(env, NetworkConfig(), InstructionCosts())
    done = []

    def xfer():
        yield from net.transfer(20_000)
        done.append(env.now)

    env.process(xfer())
    env.run()
    assert done[0] > 0
    assert net.messages_sent == 1
    assert net.packets_sent == 3
    assert net.bytes_sent == 20_000


def test_network_contention_mode_serialises_when_saturated():
    env = Environment()
    net = Network(env, NetworkConfig(), InstructionCosts(), model_contention=True, link_capacity=1)
    done = []

    def xfer(name):
        yield from net.transfer(8_192)
        done.append((name, env.now))

    env.process(xfer("a"))
    env.process(xfer("b"))
    env.run()
    assert done[1][1] == pytest.approx(2 * done[0][1])
