"""Tests for the distributed work queue, worker daemon and coordinator."""

import dataclasses
import json
import subprocess
import sys
import threading
import time

import pytest

from repro.runner import (
    DistributedRunner,
    ParallelRunner,
    PointExecutionError,
    PointSpec,
    ScenarioSpec,
    Sweep,
    Worker,
    WorkQueue,
    point_from_payload,
)
from repro.runner.queue import DEFAULT_MAX_ATTEMPTS


def tiny_spec(strategies=("OPT-IO-CPU",), **kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="tiny",
        title="tiny sweep",
        x_label="# PE",
        sweeps=(
            Sweep(kind="multi", scenario="homogeneous", strategies=strategies,
                  system_sizes=(10,)),
        ),
        measured_joins=5,
        max_simulated_time=20.0,
        **kwargs,
    )


def make_point(**overrides) -> PointSpec:
    fields = dict(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                  num_pe=10, seed=42, strategy="OPT-IO-CPU", measured_joins=5,
                  max_simulated_time=20.0)
    fields.update(overrides)
    return PointSpec(**fields)


# -- task identity ----------------------------------------------------------------
def test_point_payload_roundtrips_through_json():
    point = make_point(config_overrides=(("buffer.buffer_pages", 25),),
                       arrival_params=(("surge_factor", 2.0),),
                       arrival_kind="step", kind="timeline", timeline_window=2.0,
                       measured_joins=None, warmup_joins=None)
    payload = json.loads(json.dumps(dataclasses.asdict(point)))
    rebuilt = point_from_payload(payload)
    assert rebuilt == point


def test_task_id_is_the_cache_key_and_ignores_presentation(tmp_path):
    queue = WorkQueue(tmp_path)
    point = make_point()
    assert queue.task_id(point) == queue.results.key(point)
    relabelled = dataclasses.replace(point, figure="g", series="other", x=99)
    assert queue.task_id(point) == queue.task_id(relabelled)
    # A JSON round trip (worker on another host) preserves the id.
    rebuilt = point_from_payload(json.loads(json.dumps(dataclasses.asdict(point))))
    assert queue.task_id(rebuilt) == queue.task_id(point)


# -- enqueue / resume -------------------------------------------------------------
def test_enqueue_dedupes_and_is_idempotent(tmp_path):
    queue = WorkQueue(tmp_path)
    points = tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM")).points()
    first = queue.enqueue(list(points) + [points[0]])  # duplicate point
    assert first.enqueued == 2
    assert first.total == 2
    again = queue.enqueue(points)
    assert again.enqueued == 0
    assert again.already_queued == 2
    status = queue.status()
    assert status.total == 2 and status.pending == 2


def test_enqueue_marks_preseeded_results_done(tmp_path):
    queue = WorkQueue(tmp_path)
    point = tiny_spec().points()[0]
    result = ParallelRunner(workers=1).run_points([point])[0]
    # Result stored (e.g. by a worker that died before marking): enqueue
    # notices and completes the task without any worker involvement.
    queue.results.put(point, result)
    summary = queue.enqueue([point])
    assert summary.already_done == 1
    assert queue.status().all_done


# -- leases -----------------------------------------------------------------------
def test_claim_is_exclusive(tmp_path):
    queue = WorkQueue(tmp_path)
    point = make_point()
    queue.enqueue([point])
    task_id = queue.task_id(point)
    assert queue.try_claim(task_id, "w1")
    assert not queue.try_claim(task_id, "w2")
    queue.release(task_id)
    assert queue.try_claim(task_id, "w2")


def test_stale_lease_of_dead_local_process_is_reclaimed(tmp_path):
    queue = WorkQueue(tmp_path)
    point = make_point()
    queue.enqueue([point])
    task_id = queue.task_id(point)
    assert queue.try_claim(task_id, "w1")
    # Rewrite the lease as if a (now dead) local process held it.
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    lease_path = queue._lease_path(task_id)
    lease = json.loads(lease_path.read_text())
    lease["pid"] = child.pid
    lease_path.write_text(json.dumps(lease))
    assert queue.try_claim(task_id, "w2")  # dead holder: immediate takeover
    lease = json.loads(lease_path.read_text())
    assert lease["worker"] == "w2"


def test_expired_heartbeat_is_reclaimed_live_one_is_not(tmp_path):
    queue = WorkQueue(tmp_path, lease_seconds=30.0)
    point = make_point()
    queue.enqueue([point])
    task_id = queue.task_id(point)
    assert queue.try_claim(task_id, "w1")
    lease_path = queue._lease_path(task_id)
    lease = json.loads(lease_path.read_text())
    lease["pid"] = 1  # not ours: fall through to the heartbeat check
    lease["host"] = "elsewhere"
    lease["heartbeat_at"] = time.time() - 5.0
    lease_path.write_text(json.dumps(lease))
    assert not queue.try_claim(task_id, "w2")  # heartbeat still fresh
    lease["heartbeat_at"] = time.time() - 60.0
    lease_path.write_text(json.dumps(lease))
    assert queue.try_claim(task_id, "w2")


def test_heartbeat_refreshes_only_own_lease(tmp_path):
    queue = WorkQueue(tmp_path)
    point = make_point()
    queue.enqueue([point])
    task_id = queue.task_id(point)
    assert queue.try_claim(task_id, "w1")
    before = json.loads(queue._lease_path(task_id).read_text())["heartbeat_at"]
    time.sleep(0.01)
    assert queue.heartbeat(task_id, "w1")
    after = json.loads(queue._lease_path(task_id).read_text())["heartbeat_at"]
    assert after > before
    assert not queue.heartbeat(task_id, "w2")  # not the holder


# -- worker -----------------------------------------------------------------------
def test_worker_drains_queue_and_results_match_local_run(tmp_path):
    spec = tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM"))
    local = ParallelRunner(workers=1).run_points(spec.points())
    queue = WorkQueue(tmp_path)
    queue.enqueue(spec.points())
    stats = Worker(queue, worker_id="w1", poll_interval=0.05).run()
    assert stats.executed == 2 and stats.failed == 0
    assert queue.status().all_done
    stored = [queue.load_result(point) for point in spec.points()]
    assert stored == local  # bit-identical to the in-process runner


def test_worker_respects_max_tasks_and_resumes(tmp_path):
    spec = tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM"))
    queue = WorkQueue(tmp_path)
    queue.enqueue(spec.points())
    first = Worker(queue, worker_id="w1", poll_interval=0.05).run(max_tasks=1)
    assert first.claimed == 1
    status = queue.status()
    assert status.done == 1 and status.pending == 1
    # Re-dispatching the same sweep re-enqueues only the incomplete point.
    summary = queue.enqueue(spec.points())
    assert summary.already_done == 1 and summary.already_queued == 1
    second = Worker(queue, worker_id="w2", poll_interval=0.05).run()
    assert second.executed == 1
    assert queue.status().all_done


def test_two_workers_split_the_queue_without_duplication(tmp_path):
    spec = tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM", "psu_noIO+RANDOM",
                                 "psu_opt+LUM"))
    queue = WorkQueue(tmp_path)
    queue.enqueue(spec.points())
    stats = [None, None]

    def drain(slot):
        stats[slot] = Worker(queue, worker_id=f"w{slot}", poll_interval=0.02).run()

    threads = [threading.Thread(target=drain, args=(slot,)) for slot in (0, 1)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert queue.status().all_done
    # Every task ran exactly once across the two workers.
    assert stats[0].executed + stats[1].executed == 4
    assert stats[0].failed == stats[1].failed == 0


def test_failing_point_consumes_retry_budget(tmp_path):
    queue = WorkQueue(tmp_path)
    bad = make_point(strategy="NO-SUCH-STRATEGY")
    queue.enqueue([bad], max_attempts=2)
    stats = Worker(queue, worker_id="w1", poll_interval=0.02).run()
    assert stats.failed == 2 and stats.executed == 0
    task_id = queue.task_id(bad)
    assert queue.is_failed(task_id)
    assert queue.attempts(task_id) == 2
    status = queue.status()
    assert status.failed == 1 and status.unfinished == 0
    assert "NO-SUCH-STRATEGY" in (queue.last_error(task_id) or "")
    assert "failed task" in status.render()


def test_interrupted_worker_releases_lease_without_burning_a_retry(tmp_path, monkeypatch):
    queue = WorkQueue(tmp_path)
    point = make_point()
    queue.enqueue([point])
    worker = Worker(queue, worker_id="w1", poll_interval=0.02)
    monkeypatch.setattr(
        "repro.runner.worker.execute_point_checked",
        lambda _point: (_ for _ in ()).throw(SystemExit(143)),
    )
    with pytest.raises(SystemExit):
        worker.run()
    task_id = queue.task_id(point)
    assert queue.attempts(task_id) == 0  # interruption is not a failure
    status = queue.status()
    assert status.pending == 1 and status.running == 0  # lease released
    monkeypatch.undo()
    stats = Worker(queue, worker_id="w2", poll_interval=0.02).run()
    assert stats.executed == 1
    assert queue.status().all_done


# -- coordinator ------------------------------------------------------------------
def drain_in_thread(queue, **kwargs):
    thread = threading.Thread(
        target=lambda: Worker(queue, poll_interval=0.02, **kwargs).run(), daemon=True
    )
    thread.start()
    return thread


def test_distributed_runner_matches_parallel_runner(tmp_path):
    spec = tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM"))
    local = ParallelRunner(workers=2).run(spec)
    runner = DistributedRunner(tmp_path / "queue", timeout=120.0, poll_interval=0.02)
    runner.dispatch(spec.points())
    thread = drain_in_thread(runner.queue, worker_id="w1")
    distributed = runner.run(spec)
    thread.join(timeout=60.0)
    assert [(p.series, p.x) for p in local.points] == [
        (p.series, p.x) for p in distributed.points
    ]
    for left, right in zip(local.points, distributed.points):
        assert left.result == right.result
    # Folding happens in expansion order on both drivers, so aggregates and
    # export rows are identical too.
    assert local.to_rows() == distributed.to_rows()


def test_distributed_runner_replicates_aggregate_identically(tmp_path):
    spec = tiny_spec().with_replicates(2)
    local = ParallelRunner(workers=2).run(spec).aggregate()
    runner = DistributedRunner(tmp_path / "queue", timeout=120.0, poll_interval=0.02)
    runner.dispatch(spec.points())
    thread = drain_in_thread(runner.queue, worker_id="w1")
    distributed = runner.run(spec).aggregate()
    thread.join(timeout=60.0)
    assert local.table() == distributed.table()
    assert local.to_rows() == distributed.to_rows()


def test_distributed_runner_times_out_without_workers(tmp_path):
    runner = DistributedRunner(tmp_path / "queue", timeout=0.2, poll_interval=0.02)
    with pytest.raises(TimeoutError) as excinfo:
        runner.run(tiny_spec())
    assert "unfinished" in str(excinfo.value)


def test_distributed_runner_surfaces_exhausted_tasks(tmp_path):
    runner = DistributedRunner(
        tmp_path / "queue", timeout=60.0, poll_interval=0.02, max_attempts=1
    )
    bad = make_point(strategy="NO-SUCH-STRATEGY")
    runner.dispatch([bad])
    Worker(runner.queue, worker_id="w1", poll_interval=0.02).run()
    with pytest.raises(PointExecutionError) as excinfo:
        runner.run_points([bad])
    assert "retry budget" in str(excinfo.value)


def test_distributed_runner_resumes_from_partial_queue(tmp_path):
    spec = tiny_spec(strategies=("OPT-IO-CPU", "psu_opt+RANDOM"))
    runner = DistributedRunner(tmp_path / "queue", timeout=120.0, poll_interval=0.02)
    runner.dispatch(spec.points())
    Worker(runner.queue, worker_id="w1", poll_interval=0.02).run(max_tasks=1)
    # Coordinator restarted later: only the missing point is outstanding.
    resumed = DistributedRunner(tmp_path / "queue", timeout=120.0, poll_interval=0.02)
    summary = resumed.dispatch(spec.points())
    assert summary.already_done == 1 and summary.already_queued == 1
    thread = drain_in_thread(resumed.queue, worker_id="w2")
    experiment = resumed.run(spec)
    thread.join(timeout=60.0)
    assert len(experiment.points) == 2


def test_default_max_attempts_applied_to_enqueued_tasks(tmp_path):
    queue = WorkQueue(tmp_path)
    point = make_point()
    queue.enqueue([point])
    record = queue.load_task(queue.task_id(point))
    assert record is not None
    assert record.max_attempts == DEFAULT_MAX_ATTEMPTS
    assert record.point == point


# -- robustness fixes --------------------------------------------------------------
def test_unreadable_task_record_is_terminal_not_pending(tmp_path):
    queue = WorkQueue(tmp_path)
    good = make_point()
    queue.enqueue([good])
    corrupt_path = queue.tasks_dir / ("f" * 64 + ".json")
    corrupt_path.write_text("{not json")
    assert queue.is_failed("f" * 64)
    status = queue.status()
    assert status.total == 2 and status.failed == 1
    assert "unreadable" in status.failures[0]["last_error"]
    # Workers and coordinators must not wait on it forever.
    stats = Worker(queue, worker_id="w1", poll_interval=0.02).run()
    assert stats.executed == 1
    queue.wait(queue.task_ids(), poll_interval=0.02, timeout=5.0)


def test_stale_claimant_cannot_stomp_reclaimed_lease(tmp_path):
    queue = WorkQueue(tmp_path)
    point = make_point()
    queue.enqueue([point])
    task_id = queue.task_id(point)
    assert queue.try_claim(task_id, "w1")
    # Simulate a reclaim: w2 now owns the lease while w1 is still running.
    lease_path = queue._lease_path(task_id)
    lease = json.loads(lease_path.read_text())
    lease["worker"] = "w2"
    lease_path.write_text(json.dumps(lease))
    # w1's failure must neither charge the budget nor drop w2's lease.
    assert queue.record_failure(task_id, "w1", "boom") == 0
    assert queue.attempts(task_id) == 0
    assert lease_path.exists()
    queue.release(task_id, "w1")
    assert lease_path.exists()  # owner check: w2 still holds it
    queue.release(task_id, "w2")
    assert not lease_path.exists()
