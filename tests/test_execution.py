"""Tests for operators, PPHJ and the parallel hash join execution path."""

import math

import pytest

from repro.config import SystemConfig
from repro.database import Catalog
from repro.engine import ProcessingElement
from repro.execution import (
    JoinProcessorShare,
    PPHJExecutor,
    plan_scan,
    redistribution_packets,
    scan_fragment,
)
from repro.hardware import Network
from repro.sim import Environment


def build_node(num_pe=4, buffer_pages=50, disks=2):
    from dataclasses import replace

    config = SystemConfig(num_pe=num_pe)
    config = config.with_overrides(
        buffer=replace(config.buffer, buffer_pages=buffer_pages),
        disk=replace(config.disk, disks_per_pe=disks),
    )
    env = Environment()
    pe = ProcessingElement(env, pe_id=0, config=config)
    network = Network(env, config.network, config.costs)
    return env, config, pe, network


# -- scan planning -------------------------------------------------------------------
def test_plan_scan_uses_fragment_share():
    config = SystemConfig(num_pe=40)
    catalog = Catalog.from_config(config)
    relation = catalog.relation("A")
    pe_id = relation.node_ids[0]
    work = plan_scan(relation, pe_id, selectivity=0.01, tuple_size_bytes=400)
    # 250 000 tuples over 8 A nodes -> 31 250 per node; 1 % -> ~313 matching.
    assert 310 <= work.matching_tuples <= 315
    assert work.data_pages == math.ceil(work.matching_tuples / 20)
    assert work.index_pages >= 1
    assert work.output_bytes == work.matching_tuples * 400


def test_redistribution_packet_fragmentation():
    env, config, pe, network = build_node()
    # 100 tuples of 400 B = 40 000 B: 5 packets aggregated but one per
    # destination once the output is split over many join processors.
    assert redistribution_packets(network, 40_000, 1) == 5
    assert redistribution_packets(network, 40_000, 5) == 5
    assert redistribution_packets(network, 40_000, 30) == 30
    assert redistribution_packets(network, 0, 10) == 0
    assert redistribution_packets(network, 100, 0) == 0


def test_scan_fragment_charges_cpu_and_disk():
    env, config, pe, network = build_node()
    catalog = Catalog.from_config(config)
    relation = catalog.relation("A")
    pe_for_fragment = relation.node_ids[0]
    # Rebuild a PE with the id owning the fragment.
    pe = ProcessingElement(env, pe_id=pe_for_fragment, config=config)
    work = plan_scan(relation, pe_for_fragment, 0.01, 400)
    done = []

    def run():
        yield from scan_fragment(pe, work, network, config.costs, destinations=3)
        done.append(env.now)

    env.process(run())
    env.run()
    assert done and done[0] > 0
    assert pe.disks.pages_read == work.total_pages
    assert pe.cpu.total_instructions > 0
    assert network.messages_sent == 1


# -- PPHJ share arithmetic ---------------------------------------------------------------
def test_join_processor_share_properties():
    share = JoinProcessorShare(
        inner_tuples=833,
        outer_tuples=3_333,
        result_tuples=833,
        tuple_size_bytes=400,
        blocking_factor=20,
        fudge_factor=1.05,
    )
    assert share.inner_pages == 42
    assert share.outer_pages == 167
    assert share.hash_table_pages == 45
    assert share.num_partitions == math.ceil(math.sqrt(1.05 * 42))
    assert share.min_pages == share.num_partitions


def test_join_processor_share_empty_input():
    share = JoinProcessorShare(
        inner_tuples=0,
        outer_tuples=0,
        result_tuples=0,
        tuple_size_bytes=400,
        blocking_factor=20,
        fudge_factor=1.05,
    )
    assert share.inner_pages == 0
    assert share.hash_table_pages == 1
    assert share.min_pages >= 1


# -- PPHJ execution ------------------------------------------------------------------------
def make_executor(pe, network, config, inner=400, outer=1_600, desired=None):
    share = JoinProcessorShare(
        inner_tuples=inner,
        outer_tuples=outer,
        result_tuples=inner,
        tuple_size_bytes=400,
        blocking_factor=20,
        fudge_factor=1.05,
    )
    return PPHJExecutor(
        pe, share, network, config.costs, desired_pages=desired, inner_sources=4, outer_sources=16
    )


def test_pphj_no_overflow_when_memory_sufficient():
    env, config, pe, network = build_node(buffer_pages=50)
    executor = make_executor(pe, network, config, inner=400, outer=1_600)

    def run():
        yield from executor.acquire_memory()
        yield from executor.build_phase()
        yield from executor.probe_phase()
        executor.release_memory()

    env.process(run())
    env.run()
    assert executor.granted_pages >= executor.share.hash_table_pages
    assert executor.overflow_pages == 0
    assert executor.memory_wait_time == 0.0
    assert pe.temp_pages_written == 0
    assert pe.joins_processed == 1
    assert pe.buffer.free_pages == 50


def test_pphj_overflow_when_memory_tight():
    env, config, pe, network = build_node(buffer_pages=10)
    executor = make_executor(pe, network, config, inner=400, outer=1_600)

    def run():
        yield from executor.acquire_memory()
        yield from executor.build_phase()
        yield from executor.probe_phase()
        executor.release_memory()

    env.process(run())
    env.run()
    # Hash table needs 21 pages but only 10 exist: partitions spill to disk.
    assert executor.granted_pages <= 10
    assert executor.overflow_inner_pages > 0
    assert executor.overflow_outer_pages > 0
    assert pe.temp_pages_written == executor.overflow_pages
    assert pe.temp_pages_read == pytest.approx(executor.temp_pages_read)
    assert pe.disks.pages_written >= executor.overflow_pages


def test_pphj_waits_in_memory_queue():
    env, config, pe, network = build_node(buffer_pages=20)
    blocker = []

    def occupy():
        ws = yield pe.buffer.reserve("other", desired_pages=20, min_pages=20)
        blocker.append(ws)
        yield env.timeout(5.0)
        pe.buffer.release(ws)

    executor = make_executor(pe, network, config, inner=400, outer=1_600)
    finished = []

    def run():
        yield env.timeout(0.1)
        yield from executor.acquire_memory()
        finished.append(env.now)
        executor.release_memory()

    env.process(occupy())
    env.process(run())
    env.run()
    assert finished and finished[0] >= 5.0
    assert executor.memory_wait_time == pytest.approx(4.9, rel=1e-3)


def test_pphj_steal_callback_records_pages():
    env, config, pe, network = build_node(buffer_pages=30)
    # The join grabs the whole buffer, leaving no free memory.
    executor = make_executor(pe, network, config, inner=400, outer=1_600, desired=45)

    def run():
        yield from executor.acquire_memory()
        # OLTP arrives and claims its protected working set (15 pages of the
        # 30-page buffer): pages are stolen from the running join, which must
        # spool partitions to disk (PPHJ adaptation).
        pe.buffer.ensure_oltp_footprint(30)
        yield from executor.build_phase()
        yield from executor.probe_phase()
        executor.release_memory()

    env.process(run())
    env.run()
    assert executor.stolen_pages > 0
    assert executor.overflow_pages > 0


def test_pphj_receive_cost_grows_with_sources():
    env1, config1, pe1, network1 = build_node(buffer_pages=50)
    env2, config2, pe2, network2 = build_node(buffer_pages=50)
    few = PPHJExecutor(
        pe1,
        JoinProcessorShare(400, 1_600, 400, 400, 20, 1.05),
        network1,
        config1.costs,
        inner_sources=2,
        outer_sources=2,
    )
    many = PPHJExecutor(
        pe2,
        JoinProcessorShare(400, 1_600, 400, 400, 20, 1.05),
        network2,
        config2.costs,
        inner_sources=16,
        outer_sources=64,
    )

    def run(executor):
        yield from executor.acquire_memory()
        yield from executor.build_phase()
        yield from executor.probe_phase()
        executor.release_memory()

    env1.process(run(few))
    env2.process(run(many))
    env1.run()
    env2.run()
    assert pe2.cpu.total_instructions > pe1.cpu.total_instructions
