"""Tests for arrival processes, trace/live alignment and submit determinism."""

import random

import pytest

from repro.config import SystemConfig
from repro.sim import Environment
from repro.workload import (
    DeterministicArrivals,
    JoinQuery,
    OnOffArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
    StepArrivals,
    TraceArrivals,
    WorkloadClass,
    WorkloadGenerator,
    WorkloadSpec,
    generate_trace,
    make_arrival_process,
)


def sample_times(process, n=200, seed=7):
    """First ``n`` arrival times of ``process`` under one rng stream."""
    rng = random.Random(seed)
    process.reset()
    now, times = 0.0, []
    for _ in range(n):
        delta = process.interarrival(now, rng)
        if delta == float("inf"):
            break
        now += delta
        times.append(now)
    return times


# -- individual processes ---------------------------------------------------------
def test_poisson_mean_rate_matches():
    times = sample_times(PoissonArrivals(2.0), n=4000)
    observed = len(times) / times[-1]
    assert observed == pytest.approx(2.0, rel=0.1)


def test_deterministic_spacing():
    times = sample_times(DeterministicArrivals(4.0), n=8)
    deltas = [b - a for a, b in zip(times, times[1:])]
    assert all(d == pytest.approx(0.25) for d in deltas)


def test_zero_rate_never_arrives():
    rng = random.Random(0)
    assert PoissonArrivals(0.0).interarrival(0.0, rng) == float("inf")
    assert DeterministicArrivals(0.0).interarrival(0.0, rng) == float("inf")
    # A fully silent MMPP must return inf instead of spinning forever.
    silent = OnOffArrivals(on_rate=0.0, off_rate=0.0, mean_on=1.0, mean_off=1.0)
    assert silent.interarrival(0.0, rng) == float("inf")


def test_sampling_is_deterministic_per_seed():
    for process in (
        PoissonArrivals(1.0),
        SinusoidalArrivals(1.0, amplitude=0.8, period=10.0),
        StepArrivals(1.0, surge_factor=3.0, surge_start=5.0, surge_end=10.0),
        OnOffArrivals(on_rate=4.0, off_rate=0.5, mean_on=2.0, mean_off=6.0),
    ):
        assert sample_times(process, n=100, seed=3) == sample_times(process, n=100, seed=3)


def test_step_rate_profile_and_surge_density():
    process = StepArrivals(1.0, surge_factor=5.0, surge_start=10.0, surge_end=20.0)
    assert process.rate(5.0) == 1.0
    assert process.rate(10.0) == 5.0
    assert process.rate(19.999) == 5.0
    assert process.rate(20.0) == 1.0
    times = sample_times(process, n=5000)
    times = [t for t in times if t < 30.0]
    inside = sum(1 for t in times if 10.0 <= t < 20.0)
    outside_per_s = (len(times) - inside) / 20.0
    inside_per_s = inside / 10.0
    assert inside_per_s == pytest.approx(5 * outside_per_s, rel=0.35)


def test_sine_rate_oscillates_and_clamps():
    process = SinusoidalArrivals(1.0, amplitude=0.5, period=4.0)
    assert process.rate(1.0) == pytest.approx(1.5)  # sin peak at period/4
    assert process.rate(3.0) == pytest.approx(0.5)
    assert SinusoidalArrivals(1.0, amplitude=2.0, period=4.0).rate(3.0) == 0.0  # clamped
    assert process.peak_rate == pytest.approx(1.5)


def test_mmpp_long_run_rate_matches_mean():
    process = make_arrival_process("mmpp", 2.0, {"burst_factor": 4.0, "on_fraction": 0.25})
    times = sample_times(process, n=20000)
    observed = len(times) / times[-1]
    assert observed == pytest.approx(2.0, rel=0.15)
    assert process.mean_rate == pytest.approx(2.0)


def test_mmpp_reset_reproduces_stream():
    process = OnOffArrivals(on_rate=8.0, off_rate=0.5, mean_on=1.0, mean_off=3.0)
    first = sample_times(process, n=500, seed=11)
    second = sample_times(process, n=500, seed=11)  # sample_times resets
    assert first == second


def test_trace_arrivals_replay_and_exhaust():
    process = TraceArrivals(times=(1.0, 2.5, 2.75))
    rng = random.Random(0)
    assert process.interarrival(0.0, rng) == 1.0
    assert process.interarrival(1.0, rng) == 1.5
    assert process.interarrival(2.5, rng) == 0.25
    assert process.interarrival(2.75, rng) == float("inf")


def test_trace_arrivals_emits_record_at_stream_origin():
    process = TraceArrivals(times=(0.0, 1.0))
    rng = random.Random(0)
    assert process.interarrival(0.0, rng) == 0.0  # t=0 record is not dropped
    assert process.interarrival(0.0, rng) == 1.0
    process.reset()
    assert process.interarrival(0.0, rng) == 0.0  # reset rewinds the cursor


def test_trace_arrivals_rejects_unsorted():
    with pytest.raises(ValueError):
        TraceArrivals(times=(1.0, 1.0))


# -- factory ----------------------------------------------------------------------
def test_factory_builds_each_kind():
    assert isinstance(make_arrival_process("poisson", 1.0), PoissonArrivals)
    assert isinstance(make_arrival_process("deterministic", 1.0), DeterministicArrivals)
    assert isinstance(make_arrival_process("mmpp", 1.0), OnOffArrivals)
    assert isinstance(make_arrival_process("sine", 1.0), SinusoidalArrivals)
    assert isinstance(make_arrival_process("step", 1.0), StepArrivals)


def test_factory_rejects_unknown_kind_and_params():
    with pytest.raises(ValueError, match="unknown arrival kind"):
        make_arrival_process("weibull", 1.0)
    with pytest.raises(ValueError, match="unknown parameter"):
        make_arrival_process("sine", 1.0, {"periodd": 10.0})
    with pytest.raises(ValueError, match="trace"):
        make_arrival_process("trace", 1.0)
    with pytest.raises(ValueError, match="on_fraction"):
        make_arrival_process("mmpp", 1.0, {"on_fraction": 1.5})
    with pytest.raises(ValueError, match="burst_factor"):
        make_arrival_process("mmpp", 1.0, {"burst_factor": 8.0, "on_fraction": 0.5})


def test_mmpp_factory_preserves_mean_rate():
    process = make_arrival_process("mmpp", 3.0, {"burst_factor": 2.0, "on_fraction": 0.4})
    assert process.mean_rate == pytest.approx(3.0)


# -- generator integration --------------------------------------------------------
def live_arrival_times(spec, duration):
    """Arrival times submitted by a live WorkloadGenerator run."""
    env = Environment()
    submitted = []
    generator = WorkloadGenerator(env, spec, lambda txn: submitted.append((env.now, txn)))
    generator.start()
    env.run(until=duration)
    return [t for t, _ in submitted]


def test_workload_class_profile_drives_generator():
    spec = WorkloadSpec(seed=5)
    spec.add(
        WorkloadClass(
            name="join",
            factory=JoinQuery,
            arrival_rate=2.0,
            arrival=StepArrivals(2.0, surge_factor=4.0, surge_start=10.0, surge_end=20.0),
        )
    )
    times = live_arrival_times(spec, 30.0)
    inside = sum(1 for t in times if 10.0 <= t < 20.0)
    outside = len(times) - inside
    assert inside > outside  # surged decade denser than the other two decades


def test_with_arrival_profile_poisson_matches_default():
    config = SystemConfig(num_pe=4)
    base = WorkloadSpec.homogeneous_join(config)
    profiled = base.with_arrival_profile("poisson")
    assert live_arrival_times(base, 20.0) == live_arrival_times(profiled, 20.0)


def test_with_arrival_profile_sets_process_per_class():
    config = SystemConfig(num_pe=4)
    spec = WorkloadSpec.homogeneous_join(config).with_arrival_profile(
        "step", {"surge_factor": 2.0}
    )
    assert isinstance(spec.classes[0].arrival, StepArrivals)
    # The profile is built from the class's own mean rate.
    assert spec.classes[0].arrival.arrival_rate == pytest.approx(
        spec.classes[0].arrival_rate
    )


# -- trace/live alignment (the seeding fix) ---------------------------------------
def test_generated_trace_matches_live_sampling_bit_identically():
    config = SystemConfig(num_pe=8)
    spec = WorkloadSpec.homogeneous_join(config)
    trace = generate_trace(spec, duration=40.0)
    live = live_arrival_times(spec, 40.0)
    assert [r.arrival_time for r in trace] == live


def test_generated_trace_matches_live_sampling_multi_class():
    from repro.config import OltpConfig

    config = SystemConfig(
        num_pe=8, oltp=OltpConfig(placement="A", arrival_rate_per_node=5.0)
    )
    spec = WorkloadSpec.mixed_join_oltp(config)
    trace = generate_trace(spec, duration=10.0)

    env = Environment()
    submitted = []
    generator = WorkloadGenerator(env, spec, lambda txn: submitted.append((env.now, txn)))
    generator.start()
    env.run(until=10.0)
    live = [(t, type(txn).__name__) for t, txn in submitted]
    kinds = {"join": "JoinQuery", "oltp": "OltpTransaction"}
    assert [(r.arrival_time, kinds[r.class_name]) for r in trace] == live


def test_generated_trace_matches_live_sampling_nonstationary():
    config = SystemConfig(num_pe=8)
    spec = WorkloadSpec.homogeneous_join(config).with_arrival_profile(
        "mmpp", {"burst_factor": 4.0, "on_fraction": 0.25, "cycle": 5.0}
    )
    trace = generate_trace(spec, duration=30.0)
    live = live_arrival_times(spec, 30.0)
    assert [r.arrival_time for r in trace] == live


# -- per-class stream independence (Submitter determinism) ------------------------
def test_class_streams_are_independent_of_other_classes():
    def join_class(rate=2.0):
        return WorkloadClass(name="join", factory=JoinQuery, arrival_rate=rate)

    def extra_class():
        return WorkloadClass(name="extra", factory=JoinQuery, arrival_rate=3.0)

    solo = WorkloadSpec(seed=9).add(join_class())
    duo = WorkloadSpec(seed=9).add(join_class()).add(extra_class())

    solo_trace = [r.arrival_time for r in generate_trace(solo, 20.0)]
    duo_trace = [
        r.arrival_time for r in generate_trace(duo, 20.0) if r.class_name == "join"
    ]
    assert solo_trace == duo_trace
