"""Backend-conformance suite: one contract, every ``QueueBackend``.

Each test runs against the filesystem backend and (through a live
in-process coordinator) the HTTP backend, pinning the semantics the worker
daemon and the distributed runner rely on: exclusive claims, heartbeat
expiry, immediate takeover from dead local processes, retry budgets,
interrupt-safe lease release and resume-after-kill.
"""

import socket
import subprocess
import sys
import time

import pytest

from repro.runner import (
    DistributedRunner,
    ParallelRunner,
    PointSpec,
    Worker,
)
from repro.runner.backends import FilesystemBackend, HttpBackend, make_backend
from repro.service import Coordinator


def make_point(**overrides) -> PointSpec:
    fields = dict(figure="f", series="s", x=10, kind="multi", scenario="homogeneous",
                  num_pe=10, seed=42, strategy="OPT-IO-CPU", measured_joins=5,
                  max_simulated_time=20.0)
    fields.update(overrides)
    return PointSpec(**fields)


@pytest.fixture(params=["filesystem", "http"])
def backend_factory(request, tmp_path):
    """A factory yielding fresh conforming backends (one kind per run)."""
    coordinators = []
    counter = [0]

    def make(lease_seconds: float = 60.0):
        counter[0] += 1
        if request.param == "filesystem":
            return FilesystemBackend(
                tmp_path / f"queue{counter[0]}", lease_seconds=lease_seconds
            )
        coordinator = Coordinator(lease_seconds=lease_seconds)
        coordinators.append(coordinator)
        return HttpBackend(coordinator.start())

    yield make
    for coordinator in coordinators:
        coordinator.stop()


def dead_pid() -> int:
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    return child.pid


# -- enqueue ----------------------------------------------------------------------
def test_enqueue_is_idempotent_and_dedupes(backend_factory):
    backend = backend_factory()
    point = make_point()
    summary = backend.enqueue([point, point])
    assert (summary.enqueued, summary.already_queued, summary.already_done) == (1, 0, 0)
    summary = backend.enqueue([point])
    assert (summary.enqueued, summary.already_queued, summary.already_done) == (0, 1, 0)
    record = backend.load_task(backend.task_id(point))
    assert record is not None and record.point == point


def test_preseeded_result_marks_task_done(backend_factory):
    backend = backend_factory()
    point = make_point()
    result = ParallelRunner(workers=1).run_points([point])[0]
    backend.results.put(point, result)
    summary = backend.enqueue([point])
    assert summary.already_done == 1
    assert backend.is_done(backend.task_id(point))
    assert backend.load_result(point) == result


# -- leases -----------------------------------------------------------------------
def test_claim_is_exclusive_until_released(backend_factory):
    backend = backend_factory()
    point = make_point()
    backend.enqueue([point])
    task_id = backend.task_id(point)
    assert backend.try_claim(task_id, "w1")
    assert not backend.try_claim(task_id, "w2")
    assert backend.lease_state(task_id) == "running"
    backend.release(task_id, "w1")
    assert backend.lease_state(task_id) is None
    assert backend.try_claim(task_id, "w2")


def test_expired_heartbeat_is_stale_and_reclaimable(backend_factory):
    backend = backend_factory(lease_seconds=0.2)
    point = make_point()
    backend.enqueue([point])
    task_id = backend.task_id(point)
    # A holder on another host: only the heartbeat age can expire the lease.
    assert backend.try_claim(task_id, "w1", host="elsewhere", pid=1)
    assert backend.lease_state(task_id) == "running"
    assert backend.status([task_id]).running == 1
    time.sleep(0.4)
    assert backend.lease_state(task_id) == "stale"
    assert backend.status([task_id]).stale == 1
    assert backend.try_claim(task_id, "w2")  # takeover


def test_heartbeat_keeps_lease_fresh_and_is_owner_checked(backend_factory):
    backend = backend_factory(lease_seconds=0.4)
    point = make_point()
    backend.enqueue([point])
    task_id = backend.task_id(point)
    assert backend.try_claim(task_id, "w1", host="elsewhere", pid=1)
    for _ in range(3):
        time.sleep(0.2)
        assert backend.heartbeat(task_id, "w1")
        assert backend.lease_state(task_id) == "running"
    assert not backend.heartbeat(task_id, "w2")  # not the holder


def test_dead_local_process_lease_is_stale_immediately(backend_factory):
    backend = backend_factory()
    point = make_point()
    backend.enqueue([point])
    task_id = backend.task_id(point)
    # The lease names a dead pid on this very host (for the HTTP backend:
    # the coordinator's host, which the test shares), so a crashed worker
    # is reported stale -- and reclaimed -- without waiting out the lease.
    assert backend.try_claim(task_id, "w1", host=socket.gethostname(), pid=dead_pid())
    assert backend.lease_state(task_id) == "stale"
    status = backend.status([task_id])
    assert status.stale == 1 and status.running == 0
    assert backend.try_claim(task_id, "w2")


# -- retry budget -----------------------------------------------------------------
def test_retry_budget_is_consumed_and_terminal(backend_factory):
    backend = backend_factory()
    bad = make_point(strategy="NO-SUCH-STRATEGY")
    backend.enqueue([bad], max_attempts=2)
    stats = Worker(backend, worker_id="w1", poll_interval=0.02).run()
    assert stats.failed == 2 and stats.executed == 0
    task_id = backend.task_id(bad)
    assert backend.is_failed(task_id)
    assert backend.attempts(task_id) == 2
    assert "NO-SUCH-STRATEGY" in (backend.last_error(task_id) or "")
    status = backend.status()
    assert status.failed == 1 and status.unfinished == 0
    assert backend.claim_next("w2") is None  # exhausted tasks are not runnable


# -- interruption and resume ------------------------------------------------------
def test_sigterm_releases_lease_without_burning_a_retry(backend_factory, monkeypatch):
    backend = backend_factory()
    point = make_point()
    backend.enqueue([point])
    # The CLI turns SIGTERM into SystemExit(143); it must release the lease
    # (pending again, no attempt recorded), not count as a failure.
    monkeypatch.setattr(
        "repro.runner.worker.execute_point_checked",
        lambda _point: (_ for _ in ()).throw(SystemExit(143)),
    )
    with pytest.raises(SystemExit):
        Worker(backend, worker_id="w1", poll_interval=0.02).run()
    task_id = backend.task_id(point)
    assert backend.attempts(task_id) == 0
    status = backend.status()
    assert status.pending == 1 and status.running == 0


def test_resume_after_kill_drains_and_matches_local_run(backend_factory, monkeypatch):
    backend = backend_factory()
    point = make_point()
    backend.enqueue([point])
    monkeypatch.setattr(
        "repro.runner.worker.execute_point_checked",
        lambda _point: (_ for _ in ()).throw(SystemExit(143)),
    )
    with pytest.raises(SystemExit):
        Worker(backend, worker_id="w1", poll_interval=0.02).run()
    monkeypatch.undo()
    stats = Worker(backend, worker_id="w2", poll_interval=0.02).run()
    assert stats.executed == 1
    assert backend.status().all_done
    assert backend.load_result(point) == ParallelRunner(workers=1).run_points([point])[0]


# -- wait loop --------------------------------------------------------------------
def test_wait_times_out_with_status_snapshot(backend_factory):
    backend = backend_factory()
    point = make_point()
    backend.enqueue([point])
    with pytest.raises(TimeoutError) as excinfo:
        backend.wait([backend.task_id(point)], poll_interval=0.02, timeout=0.2)
    message = str(excinfo.value)
    assert "unfinished" in message and backend.describe() in message


def test_wait_backs_off_exponentially_and_resets_on_progress(backend_factory, monkeypatch):
    backend = backend_factory()
    done_point, slow_point = make_point(seed=1), make_point(seed=2)
    backend.enqueue([done_point, slow_point])
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        if len(sleeps) == 4:
            # Progress mid-wait: the next idle probe snaps back to the floor.
            backend.complete(
                backend.task_id(done_point), done_point, None, worker="w1"
            )
        if len(sleeps) == 6:
            backend.complete(
                backend.task_id(slow_point), slow_point, None, worker="w1"
            )

    monkeypatch.setattr("repro.runner.backends.base.time.sleep", fake_sleep)
    backend.wait(
        [backend.task_id(done_point), backend.task_id(slow_point)],
        poll_interval=0.1,
        max_poll_interval=1.0,
    )
    # Idle probes double up to the cap...
    assert sleeps[:4] == [0.1, 0.2, 0.4, 0.8]
    # ...and the probe after the first completion restarts from the floor.
    assert sleeps[4] == 0.1


# -- the distributed runner over any backend --------------------------------------
def test_distributed_runner_is_backend_agnostic(backend_factory):
    backend = backend_factory()
    points = [make_point(seed=1), make_point(seed=2)]
    local = ParallelRunner(workers=1).run_points(points)
    runner = DistributedRunner(backend, timeout=120.0, poll_interval=0.02)
    runner.dispatch(points)
    import threading

    thread = threading.Thread(
        target=lambda: Worker(backend, worker_id="w1", poll_interval=0.02).run(),
        daemon=True,
    )
    thread.start()
    distributed = runner.run_points(points)
    thread.join(timeout=60.0)
    assert distributed == local


def test_make_backend_resolves_targets(tmp_path):
    filesystem = make_backend(tmp_path / "queue")
    assert isinstance(filesystem, FilesystemBackend)
    assert make_backend(filesystem) is filesystem
    coordinator = Coordinator(lease_seconds=7.5)
    try:
        http = make_backend(coordinator.start())
        assert isinstance(http, HttpBackend)
        assert http.lease_seconds == 7.5  # agreed with the server, not the CLI
    finally:
        coordinator.stop()


# -- HTTP transport retries --------------------------------------------------------
class _FakeHttpResponse:
    def __init__(self, payload):
        import json as _json

        self._body = _json.dumps(payload).encode("utf-8")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def read(self):
        return self._body


def _scripted_backend(monkeypatch, script):
    """An HttpBackend whose transport replays ``script`` per non-config call.

    ``script`` entries are exceptions (raised) or payload dicts (returned);
    ``GET /config`` is always answered so construction succeeds.  Returns
    (backend, calls, sleeps) where ``calls`` counts non-config round trips
    and ``sleeps`` records every backoff duration (real sleeping disabled).
    """
    import urllib.request

    calls = []
    sleeps = []

    def fake_urlopen(request, timeout=None):
        if request.full_url.endswith("/config"):
            return _FakeHttpResponse({"lease_seconds": 60.0, "max_attempts": 3})
        calls.append(request.full_url)
        action = script.pop(0)
        if isinstance(action, BaseException):
            raise action
        return _FakeHttpResponse(action)

    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr(time, "sleep", lambda seconds: sleeps.append(seconds))
    return HttpBackend("http://fake-coordinator:0"), calls, sleeps


def _http_error(code):
    import io
    import urllib.error

    return urllib.error.HTTPError("http://fake", code, "err", {}, io.BytesIO(b""))


def test_http_retries_connection_resets_with_backoff(monkeypatch):
    import urllib.error

    script = [
        urllib.error.URLError(ConnectionResetError("reset")),
        urllib.error.URLError(ConnectionResetError("reset")),
        {"ok": True},
    ]
    backend, calls, sleeps = _scripted_backend(monkeypatch, script)
    assert backend.heartbeat("t1", "w1") is True
    assert len(calls) == 3
    # Jittered exponential backoff: ~0.1 s then ~0.8 s (each +/-50%).
    assert len(sleeps) == 2
    assert 0.05 <= sleeps[0] <= 0.15
    assert 0.4 <= sleeps[1] <= 1.2


def test_http_retries_502_and_503(monkeypatch):
    script = [_http_error(502), _http_error(503), {"attempts": 2}]
    backend, calls, sleeps = _scripted_backend(monkeypatch, script)
    assert backend.record_failure("t1", "w1", "boom") == 2
    assert len(calls) == 3
    assert len(sleeps) == 2


def test_http_4xx_is_fatal_without_retry(monkeypatch):
    import urllib.error

    script = [_http_error(400)]
    backend, calls, sleeps = _scripted_backend(monkeypatch, script)
    with pytest.raises(urllib.error.URLError, match="returned 400"):
        backend.heartbeat("t1", "w1")
    assert len(calls) == 1  # no second attempt
    assert sleeps == []


def test_http_persistent_failure_raises_after_three_attempts(monkeypatch):
    import urllib.error

    script = [
        urllib.error.URLError("refused"),
        urllib.error.URLError("refused"),
        urllib.error.URLError("refused"),
    ]
    backend, calls, sleeps = _scripted_backend(monkeypatch, script)
    with pytest.raises(urllib.error.URLError):
        backend.heartbeat("t1", "w1")
    assert len(calls) == 3
    assert len(sleeps) == 2
