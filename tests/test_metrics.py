"""Tests for the metrics collector and result records."""

import pytest

from repro.config import SystemConfig
from repro.engine import ProcessingElement
from repro.metrics import MetricsCollector
from repro.sim import Environment
from repro.simulation.results import SimulationResult


def build(num_pe=2):
    env = Environment()
    config = SystemConfig(num_pe=max(num_pe, 1))
    pes = [ProcessingElement(env, pe_id=index, config=config) for index in range(num_pe)]
    return env, pes, MetricsCollector(env)


def test_record_join_and_oltp_statistics():
    env, pes, metrics = build()
    metrics.record_join(response_time=0.5, degree=10, overflow_pages=3, memory_wait=0.1)
    metrics.record_join(response_time=1.5, degree=20, overflow_pages=0, memory_wait=0.0)
    metrics.record_oltp(response_time=0.05)
    assert metrics.joins_completed == 2
    assert metrics.oltp_completed == 1
    assert metrics.join_response_times.mean == pytest.approx(1.0)
    assert metrics.join_degrees.mean == pytest.approx(15.0)
    assert metrics.join_overflow_pages.mean == pytest.approx(1.5)


def test_start_measurement_resets_counts_and_baseline():
    env, pes, metrics = build()
    metrics.record_join(1.0, 10, 0, 0.0)

    def burn():
        yield from pes[0].cpu.consume(1_000_000)

    env.process(burn())
    env.run(until=0.1)
    metrics.start_measurement(pes)
    assert metrics.joins_completed == 0
    # Work done before the measurement start must not count as utilisation.
    env.run(until=0.2)
    assert metrics.average_cpu_utilization(pes) == pytest.approx(0.0, abs=1e-6)


def test_cpu_utilization_measured_after_baseline():
    env, pes, metrics = build()
    metrics.start_measurement(pes)

    def burn():
        yield from pes[0].cpu.consume(2_000_000)  # 100 ms

    env.process(burn())
    env.run(until=0.2)
    # One of two PEs busy for half the interval -> 25 % average.
    assert metrics.average_cpu_utilization(pes) == pytest.approx(0.25, rel=0.05)
    assert metrics.max_cpu_utilization(pes) == pytest.approx(0.5, rel=0.05)
    assert metrics.measurement_duration == pytest.approx(0.2)


def test_disk_and_memory_utilization():
    env, pes, metrics = build()
    metrics.start_measurement(pes)

    def io():
        yield from pes[0].disks.read_sequential(40)

    def reserve():
        yield pes[1].buffer.reserve("q", desired_pages=25, min_pages=25)

    env.process(io())
    env.process(reserve())
    env.run(until=0.5)
    assert metrics.average_disk_utilization(pes) > 0.0
    assert metrics.average_memory_utilization(pes) == pytest.approx(0.25, abs=0.05)


def test_empty_collector_is_safe():
    env = Environment()
    metrics = MetricsCollector(env)
    assert metrics.average_cpu_utilization([]) == 0.0
    assert metrics.average_disk_utilization([]) == 0.0
    assert metrics.average_memory_utilization([]) == 0.0
    assert metrics.max_cpu_utilization([]) == 0.0


def test_simulation_result_units():
    result = SimulationResult(
        strategy="X",
        num_pe=10,
        mode="multi-user",
        simulated_seconds=12.0,
        joins_completed=30,
        join_response_time=0.75,
        join_response_time_p95=1.5,
        join_response_time_ci=0.05,
        average_degree=12.0,
        average_overflow_pages=4.0,
        average_memory_wait=0.01,
        cpu_utilization=0.6,
        disk_utilization=0.2,
        memory_utilization=0.4,
        join_throughput=2.5,
        extras={"custom": 1.23456},
    )
    assert result.join_response_time_ms == pytest.approx(750.0)
    data = result.report_dict()
    assert data["join_rt_ms"] == 750.0
    assert data["custom"] == pytest.approx(1.2346)
    assert "X" in result.row()
    # The lossless view keeps raw field names/values and the extras mapping.
    raw = result.to_dict()
    assert raw["join_response_time"] == 0.75
    assert raw["extras"] == {"custom": 1.23456}
    assert SimulationResult.from_dict(raw) == result
